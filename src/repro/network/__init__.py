"""Simulated datacenter network substrate (packets, switches, links, routing)."""

from repro.network.packet import FlowId, Packet, make_tcp_packet, make_udp_packet
from repro.network.link import Link, LinkRegistry
from repro.network.flowtable import FlowTable, FlowTablePipeline, Match, Rule
from repro.network.routing import POLICY_ECMP, POLICY_SPRAY, RoutingFabric
from repro.network.switch import Switch, build_switches
from repro.network.faults import FaultInjector, make_header_corruptor
from repro.network.simulator import (EventScheduler, Fabric, ForwardingResult,
                                     SimClock)

__all__ = [
    "FlowId", "Packet", "make_tcp_packet", "make_udp_packet",
    "Link", "LinkRegistry",
    "FlowTable", "FlowTablePipeline", "Match", "Rule",
    "POLICY_ECMP", "POLICY_SPRAY", "RoutingFabric",
    "Switch", "build_switches",
    "FaultInjector", "make_header_corruptor",
    "EventScheduler", "Fabric", "ForwardingResult", "SimClock",
]
