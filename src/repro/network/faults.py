"""Fault injection.

Every debugging application in the paper is evaluated against an injected
network problem.  This module centralises the machinery for creating those
problems and for remembering the *ground truth* (which links/switches are
actually faulty), so the accuracy metrics of Section 4.3 (recall, precision)
can be computed against it.

Supported faults:

* **link failure** - the link is down; routing fails over around it
  (Figure 4 path-conformance scenario);
* **silent random packet drops** - a faulty interface drops packets with some
  probability without updating its discard counters (Section 4.3);
* **blackhole** - an interface drops every packet silently (Section 4.4);
* **routing misconfiguration** - a switch forwards traffic for some
  destination to the wrong neighbor, creating forwarding loops when combined
  with the core switches' bounce-back behaviour (Section 4.5);
* **header corruption** - a switch writes an incorrect link identifier into
  the trajectory header (Section 2.4);
* **gray failures** - faults that are neither up nor down and defeat
  binary health checks: *flapping links* (periodically up/down, driven by
  :meth:`FaultInjector.advance`), *probabilistic per-port drops* (every
  egress interface of one switch lossy at once, the signature of a failing
  linecard) and *slow-but-alive switches* (latency inflated, nothing
  dropped).  These are the network-side counterparts of the agent plane's
  :class:`~repro.core.supervisor.ChaosPolicy`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.packet import Packet
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.graph import Topology

#: A directed interface is identified by (transmitting node, receiving node).
Interface = Tuple[str, str]


@dataclass
class FaultRecord:
    """Ground-truth record of one injected fault."""

    kind: str
    interface: Optional[Interface] = None
    switch: Optional[str] = None
    detail: str = ""


class FaultInjector:
    """Injects faults into a fabric and records the ground truth.

    Args:
        topo: the topology whose links/switches will be perturbed.
        routing: the :class:`~repro.network.routing.RoutingFabric`; needed
            for misconfiguration faults.
        seed: seed for the fault-placement RNG (placement only; packet-level
            randomness is owned by the simulator).
    """

    def __init__(self, topo: "Topology", routing=None, seed: int = 0) -> None:
        self.topo = topo
        self.routing = routing
        self.rng = random.Random(seed)
        self.records: List[FaultRecord] = []
        #: Flap schedules: (interface, period_s, up_fraction, start).
        self._flaps: List[Tuple[Interface, float, float, float]] = []
        #: Original latencies of links slowed by :meth:`slow_switch`,
        #: restored by :meth:`clear`.
        self._original_latency: Dict[Interface, float] = {}

    # ------------------------------------------------------------- low level
    def fail_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Administratively fail the link between ``a`` and ``b``."""
        self.topo.links.get(a, b).failed = True
        self.records.append(FaultRecord("link_failure", interface=(a, b)))
        if bidirectional:
            self.topo.links.get(b, a).failed = True
            self.records.append(FaultRecord("link_failure", interface=(b, a)))

    def silent_drop(self, a: str, b: str, probability: float) -> None:
        """Make the interface ``a -> b`` drop packets silently at random."""
        if not 0.0 < probability <= 1.0:
            raise ValueError("drop probability must be in (0, 1]")
        self.topo.links.get(a, b).drop_probability = probability
        self.records.append(FaultRecord(
            "silent_drop", interface=(a, b), detail=f"p={probability}"))

    def blackhole(self, a: str, b: str) -> None:
        """Blackhole the interface ``a -> b`` (drop everything silently)."""
        self.topo.links.get(a, b).blackhole = True
        self.records.append(FaultRecord("blackhole", interface=(a, b)))

    def misconfigure_route(self, switch: str, dst_host: str,
                           wrong_next_hop: str) -> None:
        """Force ``switch`` to forward ``dst_host`` traffic the wrong way."""
        if self.routing is None:
            raise RuntimeError("misconfiguration faults need a RoutingFabric")
        self.routing.misconfigure(switch, dst_host, wrong_next_hop)
        self.records.append(FaultRecord(
            "misconfiguration", switch=switch,
            detail=f"{dst_host} -> {wrong_next_hop}"))

    # --------------------------------------------------------- gray failures
    def flap_link(self, a: str, b: str, period_s: float,
                  up_fraction: float = 0.5, start: float = 0.0,
                  bidirectional: bool = True) -> None:
        """Make the ``a <-> b`` link *flap*: up for ``up_fraction`` of every
        ``period_s`` window, down for the rest.

        The schedule is deterministic in simulated time: the link is up at
        time ``t`` iff ``((t - start) % period_s) / period_s < up_fraction``.
        Nothing happens until :meth:`advance` is called with the current
        clock - flapping is a *time-driven* fault, unlike the static ones
        above, which is exactly what makes it gray: any health check that
        samples the link while it happens to be up reports it healthy.
        """
        if period_s <= 0.0:
            raise ValueError("flap period must be positive")
        if not 0.0 < up_fraction < 1.0:
            raise ValueError("up fraction must be in (0, 1)")
        interfaces = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for iface in interfaces:
            self.topo.links.get(*iface)  # validate the interface exists
            self._flaps.append((iface, period_s, up_fraction, start))
            self.records.append(FaultRecord(
                "flapping_link", interface=iface,
                detail=f"period={period_s}s up={up_fraction}"))
        self.advance(start)

    def advance(self, now: float) -> None:
        """Apply every flap schedule at simulated time ``now``.

        Call this before each transmission round (or simulator step); it
        sets ``failed`` on every flapping link according to its schedule.
        Links without a flap schedule are untouched.
        """
        for (a, b), period, up_fraction, start in self._flaps:
            phase = ((now - start) % period) / period
            self.topo.links.get(a, b).failed = phase >= up_fraction

    def port_drops(self, switch: str, probability: float) -> List[Interface]:
        """Make *every* egress interface of ``switch`` drop silently.

        A failing linecard degrades all of a switch's ports at once; this
        is the aggregate version of :meth:`silent_drop`.  Returns the
        affected interfaces (the ground truth).
        """
        if not 0.0 < probability <= 1.0:
            raise ValueError("drop probability must be in (0, 1]")
        affected: List[Interface] = []
        for link in self.topo.links:
            if link.src != switch:
                continue
            link.drop_probability = probability
            affected.append((link.src, link.dst))
            self.records.append(FaultRecord(
                "port_drop", interface=(link.src, link.dst), switch=switch,
                detail=f"p={probability}"))
        if not affected:
            raise ValueError(f"switch {switch!r} has no egress interfaces")
        return affected

    def slow_switch(self, switch: str, latency_factor: float
                    ) -> List[Interface]:
        """Make ``switch`` slow-but-alive: scale its links' latency.

        Every interface touching the switch (both directions) has its
        ``latency_s`` multiplied by ``latency_factor``.  No packet is
        dropped - the switch passes binary health checks while degrading
        every flow through it.  :meth:`clear` restores the original
        latencies.  Returns the affected interfaces.
        """
        if latency_factor <= 0.0:
            raise ValueError("latency factor must be positive")
        affected: List[Interface] = []
        for link in self.topo.links:
            if switch not in (link.src, link.dst):
                continue
            iface = (link.src, link.dst)
            self._original_latency.setdefault(iface, link.latency_s)
            link.latency_s = link.latency_s * latency_factor
            affected.append(iface)
        if not affected:
            raise ValueError(f"switch {switch!r} has no interfaces")
        self.records.append(FaultRecord(
            "slow_switch", switch=switch, detail=f"x{latency_factor}"))
        return affected

    # ----------------------------------------------------------- scenarios
    def random_silent_drop_interfaces(
            self, count: int, probability: float,
            candidate_interfaces: Optional[Sequence[Interface]] = None,
    ) -> List[Interface]:
        """Pick ``count`` random switch-switch interfaces and make them lossy.

        This reproduces the Section 4.3 setup ("we configure 1-4 randomly
        selected interfaces such that they drop packets at random").

        Args:
            count: number of faulty interfaces.
            probability: per-packet silent drop probability.
            candidate_interfaces: restrict the choice (defaults to every
                directed switch-to-switch interface).

        Returns:
            The list of chosen interfaces (the ground truth).
        """
        if candidate_interfaces is None:
            candidate_interfaces = [
                (l.src, l.dst) for l in self.topo.switch_links()]
        if count > len(candidate_interfaces):
            raise ValueError("not enough candidate interfaces")
        chosen = self.rng.sample(list(candidate_interfaces), count)
        for a, b in chosen:
            self.silent_drop(a, b, probability)
        return chosen

    # ------------------------------------------------------------- queries
    def faulty_interfaces(self, kinds: Optional[Set[str]] = None
                          ) -> Set[Interface]:
        """Ground-truth faulty interfaces, optionally filtered by kind."""
        result = set()
        for record in self.records:
            if record.interface is None:
                continue
            if kinds is not None and record.kind not in kinds:
                continue
            result.add(record.interface)
        return result

    def faulty_cables(self, kinds: Optional[Set[str]] = None
                      ) -> Set[frozenset]:
        """Ground-truth faulty cables (undirected), for localization scoring."""
        return {frozenset(i) for i in self.faulty_interfaces(kinds)}

    def clear(self) -> None:
        """Remove every injected fault and forget the ground truth."""
        self.topo.links.clear_faults()
        for (a, b), latency in self._original_latency.items():
            self.topo.links.get(a, b).latency_s = latency
        self._original_latency.clear()
        self._flaps.clear()
        if self.routing is not None:
            self.routing.clear_misconfigurations()
        self.records.clear()


def make_header_corruptor(wrong_vid: int, probability: float = 1.0,
                          seed: int = 0):
    """Build a header-corruptor hook for a faulty switch (Section 2.4).

    The returned callable rewrites the outermost VLAN tag of packets passing
    through the switch with ``wrong_vid``, with the given probability.

    Args:
        wrong_vid: the bogus link identifier the switch writes.
        probability: per-packet probability of corruption.
        seed: RNG seed for the corruption coin flip.

    Returns:
        A callable suitable for :attr:`repro.network.switch.Switch.header_corruptor`.
    """
    rng = random.Random(seed)

    def corrupt(switch_name: str, packet: Packet) -> bool:
        if packet.vlan_count == 0:
            return False
        if probability < 1.0 and rng.random() >= probability:
            return False
        packet.vlan_stack[0].vid = wrong_vid
        return True

    return corrupt
