"""Packet and header model for the simulated datacenter fabric.

PathDump's in-network component embeds sampled link identifiers into packet
headers using VLAN tags (and, for VL2, the DSCP field).  This module models
exactly the header state those mechanisms need:

* the usual 5-tuple flow identity,
* a stack of VLAN tags (each carrying a 12-bit global link ID),
* an optional MPLS label stack (kept for completeness; the paper mentions
  MPLS tags as an alternative carrier),
* the 6-bit DSCP field,
* TTL, TCP flags and payload size.

The classes here are plain data containers; all forwarding behaviour lives in
:mod:`repro.network.switch` and :mod:`repro.network.simulator`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Tuple

#: Protocol numbers used throughout the repository.
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1

#: VLAN IDs are 12 bits wide; this is the number of distinct link IDs
#: CherryPick can encode in a single tag (the paper's "4,096 unique link IDs").
VLAN_ID_BITS = 12
MAX_VLAN_ID = (1 << VLAN_ID_BITS) - 1

#: DSCP is 6 bits wide.
DSCP_BITS = 6
MAX_DSCP = (1 << DSCP_BITS) - 1

#: Default TTL for injected packets (ample for any datacenter path).
DEFAULT_TTL = 64

#: Default maximum segment size used by the TCP model (bytes of payload).
DEFAULT_MSS = 1460

#: Ethernet + IP + TCP header bytes added on the wire.
WIRE_HEADER_BYTES = 54
#: Bytes added per VLAN tag on the wire.
VLAN_TAG_BYTES = 4


class FlowId(NamedTuple):
    """The usual 5-tuple identifying a flow.

    The paper's definition: ``<srcIP, dstIP, srcPort, dstPort, protocol>``.
    IP addresses are represented as strings (host names double as addresses
    in the simulator), ports as integers and the protocol as an IANA number.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int

    def reversed(self) -> "FlowId":
        """Return the flow ID of the reverse direction (e.g. for ACKs)."""
        return FlowId(self.dst_ip, self.src_ip, self.dst_port,
                      self.src_port, self.protocol)

    def is_tcp(self) -> bool:
        """Return ``True`` when the flow is TCP."""
        return self.protocol == PROTO_TCP

    def short(self) -> str:
        """Compact human-readable representation used in logs and alarms."""
        return (f"{self.src_ip}:{self.src_port}->"
                f"{self.dst_ip}:{self.dst_port}/{self.protocol}")


class TcpFlags(NamedTuple):
    """TCP control flags carried by a packet.

    Only the flags PathDump's edge stack reacts to are modelled: ``SYN``
    (connection start), ``FIN``/``RST`` (flow-record eviction triggers in the
    trajectory memory, mirroring NetFlow semantics) and ``ACK``.
    """

    syn: bool = False
    fin: bool = False
    rst: bool = False
    ack: bool = False

    @property
    def terminates_flow(self) -> bool:
        """``True`` when the packet signals flow termination (FIN or RST)."""
        return self.fin or self.rst


@dataclass
class VlanTag:
    """A single 802.1Q tag carrying a CherryPick link identifier.

    Attributes:
        vid: the 12-bit VLAN identifier; CherryPick stores a global link ID.
        pcp: priority code point (unused by PathDump, kept for realism).
    """

    vid: int
    pcp: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.vid <= MAX_VLAN_ID:
            raise ValueError(f"VLAN id {self.vid} outside 12-bit range")
        if not 0 <= self.pcp <= 7:
            raise ValueError(f"PCP {self.pcp} outside 3-bit range")


@dataclass
class MplsLabel:
    """An MPLS label stack entry (20-bit label)."""

    label: int
    ttl: int = DEFAULT_TTL

    def __post_init__(self) -> None:
        if not 0 <= self.label < (1 << 20):
            raise ValueError(f"MPLS label {self.label} outside 20-bit range")


@dataclass
class Packet:
    """A packet traversing the simulated fabric.

    The header layout mirrors what PathDump's OVS module sees: an Ethernet
    frame whose VLAN stack carries trajectory information, an IP header with
    a DSCP field (used by the VL2 encoding), and a TCP/UDP payload.

    Attributes:
        flow: the 5-tuple flow identity.
        size: payload size in bytes (excluding headers and tags).
        seq: sequence number assigned by the sender (packet index in flow).
        ttl: remaining time-to-live; decremented per switch hop.
        dscp: 6-bit DSCP value, ``None`` when unset ("unused" in CherryPick's
            VL2 encoding is modelled as ``None``).
        vlan_stack: outermost-first stack of VLAN tags.
        mpls_stack: outermost-first stack of MPLS labels (normally empty).
        flags: TCP flags.
        timestamp: injection time (simulated seconds).
        retransmission: ``True`` when this packet is a TCP retransmission.
    """

    flow: FlowId
    size: int = DEFAULT_MSS
    seq: int = 0
    ttl: int = DEFAULT_TTL
    dscp: Optional[int] = None
    vlan_stack: List[VlanTag] = field(default_factory=list)
    mpls_stack: List[MplsLabel] = field(default_factory=list)
    flags: TcpFlags = TcpFlags()
    timestamp: float = 0.0
    retransmission: bool = False

    # ------------------------------------------------------------------ tags
    def push_vlan(self, vid: int) -> None:
        """Push a VLAN tag carrying ``vid`` onto the top of the stack."""
        self.vlan_stack.insert(0, VlanTag(vid))

    def pop_vlan(self) -> Optional[int]:
        """Pop the outermost VLAN tag and return its VID (``None`` if empty)."""
        if not self.vlan_stack:
            return None
        return self.vlan_stack.pop(0).vid

    def peek_vlan(self) -> Optional[int]:
        """Return the outermost VLAN VID without removing it."""
        if not self.vlan_stack:
            return None
        return self.vlan_stack[0].vid

    def vlan_ids(self) -> List[int]:
        """Return all VLAN VIDs, outermost first."""
        return [tag.vid for tag in self.vlan_stack]

    @property
    def vlan_count(self) -> int:
        """Number of VLAN tags currently carried."""
        return len(self.vlan_stack)

    def set_dscp(self, value: int) -> None:
        """Set the DSCP field (6-bit)."""
        if not 0 <= value <= MAX_DSCP:
            raise ValueError(f"DSCP {value} outside 6-bit range")
        self.dscp = value

    def clear_dscp(self) -> None:
        """Reset the DSCP field to unset."""
        self.dscp = None

    def strip_trajectory(self) -> Tuple[List[int], Optional[int]]:
        """Remove and return all trajectory state (VLAN VIDs and DSCP).

        This is what the edge vswitch does before handing the packet to the
        upper stack: the trajectory information is irrelevant to transport
        protocols and must not reach them.

        Returns:
            A tuple ``(vlan_ids, dscp)`` of the removed state.
        """
        vids = self.vlan_ids()
        dscp = self.dscp
        self.vlan_stack = []
        self.dscp = None
        return vids, dscp

    # ----------------------------------------------------------------- sizes
    @property
    def wire_size(self) -> int:
        """Total bytes on the wire including headers and tags."""
        return (self.size + WIRE_HEADER_BYTES
                + VLAN_TAG_BYTES * len(self.vlan_stack)
                + VLAN_TAG_BYTES * len(self.mpls_stack))

    # ------------------------------------------------------------------ misc
    def decrement_ttl(self) -> bool:
        """Decrement TTL; return ``False`` when the packet must be dropped."""
        self.ttl -= 1
        return self.ttl > 0

    def copy(self) -> "Packet":
        """Return an independent deep copy of the packet."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Packet({self.flow.short()}, seq={self.seq}, "
                f"size={self.size}, vlans={self.vlan_ids()}, "
                f"dscp={self.dscp})")


def make_tcp_packet(src: str, dst: str, *, src_port: int = 40000,
                    dst_port: int = 80, size: int = DEFAULT_MSS,
                    seq: int = 0, syn: bool = False, fin: bool = False,
                    rst: bool = False, timestamp: float = 0.0) -> Packet:
    """Convenience constructor for a TCP packet between two hosts.

    Args:
        src: source host name / address.
        dst: destination host name / address.
        src_port: source port.
        dst_port: destination port.
        size: payload bytes.
        seq: sequence number (packet index).
        syn: set the SYN flag.
        fin: set the FIN flag.
        rst: set the RST flag.
        timestamp: injection time in simulated seconds.

    Returns:
        A fully initialised :class:`Packet`.
    """
    flow = FlowId(src, dst, src_port, dst_port, PROTO_TCP)
    flags = TcpFlags(syn=syn, fin=fin, rst=rst, ack=not syn)
    return Packet(flow=flow, size=size, seq=seq, flags=flags,
                  timestamp=timestamp)


def make_udp_packet(src: str, dst: str, *, src_port: int = 50000,
                    dst_port: int = 53, size: int = 512,
                    seq: int = 0, timestamp: float = 0.0) -> Packet:
    """Convenience constructor for a UDP packet between two hosts."""
    flow = FlowId(src, dst, src_port, dst_port, PROTO_UDP)
    return Packet(flow=flow, size=size, seq=seq, timestamp=timestamp)
