"""Links and ports of the simulated fabric.

A :class:`Link` is a *directed* adjacency between two nodes (switch or host).
Each physical cable is modelled as two directed links, one per direction,
because faults in real networks (a failing transceiver, a blackholed
interface) are frequently unidirectional and the paper's silent-drop
experiments configure individual *interfaces* as faulty.

Links also carry the per-direction fault state used throughout the
evaluation:

* ``drop_probability`` - silent random packet drops (Section 4.3),
* ``blackhole`` - drop everything silently (Section 4.4),
* ``failed`` - an administratively/physically down link that routing must
  avoid (Section 4.1's failover scenario).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Directed link endpoints expressed as node names.
Endpoints = Tuple[str, str]

#: Default per-hop latency: propagation plus switching delay, in seconds.
DEFAULT_LATENCY_S = 25e-6

#: Default link capacity in bits per second (10 GbE access links).
DEFAULT_CAPACITY_BPS = 10e9


@dataclass
class LinkStats:
    """Per-link counters used by the evaluation and the tests."""

    tx_packets: int = 0
    tx_bytes: int = 0
    dropped_random: int = 0
    dropped_blackhole: int = 0
    dropped_failed: int = 0

    @property
    def dropped_total(self) -> int:
        """Total packets dropped on the link, for any reason."""
        return (self.dropped_random + self.dropped_blackhole
                + self.dropped_failed)

    def reset(self) -> None:
        """Zero all counters."""
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_random = 0
        self.dropped_blackhole = 0
        self.dropped_failed = 0


@dataclass
class Link:
    """A directed link ``src -> dst`` with capacity, latency and fault state.

    Attributes:
        src: transmitting node name.
        dst: receiving node name.
        capacity_bps: nominal capacity in bits per second.
        latency_s: one-way latency in seconds (propagation + switching).
        global_id: CherryPick global link identifier (assigned by
            :mod:`repro.topology.linkid`); ``None`` for host-facing links,
            which are never sampled.
        drop_probability: probability that a packet is *silently* dropped.
            Silent means the interface does not update its discard counters;
            the simulator still tracks the drops for ground truth.
        blackhole: drop every packet silently.
        failed: the link is down; routing should avoid it and any packet
            forwarded over it is dropped (and counted as ``dropped_failed``).
    """

    src: str
    dst: str
    capacity_bps: float = DEFAULT_CAPACITY_BPS
    latency_s: float = DEFAULT_LATENCY_S
    global_id: Optional[int] = None
    drop_probability: float = 0.0
    blackhole: bool = False
    failed: bool = False
    stats: LinkStats = field(default_factory=LinkStats)

    @property
    def endpoints(self) -> Endpoints:
        """The ``(src, dst)`` node pair."""
        return (self.src, self.dst)

    @property
    def healthy(self) -> bool:
        """``True`` when the link has no fault configured."""
        return (not self.failed and not self.blackhole
                and self.drop_probability == 0.0)

    def transmit(self, wire_bytes: int, rng: random.Random) -> Tuple[bool, str]:
        """Attempt to transmit a packet of ``wire_bytes`` over the link.

        Args:
            wire_bytes: on-the-wire size of the packet.
            rng: random source used for the silent-drop coin flip, supplied
                by the simulator so experiments are reproducible.

        Returns:
            ``(delivered, reason)`` where ``reason`` is one of ``"ok"``,
            ``"failed"``, ``"blackhole"`` or ``"random_drop"``.
        """
        if self.failed:
            self.stats.dropped_failed += 1
            return False, "failed"
        if self.blackhole:
            self.stats.dropped_blackhole += 1
            return False, "blackhole"
        if self.drop_probability > 0.0 and rng.random() < self.drop_probability:
            self.stats.dropped_random += 1
            return False, "random_drop"
        self.stats.tx_packets += 1
        self.stats.tx_bytes += wire_bytes
        return True, "ok"

    def serialization_delay(self, wire_bytes: int) -> float:
        """Time to serialize ``wire_bytes`` onto the link, in seconds."""
        return wire_bytes * 8.0 / self.capacity_bps

    def clear_faults(self) -> None:
        """Remove all fault state from the link."""
        self.drop_probability = 0.0
        self.blackhole = False
        self.failed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flags = []
        if self.failed:
            flags.append("failed")
        if self.blackhole:
            flags.append("blackhole")
        if self.drop_probability:
            flags.append(f"drop={self.drop_probability}")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return f"Link({self.src}->{self.dst}, id={self.global_id}{suffix})"


class LinkRegistry:
    """Container mapping directed endpoint pairs to :class:`Link` objects.

    The registry is shared by the topology, the routing layer and the
    simulator; it is the single source of truth for link state.
    """

    def __init__(self) -> None:
        self._links: Dict[Endpoints, Link] = {}

    def add(self, link: Link) -> Link:
        """Register ``link``; both directions must be added separately."""
        key = link.endpoints
        if key in self._links:
            raise ValueError(f"duplicate link {key}")
        self._links[key] = link
        return link

    def add_bidirectional(self, a: str, b: str, **kwargs) -> Tuple[Link, Link]:
        """Create and register both directions of a cable between ``a``/``b``."""
        fwd = self.add(Link(a, b, **kwargs))
        rev = self.add(Link(b, a, **kwargs))
        return fwd, rev

    def get(self, src: str, dst: str) -> Link:
        """Return the directed link ``src -> dst`` (KeyError if absent)."""
        return self._links[(src, dst)]

    def maybe_get(self, src: str, dst: str) -> Optional[Link]:
        """Return the directed link or ``None`` when it does not exist."""
        return self._links.get((src, dst))

    def __contains__(self, endpoints: Endpoints) -> bool:
        return endpoints in self._links

    def __iter__(self):
        return iter(self._links.values())

    def __len__(self) -> int:
        return len(self._links)

    def all_endpoints(self):
        """Iterate over all registered ``(src, dst)`` pairs."""
        return self._links.keys()

    def reset_stats(self) -> None:
        """Reset statistics on every link."""
        for link in self._links.values():
            link.stats.reset()

    def clear_faults(self) -> None:
        """Remove fault state from every link."""
        for link in self._links.values():
            link.clear_faults()
