"""Routing and load balancing for the simulated fabric.

Datacenter fabrics give every pair of hosts many equal-cost paths; which one
a packet takes is decided hop by hop by the load-balancing scheme.  PathDump
is explicitly agnostic to that scheme (Section 2.3, "independent of the
underlying scheme used for load balancing"), and the paper's experiments use
both of the common ones:

* **ECMP** - the egress is chosen by hashing the 5-tuple, so all packets of a
  flow follow one path;
* **packet spraying** [Dixit et al.] - the egress is chosen per packet
  (randomly or round-robin), so a flow's packets spread over all equal-cost
  paths.

This module computes per-switch routing tables (next-hop candidate sets per
destination host) from the topology and implements the selection policies,
including the hooks the evaluation scenarios need:

* a per-switch *custom selector* (used to model the biased ECMP hash of
  Figure 5 and the biased spraying of Figure 6),
* a *failover* path when every shortest-path next hop is unreachable (used in
  the Figure 4 path-conformance experiment).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.network.packet import FlowId, Packet
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.graph import Topology

#: Selection policies.
POLICY_ECMP = "ecmp"
POLICY_SPRAY = "spray"

#: A custom selector receives (packet, candidate next hops) and returns one.
CustomSelector = Callable[[Packet, Sequence[str]], str]


def flow_hash(flow: FlowId, salt: str = "") -> int:
    """Deterministic hash of a 5-tuple (stable across processes).

    Python's builtin ``hash`` is randomised per process, which would make
    experiments irreproducible; use a truncated MD5 instead.
    """
    key = f"{flow.src_ip}|{flow.dst_ip}|{flow.src_port}|{flow.dst_port}|" \
          f"{flow.protocol}|{salt}"
    digest = hashlib.md5(key.encode("utf-8")).hexdigest()
    return int(digest[:8], 16)


@dataclass
class SwitchRoutingTable:
    """Forwarding state of one switch.

    Attributes:
        switch: the switch name.
        next_hops: destination host -> list of equal-cost next-hop nodes.
        failover_hops: destination host -> ordered fallback next hops used
            when every entry of ``next_hops`` is unreachable (link failed).
        policy: ``"ecmp"`` or ``"spray"``.
        custom_selector: optional override of the selection function for this
            switch (evaluation scenarios install these).
        misconfigured_next_hop: destination host -> forced next hop,
            modelling an operator/controller misconfiguration (routing-loop
            experiments).  Takes precedence over everything else.
        spray_counters: per-destination round-robin counters (packet spraying
            with round-robin selection).
    """

    switch: str
    next_hops: Dict[str, List[str]] = field(default_factory=dict)
    failover_hops: Dict[str, List[str]] = field(default_factory=dict)
    policy: str = POLICY_ECMP
    custom_selector: Optional[CustomSelector] = None
    misconfigured_next_hop: Dict[str, str] = field(default_factory=dict)
    spray_counters: Dict[str, int] = field(default_factory=dict)

    def candidates(self, dst_host: str) -> List[str]:
        """Equal-cost next hops toward ``dst_host`` (may be empty)."""
        return self.next_hops.get(dst_host, [])

    def select(self, packet: Packet, dst_host: str, rng: random.Random,
               is_link_usable: Callable[[str, str], bool]) -> Optional[str]:
        """Choose the next hop for ``packet`` toward ``dst_host``.

        Args:
            packet: the packet being forwarded.
            dst_host: its destination host.
            rng: random source (for spraying).
            is_link_usable: predicate telling whether the directed link from
                this switch to a candidate is usable (not failed).  Links
                with silent faults (random drops, blackholes) *are* usable -
                that is what makes those faults hard to debug.

        Returns:
            The chosen next-hop node name, or ``None`` when no usable next
            hop exists (the packet is then dropped).
        """
        # 1. Misconfiguration wins: this is how routing loops are created.
        forced = self.misconfigured_next_hop.get(dst_host)
        if forced is not None:
            return forced

        usable = [n for n in self.candidates(dst_host)
                  if is_link_usable(self.switch, n)]
        if usable:
            if self.custom_selector is not None:
                return self.custom_selector(packet, usable)
            if self.policy == POLICY_SPRAY:
                return self._spray(dst_host, usable, rng)
            return self._ecmp(packet.flow, usable)

        # 2. Failover: every shortest-path next hop is down; detour.
        for hop in self.failover_hops.get(dst_host, []):
            if is_link_usable(self.switch, hop):
                return hop
        return None

    def _ecmp(self, flow: FlowId, usable: Sequence[str]) -> str:
        """Hash-based selection: all packets of a flow take the same hop."""
        return usable[flow_hash(flow, salt=self.switch) % len(usable)]

    def _spray(self, dst_host: str, usable: Sequence[str],
               rng: random.Random) -> str:
        """Per-packet selection; uniform random spraying."""
        return usable[rng.randrange(len(usable))]

    def rule_count(self) -> int:
        """Approximate number of forwarding rules this table represents."""
        return sum(1 for _ in self.next_hops) + len(self.misconfigured_next_hop)


class RoutingFabric:
    """Routing tables for every switch of a topology.

    Args:
        topo: the topology.
        policy: default load-balancing policy for all switches.
    """

    def __init__(self, topo: "Topology", policy: str = POLICY_ECMP) -> None:
        if policy not in (POLICY_ECMP, POLICY_SPRAY):
            raise ValueError(f"unknown policy {policy!r}")
        self.topo = topo
        self.policy = policy
        self.tables: Dict[str, SwitchRoutingTable] = {}
        self._build()

    def _build(self) -> None:
        """Populate next-hop and failover candidate sets for every switch."""
        graph = self.topo.graph
        hosts = self.topo.hosts
        # Distances from every node to every host, computed per host for
        # clarity (topologies used in the experiments are small).
        dist_to_host: Dict[str, Dict[str, int]] = {}
        for host in hosts:
            dist_to_host[host] = nx.single_source_shortest_path_length(
                graph, host)
        for switch in self.topo.switches:
            table = SwitchRoutingTable(switch=switch, policy=self.policy)
            for host in hosts:
                dists = dist_to_host[host]
                if switch not in dists:
                    continue
                my_dist = dists[switch]
                neighbors = self.topo.neighbors(switch)
                nexts = sorted(n for n in neighbors
                               if dists.get(n, float("inf")) == my_dist - 1)
                table.next_hops[host] = nexts
                # Failover: neighbors that still lead to the host but over a
                # longer path, ordered by resulting path length, preferring
                # lower-tier neighbors (ToRs before aggregates before cores),
                # which mirrors the "bounce through a sibling rack" behaviour
                # of simple local failover schemes.  Hosts are never valid
                # detours unless they are the destination.
                tier_rank = {"edge": 0, "aggregate": 1, "core": 2}
                detours = [(dists.get(n, float("inf")),
                            tier_rank.get(self.topo.node(n).role, 3), n)
                           for n in neighbors
                           if n not in nexts and n != host
                           and not self.topo.node(n).is_host
                           and dists.get(n, float("inf")) < float("inf")]
                table.failover_hops[host] = [n for _, _, n in sorted(detours)]
            self.tables[switch] = table

    # ---------------------------------------------------------------- access
    def table(self, switch: str) -> SwitchRoutingTable:
        """Routing table of ``switch``."""
        return self.tables[switch]

    def set_policy(self, policy: str,
                   switches: Optional[Sequence[str]] = None) -> None:
        """Set the load-balancing policy globally or for specific switches."""
        targets = switches if switches is not None else list(self.tables)
        for s in targets:
            self.tables[s].policy = policy

    def install_custom_selector(self, switch: str,
                                selector: CustomSelector) -> None:
        """Install a per-switch custom egress selector (scenario hook)."""
        self.tables[switch].custom_selector = selector

    def clear_custom_selectors(self) -> None:
        """Remove all custom selectors."""
        for table in self.tables.values():
            table.custom_selector = None

    def misconfigure(self, switch: str, dst_host: str, next_hop: str) -> None:
        """Force ``switch`` to send traffic for ``dst_host`` to ``next_hop``."""
        if next_hop not in self.topo.neighbors(switch):
            raise ValueError(f"{next_hop} is not adjacent to {switch}")
        self.tables[switch].misconfigured_next_hop[dst_host] = next_hop

    def clear_misconfigurations(self) -> None:
        """Remove every forced next hop."""
        for table in self.tables.values():
            table.misconfigured_next_hop.clear()

    def total_rule_count(self) -> int:
        """Total forwarding rules across the fabric (resource accounting)."""
        return sum(t.rule_count() for t in self.tables.values())

    def equal_cost_paths(self, src_host: str, dst_host: str) -> List[List[str]]:
        """All equal-cost (shortest) host-to-host paths, sorted."""
        return self.topo.all_shortest_paths(src_host, dst_host)
