"""Switch model.

A PathDump switch is intentionally boring: it forwards packets using its
normal routing state and, "in addition to its usual operations, checks for a
condition before forwarding a packet; if the condition is met, the switch
embeds its identifier into the packet header" (Section 1).  The only other
behaviour the system relies on is a hardware artifact: the ASIC parses at
most two VLAN tags, so a packet carrying three or more tags misses the
forwarding rules and is punted to the controller - which is exactly how
suspiciously long paths and routing loops surface (Sections 3.1, 4.5).

The :class:`Switch` class combines:

* a port map (port number <-> adjacent node),
* a reference to its :class:`~repro.network.routing.SwitchRoutingTable`,
* a :class:`~repro.network.flowtable.FlowTablePipeline` holding the static
  CherryPick tagging rules (installed once by the controller),
* an optional fast-path *tagger* callback used by the simulator to apply the
  same tagging decision without a full rule lookup (the rules remain the
  ground truth and are exercised by the tests),
* a *header corruptor* hook modelling a faulty/malicious switch that writes
  an incorrect identifier (Section 2.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.flowtable import FlowTablePipeline
from repro.network.packet import Packet
from repro.network.routing import SwitchRoutingTable

#: Result codes for a single switch forwarding step.
STEP_FORWARD = "forward"
STEP_DELIVER = "deliver"
STEP_PUNT = "punt"
STEP_DROP_NO_ROUTE = "no_route"
STEP_DROP_TTL = "ttl_expired"

#: A tagger mutates the packet as it is forwarded from ``in_node`` out to
#: ``out_node`` through ``switch`` (pushing VLAN tags / setting DSCP).
Tagger = Callable[[str, Optional[str], str, Packet], None]

#: A header corruptor may arbitrarily rewrite the trajectory state of a
#: packet as it leaves the switch; returns True when it modified the packet.
HeaderCorruptor = Callable[[str, Packet], bool]


@dataclass
class SwitchCounters:
    """Per-switch counters (used in overhead accounting and tests)."""

    forwarded: int = 0
    punted: int = 0
    dropped_no_route: int = 0
    tags_pushed: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.forwarded = 0
        self.punted = 0
        self.dropped_no_route = 0
        self.tags_pushed = 0


@dataclass
class StepDecision:
    """Outcome of processing one packet at one switch.

    Attributes:
        action: one of the ``STEP_*`` constants.
        next_node: node the packet is forwarded to (for ``forward`` and
            ``deliver``).
        punt_reason: free-form reason when ``action == "punt"``.
    """

    action: str
    next_node: Optional[str] = None
    punt_reason: str = ""


class Switch:
    """A commodity SDN switch.

    Args:
        name: switch name (also its identifier in trajectories).
        routing: the switch's routing table.
        neighbors: adjacent node names, in deterministic order; port numbers
            are assigned from 1 following this order.
        max_parsable_vlan_tags: ASIC limit on VLAN tags parsed at line rate.
    """

    def __init__(self, name: str, routing: SwitchRoutingTable,
                 neighbors: List[str],
                 max_parsable_vlan_tags: int = 2) -> None:
        self.name = name
        self.routing = routing
        self.ports: Dict[int, str] = {i + 1: n for i, n in enumerate(neighbors)}
        self.port_of: Dict[str, int] = {n: p for p, n in self.ports.items()}
        self.pipeline = FlowTablePipeline(
            num_tables=2, max_parsable_vlan_tags=max_parsable_vlan_tags)
        self.max_parsable_vlan_tags = max_parsable_vlan_tags
        self.tagger: Optional[Tagger] = None
        self.header_corruptor: Optional[HeaderCorruptor] = None
        self.counters = SwitchCounters()

    # -------------------------------------------------------------- plumbing
    def port_to(self, neighbor: str) -> int:
        """Port number facing ``neighbor``."""
        return self.port_of[neighbor]

    def neighbor_on(self, port: int) -> str:
        """Neighbor reachable through ``port``."""
        return self.ports[port]

    @property
    def rule_count(self) -> int:
        """Number of static tagging rules installed on this switch."""
        return self.pipeline.rule_count

    # ------------------------------------------------------------ forwarding
    def process(self, packet: Packet, in_node: Optional[str],
                dst_host: str, rng: random.Random,
                is_link_usable: Callable[[str, str], bool],
                is_host: Callable[[str], bool]) -> StepDecision:
        """Process ``packet`` arriving from ``in_node`` toward ``dst_host``.

        The processing order mirrors the hardware behaviour the paper relies
        on:

        1. If the packet carries more VLAN tags than the ASIC can parse, the
           IP forwarding lookup misses and the packet is punted to the
           controller ("instant trap of suspiciously long path").
        2. TTL is decremented; expiry drops the packet.
        3. The routing table selects an egress (misconfigurations first, then
           ECMP/spraying/custom selection, then failover).
        4. The CherryPick tagging decision runs for the chosen egress.
        5. A faulty switch may corrupt the trajectory header on the way out.

        Returns:
            A :class:`StepDecision`.  The caller (the fabric simulator) is
            responsible for actually transmitting over the link, so that
            link-level faults remain in one place.
        """
        if packet.vlan_count > self.max_parsable_vlan_tags:
            self.counters.punted += 1
            return StepDecision(STEP_PUNT,
                                punt_reason="vlan_parse_limit_exceeded")

        if not packet.decrement_ttl():
            return StepDecision(STEP_DROP_TTL)

        next_node = self.routing.select(packet, dst_host, rng, is_link_usable)
        if next_node is None:
            self.counters.dropped_no_route += 1
            return StepDecision(STEP_DROP_NO_ROUTE)

        before = packet.vlan_count + (0 if packet.dscp is None else 1)
        if self.tagger is not None:
            self.tagger(self.name, in_node, next_node, packet)
        after = packet.vlan_count + (0 if packet.dscp is None else 1)
        if after > before:
            self.counters.tags_pushed += after - before

        if self.header_corruptor is not None:
            self.header_corruptor(self.name, packet)

        self.counters.forwarded += 1
        if is_host(next_node):
            return StepDecision(STEP_DELIVER, next_node=next_node)
        return StepDecision(STEP_FORWARD, next_node=next_node)


def build_switches(topo, routing_fabric,
                   max_parsable_vlan_tags: int = 2) -> Dict[str, Switch]:
    """Instantiate a :class:`Switch` for every switch node of a topology.

    Args:
        topo: a :class:`~repro.topology.graph.Topology`.
        routing_fabric: a :class:`~repro.network.routing.RoutingFabric` built
            for the same topology.
        max_parsable_vlan_tags: ASIC parsing limit applied to all switches.

    Returns:
        Mapping from switch name to its :class:`Switch` instance.
    """
    switches: Dict[str, Switch] = {}
    for name in topo.switches:
        switches[name] = Switch(
            name=name,
            routing=routing_fabric.table(name),
            neighbors=topo.neighbors(name),
            max_parsable_vlan_tags=max_parsable_vlan_tags)
    return switches
