"""The fabric simulator: clock, event scheduler and hop-by-hop forwarding.

The simulator ties together the topology, the routing tables, the switches
and the links, and walks packets hop by hop from the source host to either

* the destination host (where the PathDump edge stack takes over),
* a drop (link failure, silent drop, blackhole, TTL expiry, no route), or
* a punt to the controller (the long-path / routing-loop trap).

Time is simulated: the clock advances as the caller schedules work through
the :class:`EventScheduler`, and each forwarded packet accumulates per-hop
latency so that controller-visible delays (e.g. the ~47 ms routing-loop
detection time of Section 4.5) have a concrete meaning.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.link import Link
from repro.network.packet import Packet
from repro.network.switch import (STEP_DELIVER, STEP_DROP_NO_ROUTE,
                                  STEP_DROP_TTL, STEP_FORWARD, STEP_PUNT,
                                  Switch, build_switches)
from repro.network.routing import RoutingFabric
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.graph import Topology

#: Forwarding outcomes.
OUTCOME_DELIVERED = "delivered"
OUTCOME_DROPPED = "dropped"
OUTCOME_PUNTED = "punted"

#: Extra processing latency charged per switch hop (seconds), on top of link
#: latency; roughly a store-and-forward plus pipeline delay.
SWITCH_LATENCY_S = 5e-6

#: Latency of the switch -> controller punt channel (seconds).  The paper's
#: loop-detection latency (~47 ms for a 4-hop loop) is dominated by this
#: control-channel and controller software path, not by data-plane hops.
PUNT_CHANNEL_LATENCY_S = 15e-3


class SimClock:
    """A simple monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Advance the clock to ``when`` (no-op if already past it)."""
        if when > self._now:
            self._now = when
        return self._now


class EventScheduler:
    """A heap-based discrete event scheduler driving flow-level activity.

    Events are ``(time, callback)`` pairs; callbacks may schedule further
    events.  The scheduler shares a :class:`SimClock` with the fabric so
    packet latencies and flow-level timers observe the same notion of time.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self.clock.now:
            raise ValueError(f"cannot schedule in the past ({when} < "
                             f"{self.clock.now})")
        heapq.heappush(self._heap, (when, next(self._counter), callback))

    def schedule_after(self, delay: float,
                       callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.schedule(self.clock.now + delay, callback)

    def schedule_periodic(self, period: float, callback: Callable[[], None],
                          until: Optional[float] = None) -> None:
        """Schedule ``callback`` every ``period`` seconds (optionally bounded)."""
        def tick() -> None:
            callback()
            next_time = self.clock.now + period
            if until is None or next_time <= until:
                self.schedule(next_time, tick)

        self.schedule_after(period, tick)

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)

    def run_until(self, end_time: float) -> int:
        """Run all events scheduled up to ``end_time``; return count executed."""
        executed = 0
        while self._heap and self._heap[0][0] <= end_time:
            when, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback()
            executed += 1
        self.clock.advance_to(end_time)
        return executed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Run every pending event; guard against runaway schedules."""
        executed = 0
        while self._heap:
            if executed >= max_events:
                raise RuntimeError("event budget exceeded")
            when, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback()
            executed += 1
        return executed


@dataclass
class HopRecord:
    """One hop of a packet's ground-truth trajectory."""

    node: str
    in_node: Optional[str]
    out_node: Optional[str]


@dataclass
class ForwardingResult:
    """Outcome of injecting one packet into the fabric.

    Attributes:
        outcome: one of ``delivered``, ``dropped``, ``punted``.
        packet: the packet in its final state (tags as accumulated).
        hops: the ground-truth node sequence actually visited, starting at
            the source host (or injection switch) and ending at the final
            node reached.
        latency: accumulated one-way latency in seconds.
        delivered_to: destination host (when delivered).
        drop_link: the directed link on which the packet was lost.
        drop_reason: ``failed``/``blackhole``/``random_drop``/``ttl_expired``
            /``no_route``.
        punt_switch: switch that punted the packet to the controller.
        punt_reason: why it was punted.
    """

    outcome: str
    packet: Packet
    hops: List[str]
    latency: float
    delivered_to: Optional[str] = None
    drop_link: Optional[Tuple[str, str]] = None
    drop_reason: Optional[str] = None
    punt_switch: Optional[str] = None
    punt_reason: Optional[str] = None

    @property
    def delivered(self) -> bool:
        """``True`` when the packet reached its destination host."""
        return self.outcome == OUTCOME_DELIVERED

    @property
    def switch_path(self) -> List[str]:
        """The switches visited, in order (hosts excluded)."""
        return [n for n in self.hops if not n.startswith(("h-", "vh-"))]


#: Callback invoked when a packet is delivered to a host:
#: (host, packet, arrival_time) -> None.
DeliveryHandler = Callable[[str, Packet, float], None]

#: Callback invoked when a switch punts a packet to the controller:
#: (switch, packet, time) -> None.
PuntHandler = Callable[[str, Packet, float], None]


class Fabric:
    """The simulated datacenter fabric.

    Args:
        topo: the topology.
        routing: routing tables (defaults to ECMP over the topology).
        seed: RNG seed for per-packet randomness (spraying, silent drops).
        max_parsable_vlan_tags: ASIC VLAN parsing limit for all switches.
    """

    def __init__(self, topo: "Topology", routing: Optional[RoutingFabric] = None,
                 seed: int = 0, max_parsable_vlan_tags: int = 2) -> None:
        self.topo = topo
        self.routing = routing or RoutingFabric(topo)
        self.rng = random.Random(seed)
        self.clock = SimClock()
        self.scheduler = EventScheduler(self.clock)
        self.switches: Dict[str, Switch] = build_switches(
            topo, self.routing, max_parsable_vlan_tags)
        self.delivery_handlers: Dict[str, DeliveryHandler] = {}
        self.punt_handler: Optional[PuntHandler] = None
        self._host_set = set(topo.hosts)
        #: hard cap on hops walked per packet, protecting against unbounded
        #: loops when the trap is disabled (e.g. in unit tests).
        self.max_hops = 64

    # ------------------------------------------------------------- plumbing
    def is_host(self, node: str) -> bool:
        """``True`` when ``node`` is an end host."""
        return node in self._host_set

    def is_link_usable(self, a: str, b: str) -> bool:
        """``True`` when the directed link a->b exists and is not failed.

        Silently faulty links (random drops, blackholes) are considered
        usable: the routing plane cannot see those faults, which is what
        makes them interesting debugging targets.
        """
        link = self.topo.links.maybe_get(a, b)
        return link is not None and not link.failed

    def register_delivery_handler(self, host: str,
                                  handler: DeliveryHandler) -> None:
        """Attach an edge-stack delivery callback to ``host``."""
        self.delivery_handlers[host] = handler

    def install_tagger(self, tagger) -> None:
        """Install the same tagging callback on every switch."""
        for switch in self.switches.values():
            switch.tagger = tagger

    # ------------------------------------------------------------ injection
    def inject(self, packet: Packet, src_host: Optional[str] = None,
               at_time: Optional[float] = None) -> ForwardingResult:
        """Send ``packet`` from its source host through the fabric.

        Args:
            packet: the packet; its flow's ``src_ip``/``dst_ip`` name hosts.
            src_host: source host (defaults to ``packet.flow.src_ip``).
            at_time: injection time; defaults to the current simulated time.

        Returns:
            A :class:`ForwardingResult` describing what happened.
        """
        src = src_host or packet.flow.src_ip
        if src not in self._host_set:
            raise ValueError(f"{src} is not a host")
        start = self.clock.now if at_time is None else at_time
        packet.timestamp = start
        tor = self.topo.tor_of(src)
        # First hop: host -> ToR link.
        result = self._transmit(packet, src, tor, [src], 0.0, start)
        if result is not None:
            return result
        return self._walk(packet, current=tor, prev=src, hops=[src, tor],
                          latency=self._hop_latency(src, tor, packet),
                          start=start)

    def forward_from(self, switch: str, packet: Packet, prev: Optional[str],
                     at_time: Optional[float] = None) -> ForwardingResult:
        """Inject ``packet`` directly at ``switch`` (controller re-injection).

        Used by the routing-loop debugger: after inspecting a punted packet
        the controller strips its tags and sends it back to the switch that
        punted it (Section 4.5, "detecting loops of any size").
        """
        start = self.clock.now if at_time is None else at_time
        return self._walk(packet, current=switch, prev=prev,
                          hops=[switch], latency=0.0, start=start)

    # ------------------------------------------------------------ internals
    def _hop_latency(self, a: str, b: str, packet: Packet) -> float:
        link = self.topo.links.get(a, b)
        return (link.latency_s + link.serialization_delay(packet.wire_size)
                + SWITCH_LATENCY_S)

    def _transmit(self, packet: Packet, a: str, b: str, hops: List[str],
                  latency: float, start: float) -> Optional[ForwardingResult]:
        """Attempt transmission over a->b; return a drop result or ``None``."""
        link = self.topo.links.get(a, b)
        delivered, reason = link.transmit(packet.wire_size, self.rng)
        if delivered:
            return None
        return ForwardingResult(
            outcome=OUTCOME_DROPPED, packet=packet, hops=list(hops),
            latency=latency, drop_link=(a, b), drop_reason=reason)

    def _walk(self, packet: Packet, current: str, prev: Optional[str],
              hops: List[str], latency: float, start: float
              ) -> ForwardingResult:
        dst_host = packet.flow.dst_ip
        for _ in range(self.max_hops):
            switch = self.switches[current]
            decision = switch.process(
                packet, prev, dst_host, self.rng,
                is_link_usable=self.is_link_usable, is_host=self.is_host)

            if decision.action == STEP_PUNT:
                punt_latency = latency + PUNT_CHANNEL_LATENCY_S
                result = ForwardingResult(
                    outcome=OUTCOME_PUNTED, packet=packet, hops=list(hops),
                    latency=punt_latency, punt_switch=current,
                    punt_reason=decision.punt_reason)
                if self.punt_handler is not None:
                    self.punt_handler(current, packet, start + punt_latency)
                return result

            if decision.action == STEP_DROP_TTL:
                return ForwardingResult(
                    outcome=OUTCOME_DROPPED, packet=packet, hops=list(hops),
                    latency=latency, drop_reason="ttl_expired")

            if decision.action == STEP_DROP_NO_ROUTE:
                return ForwardingResult(
                    outcome=OUTCOME_DROPPED, packet=packet, hops=list(hops),
                    latency=latency, drop_reason="no_route")

            next_node = decision.next_node
            drop = self._transmit(packet, current, next_node, hops, latency,
                                  start)
            if drop is not None:
                return drop
            latency += self._hop_latency(current, next_node, packet)
            hops.append(next_node)

            if decision.action == STEP_DELIVER:
                arrival = start + latency
                handler = self.delivery_handlers.get(next_node)
                if handler is not None:
                    handler(next_node, packet, arrival)
                return ForwardingResult(
                    outcome=OUTCOME_DELIVERED, packet=packet, hops=list(hops),
                    latency=latency, delivered_to=next_node)

            prev, current = current, next_node

        return ForwardingResult(
            outcome=OUTCOME_DROPPED, packet=packet, hops=list(hops),
            latency=latency, drop_reason="max_hops_exceeded")
