"""OpenFlow-style match/action flow tables.

PathDump's only in-network requirement is that switches carry *static* rules
which, based on the ingress port and the current tag state of a packet,
append a link identifier (``push_vlan``) or set the DSCP field before
forwarding.  The controller installs these rules once at start-up and never
touches them again (Section 3.3 of the paper).

This module provides a faithful, self-contained model of that rule machinery:

* :class:`Match` - ternary match over the header fields PathDump cares about
  (ingress port, VLAN tag count, outermost VLAN ID, DSCP presence, IP
  destination prefix, protocol).
* :class:`Action` subclasses - ``PushVlan``, ``PopVlan``, ``SetDscp``,
  ``Output``, ``GotoTable``, ``PuntToController`` and ``Drop``.
* :class:`FlowTable` / :class:`FlowTablePipeline` - priority-ordered rule
  tables chained in a pipeline (OpenFlow 1.3 style, which the paper requires
  for multi-table support).

The pipeline is deliberately small but complete enough that CherryPick's rule
sets (see :mod:`repro.tracing.rules`) compile directly onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.packet import Packet


class TableMiss(Exception):
    """Raised when no rule in a table matches and no default is installed."""


# --------------------------------------------------------------------- match
@dataclass(frozen=True)
class Match:
    """A ternary match over packet header fields.

    ``None`` for any field means wildcard.  ``vlan_count`` and
    ``vlan_count_min`` allow matching on the number of tags carried, which is
    how the CherryPick encoding distinguishes "first sample" from "subsequent
    sample" and how the ASIC two-tag parsing limit is expressed.

    Attributes:
        in_port: ingress port number.
        vlan_count: exact number of VLAN tags required.
        vlan_count_min: minimum number of VLAN tags required.
        vlan_count_max: maximum number of VLAN tags allowed.
        outer_vlan: required outermost VLAN ID.
        dscp_set: require DSCP to be set (``True``) or unset (``False``).
        dst_prefix: destination address prefix (simple string prefix match).
        protocol: IP protocol number.
        requires_ip_parse: whether evaluating this match requires the switch
            ASIC to parse beyond the VLAN stack into the IP header.  Matches
            that inspect ``dst_prefix``, ``protocol`` or ``dscp_set`` require
            IP parsing; this is what triggers the rule miss for packets
            carrying three or more tags.
    """

    in_port: Optional[int] = None
    vlan_count: Optional[int] = None
    vlan_count_min: Optional[int] = None
    vlan_count_max: Optional[int] = None
    outer_vlan: Optional[int] = None
    dscp_set: Optional[bool] = None
    dst_prefix: Optional[str] = None
    protocol: Optional[int] = None

    @property
    def requires_ip_parse(self) -> bool:
        """Whether this match needs the ASIC to parse the IP header."""
        return (self.dst_prefix is not None or self.protocol is not None
                or self.dscp_set is not None)

    def matches(self, packet: Packet, in_port: Optional[int]) -> bool:
        """Return ``True`` when ``packet`` arriving on ``in_port`` matches."""
        if self.in_port is not None and in_port != self.in_port:
            return False
        count = packet.vlan_count
        if self.vlan_count is not None and count != self.vlan_count:
            return False
        if self.vlan_count_min is not None and count < self.vlan_count_min:
            return False
        if self.vlan_count_max is not None and count > self.vlan_count_max:
            return False
        if self.outer_vlan is not None and packet.peek_vlan() != self.outer_vlan:
            return False
        if self.dscp_set is not None:
            if self.dscp_set != (packet.dscp is not None):
                return False
        if self.dst_prefix is not None:
            if not packet.flow.dst_ip.startswith(self.dst_prefix):
                return False
        if self.protocol is not None and packet.flow.protocol != self.protocol:
            return False
        return True


# ------------------------------------------------------------------- actions
class Action:
    """Base class for rule actions.  Subclasses mutate or dispose the packet."""

    def apply(self, packet: Packet, context: "ActionContext") -> None:
        """Apply the action to ``packet`` within ``context``."""
        raise NotImplementedError


@dataclass
class ActionContext:
    """Mutable state threaded through action execution for one packet.

    Attributes:
        out_port: egress port selected so far (``None`` until ``Output``).
        punt: whether the packet must be sent to the controller.
        drop: whether the packet must be dropped.
        goto_table: next table to evaluate (``None`` terminates the pipeline).
        ingress_link_id: global ID of the link the packet arrived on, used by
            ``PushVlan`` when configured to record the ingress link.
    """

    out_port: Optional[int] = None
    punt: bool = False
    drop: bool = False
    goto_table: Optional[int] = None
    ingress_link_id: Optional[int] = None


@dataclass
class PushVlan(Action):
    """Push a VLAN tag.

    When ``vid`` is ``None`` the tag carries the *ingress link ID* from the
    action context - this is the common CherryPick case where the rule says
    "record the link this packet came in on".
    """

    vid: Optional[int] = None

    def apply(self, packet: Packet, context: ActionContext) -> None:
        vid = self.vid if self.vid is not None else context.ingress_link_id
        if vid is None:
            raise ValueError("PushVlan with no VID and no ingress link ID")
        packet.push_vlan(vid)


@dataclass
class PopVlan(Action):
    """Pop the outermost VLAN tag."""

    def apply(self, packet: Packet, context: ActionContext) -> None:
        packet.pop_vlan()


@dataclass
class SetDscp(Action):
    """Set the DSCP field.

    As with :class:`PushVlan`, ``value=None`` stores the ingress link ID
    (used by the VL2 encoding where the first sample lands in DSCP).
    """

    value: Optional[int] = None

    def apply(self, packet: Packet, context: ActionContext) -> None:
        value = self.value if self.value is not None else context.ingress_link_id
        if value is None:
            raise ValueError("SetDscp with no value and no ingress link ID")
        packet.set_dscp(value)


@dataclass
class Output(Action):
    """Forward the packet out of ``port``."""

    port: int

    def apply(self, packet: Packet, context: ActionContext) -> None:
        context.out_port = self.port


@dataclass
class GotoTable(Action):
    """Continue matching in a later table of the pipeline."""

    table_id: int

    def apply(self, packet: Packet, context: ActionContext) -> None:
        context.goto_table = self.table_id


@dataclass
class PuntToController(Action):
    """Send the packet to the controller (OpenFlow ``packet-in``)."""

    def apply(self, packet: Packet, context: ActionContext) -> None:
        context.punt = True


@dataclass
class Drop(Action):
    """Silently discard the packet."""

    def apply(self, packet: Packet, context: ActionContext) -> None:
        context.drop = True


# --------------------------------------------------------------------- rules
@dataclass
class Rule:
    """A single flow rule: priority, match and an action list.

    Attributes:
        priority: higher wins; ties broken by insertion order.
        match: the :class:`Match` to evaluate.
        actions: actions applied in order on a match.
        cookie: free-form annotation (useful for debugging rule sets).
    """

    priority: int
    match: Match
    actions: Sequence[Action]
    cookie: str = ""

    #: set by the owning table for stable tie-breaking
    _seq: int = field(default=0, compare=False)


class FlowTable:
    """A single priority-ordered flow table."""

    def __init__(self, table_id: int = 0) -> None:
        self.table_id = table_id
        self._rules: List[Rule] = []
        self._insert_seq = 0

    def add_rule(self, rule: Rule) -> None:
        """Install ``rule``; rules are kept sorted by descending priority."""
        rule._seq = self._insert_seq
        self._insert_seq += 1
        self._rules.append(rule)
        self._rules.sort(key=lambda r: (-r.priority, r._seq))

    def add(self, priority: int, match: Match, actions: Sequence[Action],
            cookie: str = "") -> Rule:
        """Convenience wrapper constructing and installing a rule."""
        rule = Rule(priority=priority, match=match, actions=list(actions),
                    cookie=cookie)
        self.add_rule(rule)
        return rule

    def lookup(self, packet: Packet, in_port: Optional[int]) -> Optional[Rule]:
        """Return the highest-priority matching rule, or ``None`` on miss."""
        for rule in self._rules:
            if rule.match.matches(packet, in_port):
                return rule
        return None

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)


class FlowTablePipeline:
    """A chain of flow tables evaluated in sequence (OpenFlow 1.3 style).

    The pipeline also enforces the hardware constraint central to PathDump's
    routing-loop trap: a commodity ASIC parses at most
    ``max_parsable_vlan_tags`` VLAN tags at line rate.  When a rule whose
    match requires IP parsing is evaluated against a packet carrying more
    tags than that, the lookup behaves as a *rule miss* and the packet is
    punted to the controller (the paper's Section 3.1 / 4.5 behaviour).
    """

    #: commodity ASICs process packets with up to two VLAN tags (QinQ).
    DEFAULT_MAX_PARSABLE_VLAN_TAGS = 2

    def __init__(self, num_tables: int = 2,
                 max_parsable_vlan_tags: int = DEFAULT_MAX_PARSABLE_VLAN_TAGS
                 ) -> None:
        self.tables: List[FlowTable] = [FlowTable(i) for i in range(num_tables)]
        self.max_parsable_vlan_tags = max_parsable_vlan_tags
        #: counters useful for the overheads evaluation
        self.lookups = 0
        self.misses = 0

    def table(self, table_id: int) -> FlowTable:
        """Return table ``table_id``, growing the pipeline if necessary."""
        while table_id >= len(self.tables):
            self.tables.append(FlowTable(len(self.tables)))
        return self.tables[table_id]

    @property
    def rule_count(self) -> int:
        """Total rules installed across all tables (switch resource usage)."""
        return sum(len(t) for t in self.tables)

    def process(self, packet: Packet, in_port: Optional[int],
                ingress_link_id: Optional[int] = None) -> ActionContext:
        """Run ``packet`` through the pipeline and return the outcome.

        Args:
            packet: the packet (mutated in place by tag actions).
            in_port: ingress port number.
            ingress_link_id: global ID of the ingress link, made available to
                ``PushVlan``/``SetDscp`` actions that record it.

        Returns:
            The final :class:`ActionContext`.  ``punt`` is set both by an
            explicit :class:`PuntToController` action and by the implicit
            ASIC rule-miss on packets carrying too many tags.
        """
        context = ActionContext(ingress_link_id=ingress_link_id)
        table_id = 0
        visited = set()
        while table_id is not None and table_id < len(self.tables):
            if table_id in visited:
                raise RuntimeError(f"pipeline loop at table {table_id}")
            visited.add(table_id)
            table = self.tables[table_id]
            self.lookups += 1
            rule = self._lookup_with_asic_limit(table, packet, in_port, context)
            if rule is None:
                # Table miss: default behaviour is punt to controller, the
                # standard OpenFlow miss action the paper relies on.
                self.misses += 1
                context.punt = True
                return context
            context.goto_table = None
            for action in rule.actions:
                action.apply(packet, context)
                if context.drop or context.punt:
                    return context
            table_id = context.goto_table
        return context

    def _lookup_with_asic_limit(self, table: FlowTable, packet: Packet,
                                in_port: Optional[int],
                                context: ActionContext) -> Optional[Rule]:
        """Lookup honouring the ASIC's VLAN parsing limit.

        Rules whose match requires parsing the IP header cannot be evaluated
        for packets carrying more than ``max_parsable_vlan_tags`` tags; they
        are skipped, typically resulting in a miss (and hence a punt).
        """
        over_limit = packet.vlan_count > self.max_parsable_vlan_tags
        for rule in table:
            if over_limit and rule.match.requires_ip_parse:
                continue
            if rule.match.matches(packet, in_port):
                return rule
        return None
