"""Compilation of CherryPick sampling policies to OpenFlow rule sets.

The controller installs the trajectory-tracing rules exactly once, when it
starts ("this is one-time task when the controller is initialized, and the
rules are not modified once they are installed", Section 3.3).  This module
performs that compilation: given a topology, a link ID assignment and the
sampling policy, it emits per-switch :class:`~repro.network.flowtable.Rule`
objects and installs them into each switch's pipeline.

Two aspects from the paper are preserved:

* **rule structure** - rules match only on the ingress port and on the tag
  state of the packet (number of VLAN tags / whether DSCP is used); actions
  push a VLAN tag or set DSCP with the ingress link's identifier and continue
  to the forwarding table.  For VL2 this is literally the paper's "two rules
  per ingress port: one for checking if DSCP field is unused, and the other
  to add VLAN tag otherwise".
* **rule count accounting** - :func:`rule_count_report` exposes the number of
  rules per switch, which the paper argues "grows linearly over switch port
  density".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.network.flowtable import (GotoTable, Match, PushVlan, Rule,
                                     SetDscp)
from repro.network.switch import Switch
from repro.topology.fattree import FatTreeTopology
from repro.topology.graph import (ROLE_AGGREGATE, ROLE_CORE, ROLE_EDGE,
                                  ROLE_HOST, Topology)
from repro.topology.linkid import LinkIdAssignment
from repro.topology.vl2 import Vl2Topology

#: Table 0 holds the tagging rules; table 1 stands for the normal forwarding
#: tables (modelled by the routing layer, so table 1 stays empty here).
TAGGING_TABLE = 0
FORWARDING_TABLE = 1

#: Priorities: sampling rules above the default pass-through rule.
PRIORITY_SAMPLE = 100
PRIORITY_PASS = 1


@dataclass
class CompiledRules:
    """Result of compiling the tagging policy for one topology.

    Attributes:
        per_switch: switch name -> list of rules installed on it.
    """

    per_switch: Dict[str, List[Rule]]

    def total_rules(self) -> int:
        """Total number of tagging rules across the fabric."""
        return sum(len(rules) for rules in self.per_switch.values())

    def rules_for(self, switch: str) -> List[Rule]:
        """Rules installed on ``switch``."""
        return self.per_switch.get(switch, [])


def _pass_rule() -> Rule:
    """Default rule: no sampling, continue to the forwarding table."""
    return Rule(priority=PRIORITY_PASS, match=Match(),
                actions=[GotoTable(FORWARDING_TABLE)], cookie="pass")


def compile_fattree_rules(topo: FatTreeTopology,
                          assignment: LinkIdAssignment,
                          switches: Optional[Dict[str, Switch]] = None
                          ) -> CompiledRules:
    """Compile the fat-tree sampling policy into per-switch rules.

    The emitted rules mirror :class:`FatTreeCherryPickTagger`:

    * core switch, ingress port facing an aggregate switch: push the ingress
      link ID;
    * ToR switch, ingress port facing an aggregate switch: push the ingress
      link ID *only when the packet is in transit*.  Transit cannot be
      expressed as a pure ingress-port match (it depends on the egress), so
      the compiled rule matches ingress port plus "packet already carries at
      least one tag", which on a fat-tree is equivalent: a packet arriving at
      a ToR from an aggregate switch has always crossed a core or an
      aggregate sampling point already, and tagged packets destined to local
      hosts exit through host ports whose rules never push;
    * aggregate switch, ingress port facing a ToR: push the ingress link ID
      when the packet carries no tag yet (first sample of an intra-pod path).

    Args:
        topo: the fat-tree.
        assignment: link ID assignment for the topology.
        switches: when given, the rules are also installed into each
            switch's :class:`~repro.network.flowtable.FlowTablePipeline`.

    Returns:
        The compiled rule sets.
    """
    per_switch: Dict[str, List[Rule]] = {}
    for switch_name in topo.switches:
        role = topo.node(switch_name).role
        neighbors = topo.neighbors(switch_name)
        rules: List[Rule] = []
        for port, neighbor in enumerate(neighbors, start=1):
            neighbor_role = topo.node(neighbor).role
            link_id = assignment.lookup(neighbor, switch_name)
            if link_id is None or neighbor_role == ROLE_HOST:
                continue
            if role == ROLE_CORE and neighbor_role == ROLE_AGGREGATE:
                rules.append(Rule(
                    priority=PRIORITY_SAMPLE,
                    match=Match(in_port=port),
                    actions=[PushVlan(link_id), GotoTable(FORWARDING_TABLE)],
                    cookie=f"core-sample:{neighbor}->{switch_name}"))
            elif role == ROLE_EDGE and neighbor_role == ROLE_AGGREGATE:
                rules.append(Rule(
                    priority=PRIORITY_SAMPLE,
                    match=Match(in_port=port, vlan_count_min=1),
                    actions=[PushVlan(link_id), GotoTable(FORWARDING_TABLE)],
                    cookie=f"tor-transit-sample:{neighbor}->{switch_name}"))
            elif role == ROLE_AGGREGATE and neighbor_role == ROLE_EDGE:
                rules.append(Rule(
                    priority=PRIORITY_SAMPLE,
                    match=Match(in_port=port, vlan_count=0),
                    actions=[PushVlan(link_id), GotoTable(FORWARDING_TABLE)],
                    cookie=f"agg-first-sample:{neighbor}->{switch_name}"))
        rules.append(_pass_rule())
        per_switch[switch_name] = rules
    compiled = CompiledRules(per_switch=per_switch)
    if switches is not None:
        install_rules(compiled, switches)
    return compiled


def compile_vl2_rules(topo: Vl2Topology, assignment: LinkIdAssignment,
                      switches: Optional[Dict[str, Switch]] = None
                      ) -> CompiledRules:
    """Compile the VL2 sampling policy ("two rules per ingress port").

    For every sampling ingress port the compiler emits a DSCP-unused rule
    (set DSCP to the ingress link ID) and a DSCP-used rule (push a VLAN tag
    instead), exactly as described in Section 3.1 of the paper.
    """
    per_switch: Dict[str, List[Rule]] = {}
    for switch_name in topo.switches:
        role = topo.node(switch_name).role
        neighbors = topo.neighbors(switch_name)
        rules: List[Rule] = []
        for port, neighbor in enumerate(neighbors, start=1):
            neighbor_role = topo.node(neighbor).role
            link_id = assignment.lookup(neighbor, switch_name)
            if link_id is None or neighbor_role == ROLE_HOST:
                continue
            samples_here = (
                (role == ROLE_AGGREGATE and neighbor_role in (ROLE_EDGE,
                                                              ROLE_CORE))
                or (role == ROLE_CORE and neighbor_role == ROLE_AGGREGATE))
            if not samples_here:
                continue
            rules.append(Rule(
                priority=PRIORITY_SAMPLE + 1,
                match=Match(in_port=port, dscp_set=False),
                actions=[SetDscp(link_id), GotoTable(FORWARDING_TABLE)],
                cookie=f"vl2-dscp-sample:{neighbor}->{switch_name}"))
            rules.append(Rule(
                priority=PRIORITY_SAMPLE,
                match=Match(in_port=port, dscp_set=True),
                actions=[PushVlan(link_id), GotoTable(FORWARDING_TABLE)],
                cookie=f"vl2-vlan-sample:{neighbor}->{switch_name}"))
        rules.append(_pass_rule())
        per_switch[switch_name] = rules
    compiled = CompiledRules(per_switch=per_switch)
    if switches is not None:
        install_rules(compiled, switches)
    return compiled


def compile_rules(topo: Topology, assignment: LinkIdAssignment,
                  switches: Optional[Dict[str, Switch]] = None
                  ) -> CompiledRules:
    """Dispatch rule compilation based on the topology type."""
    if isinstance(topo, Vl2Topology):
        return compile_vl2_rules(topo, assignment, switches)
    if isinstance(topo, FatTreeTopology):
        return compile_fattree_rules(topo, assignment, switches)
    raise TypeError("rule compilation is defined for fat-tree and VL2 "
                    "topologies; unstructured topologies use the generic "
                    "tagger directly")


def install_rules(compiled: CompiledRules,
                  switches: Dict[str, Switch]) -> None:
    """Install compiled rules into the switches' tagging tables."""
    for switch_name, rules in compiled.per_switch.items():
        switch = switches.get(switch_name)
        if switch is None:
            continue
        table = switch.pipeline.table(TAGGING_TABLE)
        for rule in rules:
            table.add_rule(rule)


def rule_count_report(compiled: CompiledRules,
                      topo: Topology) -> Dict[str, Dict[str, float]]:
    """Summarise rule counts per switch role.

    Returns:
        Mapping role -> ``{"switches", "total_rules", "rules_per_switch"}``;
        the per-switch figure is what grows linearly with port density.
    """
    by_role: Dict[str, List[int]] = {}
    for switch_name, rules in compiled.per_switch.items():
        role = topo.node(switch_name).role
        by_role.setdefault(role, []).append(len(rules))
    report: Dict[str, Dict[str, float]] = {}
    for role, counts in by_role.items():
        report[role] = {
            "switches": len(counts),
            "total_rules": sum(counts),
            "rules_per_switch": sum(counts) / len(counts),
        }
    return report
