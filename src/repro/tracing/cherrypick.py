"""CherryPick link sampling (the in-network half of PathDump).

CherryPick [Tammana et al., SOSR 2015] observes that structured datacenter
topologies let an end-to-end path be reconstructed from a few carefully
*sampled* links, so a packet only needs to carry those samples - one or two
VLAN tags on a fat-tree, one DSCP value plus two VLAN tags on VL2 - instead
of its entire hop list.

This module implements the sampling decision as a *tagging policy*: a
callable invoked by the switch for every forwarded packet with
``(switch, in_node, out_node, packet)``.  The decisions depend only on the
switch's role, the ingress/egress port and the packet's current tag state,
which is exactly what makes them expressible as static OpenFlow rules (see
:mod:`repro.tracing.rules` for the compiled rule sets).

Fat-tree sampling rules (host-to-host shortest paths carry one sample,
paths deviating by up to two switch hops carry two, anything longer
accumulates a third tag and is trapped by the ASIC parsing limit):

1. a **core** switch records the aggregate-core link the packet arrived on;
2. a **ToR** switch acting as a *transit* hop (packet arrives from an
   aggregate switch and leaves towards an aggregate switch - never the case
   on a shortest path) records the link it arrived on;
3. an **aggregate** switch forwarding a packet from one ToR down to another
   ToR (the normal intra-pod path) records the ToR-aggregate link the packet
   arrived on, but only when the packet carries no sample yet.

VL2 sampling rules (three samples for a 6-hop path; the first goes into the
DSCP field, later ones into VLAN tags, following the paper's "two rules per
ingress port" construction):

1. an **aggregate** switch receiving a packet from a ToR records the
   ToR-aggregate link;
2. an **intermediate** switch records the aggregate-intermediate link the
   packet arrived on;
3. an **aggregate** switch receiving a packet from an intermediate switch
   records that link.

Each recording step stores the link ID in DSCP when DSCP is still unused and
in a new VLAN tag otherwise.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.network.packet import Packet
from repro.topology.fattree import FatTreeTopology
from repro.topology.graph import (ROLE_AGGREGATE, ROLE_CORE, ROLE_EDGE,
                                  ROLE_HOST, Topology)
from repro.topology.linkid import LinkIdAssignment
from repro.topology.vl2 import Vl2Topology

#: Signature of a tagging policy callable (mutates the packet in place).
TaggingPolicy = Callable[[str, Optional[str], str, Packet], None]


class CherryPickTagger:
    """Base class for CherryPick tagging policies.

    Subclasses implement :meth:`should_sample`, deciding whether the packet's
    ingress link must be recorded at this switch.  The base class handles the
    carrier choice (DSCP first when the encoding allows it, VLAN otherwise)
    and the bookkeeping counters used by the evaluation.
    """

    #: whether the first sample is carried in the DSCP field (VL2 encoding).
    use_dscp_for_first_sample = False

    def __init__(self, topo: Topology, assignment: LinkIdAssignment) -> None:
        self.topo = topo
        self.assignment = assignment
        #: number of samples recorded, per carrier, for overhead accounting.
        self.vlan_samples = 0
        self.dscp_samples = 0

    # ------------------------------------------------------------- interface
    def __call__(self, switch: str, in_node: Optional[str], out_node: str,
                 packet: Packet) -> None:
        """Apply the sampling decision for one forwarding step."""
        if in_node is None:
            return
        if not self.should_sample(switch, in_node, out_node, packet):
            return
        link_id = self.assignment.lookup(in_node, switch)
        if link_id is None:
            return
        self._record(packet, link_id)

    def should_sample(self, switch: str, in_node: str, out_node: str,
                      packet: Packet) -> bool:
        """Decide whether the ingress link must be sampled here."""
        raise NotImplementedError

    # -------------------------------------------------------------- plumbing
    def _record(self, packet: Packet, link_id: int) -> None:
        """Store ``link_id`` in the preferred carrier field."""
        if self.use_dscp_for_first_sample and packet.dscp is None:
            packet.set_dscp(link_id)
            self.dscp_samples += 1
        else:
            packet.push_vlan(link_id)
            self.vlan_samples += 1

    def _role(self, node: str) -> str:
        return self.topo.node(node).role

    @staticmethod
    def samples_in_traversal_order(packet: Packet) -> List[int]:
        """Return the packet's samples in the order they were recorded.

        The DSCP sample (if any) is always the first recorded; VLAN tags are
        pushed onto the front of the stack, so the stack must be reversed to
        recover recording order.
        """
        samples: List[int] = []
        if packet.dscp is not None:
            samples.append(packet.dscp)
        samples.extend(reversed(packet.vlan_ids()))
        return samples


class FatTreeCherryPickTagger(CherryPickTagger):
    """CherryPick sampling for k-ary fat-trees (VLAN-only encoding)."""

    use_dscp_for_first_sample = False

    def __init__(self, topo: FatTreeTopology,
                 assignment: LinkIdAssignment) -> None:
        if not isinstance(topo, FatTreeTopology):
            raise TypeError("FatTreeCherryPickTagger requires a fat-tree")
        super().__init__(topo, assignment)

    def should_sample(self, switch: str, in_node: str, out_node: str,
                      packet: Packet) -> bool:
        role = self._role(switch)
        in_role = self._role(in_node)
        out_role = self._role(out_node)

        if role == ROLE_CORE:
            # Rule 1: record the aggregate-core link the packet arrived on.
            return in_role == ROLE_AGGREGATE

        if role == ROLE_EDGE:
            # Rule 2: a ToR is a transit hop only on deviated paths.
            return in_role == ROLE_AGGREGATE and out_role == ROLE_AGGREGATE

        if role == ROLE_AGGREGATE:
            # Rule 3: normal intra-pod path; record which aggregate switch
            # relayed the packet, but only as the packet's first sample so
            # deviated inter-pod paths do not burn a third tag here.
            return (in_role == ROLE_EDGE and out_role == ROLE_EDGE
                    and packet.vlan_count == 0)
        return False


class Vl2CherryPickTagger(CherryPickTagger):
    """CherryPick sampling for VL2 (DSCP + VLAN encoding)."""

    use_dscp_for_first_sample = True

    def __init__(self, topo: Vl2Topology,
                 assignment: LinkIdAssignment) -> None:
        if not isinstance(topo, Vl2Topology):
            raise TypeError("Vl2CherryPickTagger requires a VL2 topology")
        super().__init__(topo, assignment)

    def should_sample(self, switch: str, in_node: str, out_node: str,
                      packet: Packet) -> bool:
        role = self._role(switch)
        in_role = self._role(in_node)

        if role == ROLE_AGGREGATE:
            # Rules 1 and 3: sample on the way up (from a ToR) and on the way
            # down (from an intermediate switch).
            return in_role in (ROLE_EDGE, ROLE_CORE)
        if role == ROLE_CORE:
            # Rule 2: record the aggregate-intermediate link.
            return in_role == ROLE_AGGREGATE
        return False


def make_tagger(topo: Topology, assignment: LinkIdAssignment) -> CherryPickTagger:
    """Build the appropriate tagger for ``topo``.

    Falls back to the fat-tree policy for generic topologies, which records a
    sample at every core/transit hop; combined with globally unique link IDs
    this remains correct, it just spends more header space (the trade-off the
    paper describes for unstructured networks).
    """
    if isinstance(topo, Vl2Topology):
        return Vl2CherryPickTagger(topo, assignment)
    if isinstance(topo, FatTreeTopology):
        return FatTreeCherryPickTagger(topo, assignment)
    return _GenericTagger(topo, assignment)


class _GenericTagger(CherryPickTagger):
    """Fallback policy: sample every switch-to-switch ingress link.

    Equivalent to naive full-path tracing; used for unstructured topologies
    and as the baseline in the header-space ablation benchmark.
    """

    def should_sample(self, switch: str, in_node: str, out_node: str,
                      packet: Packet) -> bool:
        return self._role(in_node) != ROLE_HOST


def naive_header_bytes(path_switch_hops: int, port_bits: int = 6) -> int:
    """Header bytes needed by naive per-hop link embedding.

    The paper's motivating arithmetic: embedding one local link ID per hop
    needs ``hops * ceil(log2(ports))`` bits (36 bits for a 6-hop path with
    48-port switches), whereas two VLAN tags provide only 24 bits.

    Args:
        path_switch_hops: number of switch-to-switch links on the path.
        port_bits: bits needed for a local port identifier.

    Returns:
        Number of whole bytes required.
    """
    bits = path_switch_hops * port_bits
    return (bits + 7) // 8


def cherrypick_header_bytes(samples: int) -> int:
    """Header bytes used by CherryPick for a path with ``samples`` samples."""
    from repro.network.packet import VLAN_TAG_BYTES

    return samples * VLAN_TAG_BYTES
