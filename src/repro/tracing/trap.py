"""Controller-side handling of trapped (punted) packets.

A packet that accumulates more samples than the ASIC can parse misses the
forwarding rules and is punted to the controller.  PathDump turns this
hardware limitation into a feature: suspiciously long paths - above all,
routing loops - "naturally manifest themselves at the controller"
(Section 4.5).  The controller then:

1. inspects the carried link IDs; a *repeated* identifier proves a loop;
2. otherwise it stores the tags, strips them from the header and re-injects
   the packet at the punting switch; if the packet is stuck in a loop it will
   come back with a fresh set of tags, and comparing the new IDs with the
   stored ones reveals the repetition - this works for loops of any size;
3. if the packet eventually escapes and is delivered, the stored tag sets
   together describe one (legitimately long) path, which is handed to the
   path-conformance machinery instead.

:class:`LongPathTrap` implements exactly this loop, on top of the fabric's
``forward_from`` re-injection hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.network.packet import Packet
from repro.network.simulator import (OUTCOME_DELIVERED, OUTCOME_PUNTED,
                                      Fabric, ForwardingResult)
from repro.tracing.cherrypick import CherryPickTagger

#: Additional controller processing time charged per punt inspection
#: (packet-in decode, tag comparison, packet-out), in seconds.  Calibrated so
#: a 4-hop loop is detected in tens of milliseconds as in the paper.
CONTROLLER_PROCESSING_S = 30e-3


@dataclass
class TrapVerdict:
    """Outcome of handling one trapped packet.

    Attributes:
        is_loop: ``True`` when a routing loop was established.
        repeated_link_id: the link identifier seen twice (when ``is_loop``).
        loop_links: every link identifier observed while chasing the packet.
        rounds: number of controller inspections performed.
        detection_time: simulated time at which the verdict was reached.
        elapsed: seconds between the first punt and the verdict.
        final_result: the fabric result of the last (re-)injection.
    """

    is_loop: bool
    repeated_link_id: Optional[int] = None
    loop_links: List[int] = field(default_factory=list)
    rounds: int = 0
    detection_time: float = 0.0
    elapsed: float = 0.0
    final_result: Optional[ForwardingResult] = None


class LongPathTrap:
    """Implements the controller's trapped-packet inspection loop.

    Args:
        fabric: the fabric, used for packet re-injection.
        max_rounds: safety bound on the number of strip-and-reinject rounds
            (a loop is always detected within two rounds; the bound guards
            against pathological topologies in tests).
    """

    def __init__(self, fabric: Fabric, max_rounds: int = 8) -> None:
        self.fabric = fabric
        self.max_rounds = max_rounds

    def handle_punt(self, switch: str, packet: Packet,
                    punt_time: float) -> TrapVerdict:
        """Chase a punted packet until a loop is proven or ruled out.

        Args:
            switch: the switch that punted the packet.
            packet: the punted packet, still carrying its tags.
            punt_time: simulated time of the punt.

        Returns:
            The trap verdict.
        """
        seen: List[int] = []
        now = punt_time
        current_switch = switch
        current_packet = packet
        result: Optional[ForwardingResult] = None

        for round_index in range(1, self.max_rounds + 1):
            samples = CherryPickTagger.samples_in_traversal_order(
                current_packet)
            now += CONTROLLER_PROCESSING_S
            repeated = self._find_repeat(seen, samples)
            seen.extend(samples)
            if repeated is not None:
                return TrapVerdict(
                    is_loop=True, repeated_link_id=repeated,
                    loop_links=list(dict.fromkeys(seen)), rounds=round_index,
                    detection_time=now, elapsed=now - punt_time,
                    final_result=result)

            # No repetition yet: strip the trajectory state and send the
            # packet back into the fabric at the switch that punted it.
            current_packet = current_packet.copy()
            current_packet.strip_trajectory()
            current_packet.ttl = max(current_packet.ttl, 16)
            result = self.fabric.forward_from(current_switch, current_packet,
                                              prev=None, at_time=now)
            now += result.latency
            if result.outcome != OUTCOME_PUNTED:
                # The packet escaped (delivered or dropped): not a loop.
                return TrapVerdict(
                    is_loop=False, loop_links=list(dict.fromkeys(seen)),
                    rounds=round_index, detection_time=now,
                    elapsed=now - punt_time, final_result=result)
            current_switch = result.punt_switch or current_switch
            current_packet = result.packet

        return TrapVerdict(is_loop=False, loop_links=list(dict.fromkeys(seen)),
                           rounds=self.max_rounds, detection_time=now,
                           elapsed=now - punt_time, final_result=result)

    @staticmethod
    def _find_repeat(seen: Sequence[int],
                     new_samples: Sequence[int]) -> Optional[int]:
        """Return a link ID repeated within/against the observed samples."""
        observed: Set[int] = set(seen)
        for sample in new_samples:
            if sample in observed:
                return sample
            observed.add(sample)
        return None
