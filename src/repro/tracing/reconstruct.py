"""End-to-end path reconstruction from sampled link identifiers.

The destination's edge stack receives a packet carrying a handful of sampled
link IDs (one VLAN tag for a shortest fat-tree path, two for a deviated one,
DSCP plus two tags on VL2).  Before the record enters the Trajectory
Information Base the link IDs must be converted back into the full switch
path ("the module maps link IDs to a series of switches by referring to a
physical topology, and builds an end-to-end path", Section 3.2).

The reconstruction problem: find the shortest path from the source host to
the destination host that traverses the sampled links *in order*.  Because
link identifiers are reused across pods, each sample may resolve to several
candidate cables; the source/destination pods narrow the candidates and the
search picks the combination yielding the minimum-hop consistent path.

The algorithm is a small dynamic program over "waypoint cables":

1. resolve each sample to candidate cables;
2. for every candidate sequence (the product is tiny once pod constraints
   apply), stitch shortest sub-paths source -> cable_1 -> ... -> cable_n ->
   destination, trying both orientations of every cable;
3. return the overall minimum-hop stitched path.

For shortest paths on a fat-tree the result is exact and unique; for deviated
paths the result is guaranteed to be a valid topology path consistent with
every sample, which is the property the debugging applications rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from repro.topology.graph import Topology
from repro.topology.linkid import LinkIdAssignment

Cable = FrozenSet[str]


class ReconstructionError(ValueError):
    """Raised when no topology path is consistent with the samples.

    This is itself a debugging signal: it means some switch inserted a link
    identifier that cannot appear on any feasible trajectory (Section 2.4).
    """


@dataclass
class ReconstructedPath:
    """Result of a reconstruction.

    Attributes:
        path: node names from source host to destination host inclusive.
        sampled_cables: the cables chosen for each sample, in order.
        exact: ``True`` when the path is the unique shortest consistent path
            (always the case for non-deviated fat-tree paths).
    """

    path: List[str]
    sampled_cables: List[Cable]
    exact: bool

    @property
    def switch_path(self) -> List[str]:
        """The path restricted to switches (drop the end hosts)."""
        return self.path[1:-1]

    @property
    def hop_count(self) -> int:
        """Number of links on the path."""
        return len(self.path) - 1


class PathReconstructor:
    """Reconstructs end-to-end paths from CherryPick samples.

    Args:
        topo: the static topology view held by the edge device.
        assignment: the link ID assignment (shared fabric-wide).
        max_candidate_combinations: safety bound on the candidate product
            explored; reconstruction aborts beyond it (never reached for the
            structured topologies the encoding supports).
    """

    def __init__(self, topo: Topology, assignment: LinkIdAssignment,
                 max_candidate_combinations: int = 4096) -> None:
        self.topo = topo
        self.assignment = assignment
        self.max_candidate_combinations = max_candidate_combinations
        self._sp_cache: Dict[Tuple[str, str], Optional[List[str]]] = {}

    # ----------------------------------------------------------------- public
    def reconstruct(self, src_host: str, dst_host: str,
                    samples: Sequence[int]) -> ReconstructedPath:
        """Reconstruct the path of a packet from ``src_host`` to ``dst_host``.

        Args:
            src_host: source host (from the packet's source address).
            dst_host: destination host (the host performing reconstruction).
            samples: link identifiers in traversal (recording) order.

        Returns:
            The reconstructed path.

        Raises:
            ReconstructionError: when the samples are inconsistent with the
                topology (no feasible path exists).
        """
        if not self.topo.has_node(src_host) or not self.topo.has_node(dst_host):
            raise ReconstructionError("unknown source or destination host")
        if not samples:
            path = self._shortest(src_host, dst_host)
            if path is None:
                raise ReconstructionError(
                    f"no path between {src_host} and {dst_host}")
            return ReconstructedPath(path=path, sampled_cables=[], exact=True)

        candidate_sets = self._resolve_samples(src_host, dst_host, samples)
        combo_count = 1
        for cands in candidate_sets:
            combo_count *= len(cands)
            if combo_count > self.max_candidate_combinations:
                raise ReconstructionError("candidate explosion during "
                                          "reconstruction")

        best: Optional[Tuple[List[str], List[Cable]]] = None
        for combo in itertools.product(*candidate_sets):
            stitched = self._stitch(src_host, dst_host, list(combo))
            if stitched is None:
                continue
            if best is None or len(stitched) < len(best[0]):
                best = (stitched, list(combo))
        if best is None:
            raise ReconstructionError(
                f"samples {list(samples)} are not consistent with the "
                f"topology for {src_host} -> {dst_host}")
        path, cables = best
        exact = combo_count == 1 and len(samples) <= 1
        return ReconstructedPath(path=path, sampled_cables=cables, exact=exact)

    def validate_against_topology(self, path: Sequence[str]) -> bool:
        """Check a reconstructed path against the ground-truth topology."""
        return self.topo.is_valid_path(list(path))

    # --------------------------------------------------------------- internal
    def _resolve_samples(self, src_host: str, dst_host: str,
                         samples: Sequence[int]) -> List[List[Cable]]:
        """Resolve each sample to its candidate cables (pod-constrained)."""
        src_pod = self.topo.node(src_host).pod
        dst_pod = self.topo.node(dst_host).pod
        candidate_sets: List[List[Cable]] = []
        for sample in samples:
            candidates = self.assignment.resolve(
                sample, pods=(src_pod, dst_pod), topo=self.topo)
            if not candidates:
                raise ReconstructionError(
                    f"link id {sample} does not exist in the topology")
            candidate_sets.append(sorted(candidates, key=sorted))
        return candidate_sets

    def _shortest(self, a: str, b: str) -> Optional[List[str]]:
        """Cached shortest path between two nodes (``None`` if disconnected)."""
        key = (a, b)
        if key not in self._sp_cache:
            try:
                self._sp_cache[key] = nx.shortest_path(self.topo.graph, a, b)
            except nx.NetworkXNoPath:
                self._sp_cache[key] = None
        cached = self._sp_cache[key]
        return None if cached is None else list(cached)

    def _stitch(self, src: str, dst: str,
                cables: List[Cable]) -> Optional[List[str]]:
        """Stitch shortest sub-paths through the cables in order.

        Each cable may be traversed in either orientation; the method keeps,
        per reachable cable exit node, the shortest prefix path ending there
        and having traversed all cables so far.
        """
        # frontier: exit node -> best path from src ending at that node.
        frontier: Dict[str, List[str]] = {src: [src]}
        for cbl in cables:
            endpoints = sorted(cbl)
            if len(endpoints) != 2:
                return None
            new_frontier: Dict[str, List[str]] = {}
            for entry, exit_ in (endpoints, list(reversed(endpoints))):
                for node, prefix in frontier.items():
                    to_entry = self._shortest(node, entry)
                    if to_entry is None:
                        continue
                    candidate = prefix + to_entry[1:] + [exit_]
                    if not self.topo.graph.has_edge(entry, exit_):
                        continue
                    if (exit_ not in new_frontier
                            or len(candidate) < len(new_frontier[exit_])):
                        new_frontier[exit_] = candidate
            if not new_frontier:
                return None
            frontier = new_frontier
        best: Optional[List[str]] = None
        for node, prefix in frontier.items():
            tail = self._shortest(node, dst)
            if tail is None:
                continue
            candidate = prefix + tail[1:]
            if best is None or len(candidate) < len(best):
                best = candidate
        return best
