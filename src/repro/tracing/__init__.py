"""CherryPick trajectory tracing: sampling policies, rules, reconstruction."""

from repro.tracing.cherrypick import (CherryPickTagger,
                                      FatTreeCherryPickTagger,
                                      Vl2CherryPickTagger,
                                      cherrypick_header_bytes, make_tagger,
                                      naive_header_bytes)
from repro.tracing.rules import (CompiledRules, compile_fattree_rules,
                                 compile_rules, compile_vl2_rules,
                                 install_rules, rule_count_report)
from repro.tracing.reconstruct import (PathReconstructor, ReconstructedPath,
                                       ReconstructionError)
from repro.tracing.trap import LongPathTrap, TrapVerdict

__all__ = [
    "CherryPickTagger", "FatTreeCherryPickTagger", "Vl2CherryPickTagger",
    "cherrypick_header_bytes", "make_tagger", "naive_header_bytes",
    "CompiledRules", "compile_fattree_rules", "compile_rules",
    "compile_vl2_rules", "install_rules", "rule_count_report",
    "PathReconstructor", "ReconstructedPath", "ReconstructionError",
    "LongPathTrap", "TrapVerdict",
]
