"""Load imbalance diagnosis (Section 4.2, Figures 5 and 6).

Two scenarios from the paper:

* **ECMP with a poor hash** - the aggregation switch of pod 1 pushes every
  flow larger than 1 MB onto one uplink and everything smaller onto the
  other.  The operator observes a high *imbalance rate* between the two
  links (Figure 5b) and uses a multi-level flow-size-distribution query over
  all TIBs to discover that the flow size distributions of the two links are
  "sharply divided around 1 MB" (Figure 5c), revealing the root cause.

* **Packet spraying** - a single large flow is sprayed over the four
  equal-cost paths; comparing the per-path byte counts recorded at the
  destination TIB immediately shows whether spraying is balanced
  (Figure 6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import Cdf, imbalance_rate
from repro.core.cluster import (MECHANISM_MULTILEVEL, DistributedQueryResult,
                                QueryCluster)
from repro.core.query import Q_FLOW_SIZE_DISTRIBUTION, Query
from repro.network.packet import Packet
from repro.network.routing import POLICY_SPRAY, RoutingFabric
from repro.topology.fattree import FatTreeTopology
from repro.transport.flows import FlowLevelSimulator, FlowOutcome
from repro.workloads.arrivals import FlowGenerator, FlowSpec
from repro.workloads.websearch import web_search_cdf

#: The flow-size threshold of the Figure 5 scenario (1 MB).
SIZE_SPLIT_THRESHOLD = 1_000_000


@dataclass
class EcmpImbalanceResult:
    """Everything the Figure 5 benchmark reports.

    Attributes:
        imbalance_rates: per-measurement-interval imbalance rate (percent)
            between the two monitored uplinks (Figure 5b's CDF input).
        link_flow_sizes: link label -> flow sizes (bytes) observed on it,
            reconstructed from the distributed flow-size-distribution query
            (Figure 5c's CDF input).
        query_result: the multi-level query result used for the diagnosis.
        monitored_links: the two (switch, core) uplinks being compared.
        flows_simulated: number of generated flows.
    """

    imbalance_rates: List[float] = field(default_factory=list)
    link_flow_sizes: Dict[str, List[int]] = field(default_factory=dict)
    query_result: Optional[DistributedQueryResult] = None
    monitored_links: List[Tuple[str, str]] = field(default_factory=list)
    flows_simulated: int = 0

    def imbalance_cdf(self) -> Cdf:
        """The Figure 5(b) CDF."""
        return Cdf(self.imbalance_rates)

    def split_quality(self) -> float:
        """Fraction of flows landing on the link their size class predicts.

        Close to 1.0 confirms the "sharply divided around 1 MB" diagnosis.
        """
        total = 0
        correct = 0
        labels = sorted(self.link_flow_sizes)
        if len(labels) != 2:
            return 0.0
        big_link, small_link = labels[0], labels[1]
        # Identify which link carries the large flows by mean size.
        means = {label: (sum(sizes) / len(sizes) if sizes else 0.0)
                 for label, sizes in self.link_flow_sizes.items()}
        big_link = max(means, key=means.get)
        small_link = min(means, key=means.get)
        for label, sizes in self.link_flow_sizes.items():
            for size in sizes:
                total += 1
                if size >= SIZE_SPLIT_THRESHOLD and label == big_link:
                    correct += 1
                elif size < SIZE_SPLIT_THRESHOLD and label == small_link:
                    correct += 1
        return correct / total if total else 0.0


def run_ecmp_imbalance_experiment(*, k: int = 4, flow_count: int = 2000,
                                  duration_s: float = 600.0,
                                  interval_s: float = 5.0, seed: int = 0,
                                  binsize: int = 10_000
                                  ) -> EcmpImbalanceResult:
    """Reproduce the ECMP load-imbalance scenario of Figure 5.

    Web-search flows from pod 1 to the other pods; the pod-1 aggregation
    switch ``SAgg`` deterministically maps flows >= 1 MB to uplink 1 and the
    rest to uplink 2.  The per-interval byte loads of the two uplinks give
    the imbalance-rate CDF; a multi-level flow-size-distribution query over
    every TIB gives the per-link flow-size CDFs.
    """
    topo = FatTreeTopology(k)
    routing = RoutingFabric(topo)
    cluster = QueryCluster(topo)

    # Traffic: pod 1 -> all other pods (the paper's scenario).
    src_hosts = topo.hosts_in_pod(1)
    dst_hosts = [h for h in topo.hosts if topo.node(h).pod != 1]
    generator = FlowGenerator(topo.hosts, size_cdf=web_search_cdf(),
                              seed=seed)
    flows = generator.pod_to_other_pods(src_hosts, dst_hosts, flow_count,
                                        duration_s)
    flow_sizes = {flow.flow_id: flow.size for flow in flows}

    # The poorly load-balancing aggregation switch and its two core uplinks.
    sagg = topo.agg_name(1, 0)
    uplinks = sorted(topo.cores_for_agg(sagg))[:2]
    link_big, link_small = (sagg, uplinks[0]), (sagg, uplinks[1])

    def size_biased_selector(packet: Packet,
                             candidates: Sequence[str]) -> str:
        """Flows >= 1 MB to uplink 0, smaller flows to uplink 1."""
        size = flow_sizes.get(packet.flow, 0)
        preferred = uplinks[0] if size >= SIZE_SPLIT_THRESHOLD else uplinks[1]
        if preferred in candidates:
            return preferred
        return sorted(candidates)[0]

    routing.install_custom_selector(sagg, size_biased_selector)
    # Force traffic from pod-1 ToRs through SAgg so the biased switch sees it.
    for tor in topo.tors_in_pod(1):
        routing.install_custom_selector(
            tor, lambda packet, candidates, sagg=sagg: (
                sagg if sagg in candidates else sorted(candidates)[0]))

    simulator = FlowLevelSimulator(topo, routing, seed=seed + 1)
    outcomes = simulator.simulate(flows)
    cluster.ingest_flow_outcomes(outcomes)

    result = EcmpImbalanceResult(monitored_links=[link_big, link_small],
                                 flows_simulated=len(flows))

    # Figure 5(b): per-interval imbalance rate between the two uplinks.
    intervals = int(duration_s / interval_s)
    loads = {link_big: [0.0] * intervals, link_small: [0.0] * intervals}
    for outcome, flow in zip(outcomes, flows):
        bucket = min(intervals - 1, int(flow.start_time / interval_s))
        for delivery in outcome.deliveries:
            for link in (link_big, link_small):
                if _path_uses(delivery.path, link):
                    loads[link][bucket] += delivery.bytes_delivered
    for index in range(intervals):
        pair = [loads[link_big][index], loads[link_small][index]]
        if sum(pair) == 0:
            continue
        result.imbalance_rates.append(imbalance_rate(pair))

    # Figure 5(c): multi-level flow-size-distribution query over all TIBs.
    query = Query(Q_FLOW_SIZE_DISTRIBUTION,
                  params={"links": [link_big, link_small],
                          "binsize": binsize})
    query_result = cluster.execute(query, mechanism=MECHANISM_MULTILEVEL)
    result.query_result = query_result
    sizes: Dict[str, List[int]] = {}
    for (label, bucket), count in query_result.payload.items():
        sizes.setdefault(label, []).extend(
            [int((bucket + 0.5) * binsize)] * count)
    result.link_flow_sizes = sizes
    return result


def _path_uses(path: Sequence[str], link: Tuple[str, str]) -> bool:
    """Whether a node path traverses the (undirected) link."""
    pairs = set(zip(path, path[1:]))
    return link in pairs or (link[1], link[0]) in pairs


@dataclass
class SprayingResult:
    """Per-path traffic split of a sprayed flow (Figure 6)."""

    per_path_bytes: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    balanced: bool = True
    imbalance_rate_pct: float = 0.0
    flow_size: int = 0

    def sorted_series(self) -> List[Tuple[str, int]]:
        """(path label, bytes) pairs sorted by path label."""
        return [("->".join(p[1:-1]), b)
                for p, b in sorted(self.per_path_bytes.items())]


def run_packet_spraying_experiment(*, k: int = 4, flow_size: int = 100_000_000,
                                   imbalanced: bool = False, seed: int = 0,
                                   bias: float = 0.55) -> SprayingResult:
    """Reproduce the packet-spraying scenario of Figure 6.

    A single ``flow_size`` flow is sprayed across the equal-cost paths
    between two hosts in different pods.  In the imbalanced case the spraying
    at the source ToR is biased so one path receives ``bias`` of the packets.
    The per-path byte counts are read back from the destination TIB, exactly
    as the operator would.
    """
    topo = FatTreeTopology(k)
    routing = RoutingFabric(topo, policy=POLICY_SPRAY)
    cluster = QueryCluster(topo)

    src = topo.host_name(0, 0, 0)
    dst = topo.host_name(1, 1, 0)
    generator = FlowGenerator(topo.hosts, seed=seed)
    spec = generator.single_flow(src, dst, size=flow_size)

    simulator = FlowLevelSimulator(topo, routing, seed=seed + 1)
    weights = None
    if imbalanced:
        # Deliberately steer `bias` of the packets onto one path (the paper
        # configures its switches to overload "Path 3").
        path_count = len(simulator.equal_cost_paths(src, dst))
        remaining = (1.0 - bias) / max(1, path_count - 1)
        weights = [remaining] * path_count
        weights[min(2, path_count - 1)] = bias
    outcome = simulator.simulate_flow(spec, policy=POLICY_SPRAY,
                                      spray_weights=weights)
    cluster.ingest_flow_outcomes([outcome])

    # Read the per-path statistics back from the destination TIB (one pass
    # over the flow-indexed records instead of a full getFlows scan).
    agent = cluster.agent(dst)
    per_path: Dict[Tuple[str, ...], int] = {}
    for record in agent.records(flow_id=spec.flow_id):
        per_path[record.path] = per_path.get(record.path, 0) + record.bytes

    values = list(per_path.values())
    rate = imbalance_rate(values) if values else 0.0
    return SprayingResult(per_path_bytes=per_path,
                          balanced=rate < 25.0,
                          imbalance_rate_pct=rate,
                          flow_size=flow_size)
