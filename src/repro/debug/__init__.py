"""Debugging applications built on the PathDump API (Section 4 of the paper)."""

from repro.debug.path_conformance import (ConformancePolicy,
                                          PathConformanceApp,
                                          run_path_conformance_experiment)
from repro.debug.load_imbalance import (EcmpImbalanceResult, SprayingResult,
                                        run_ecmp_imbalance_experiment,
                                        run_packet_spraying_experiment)
from repro.debug.maxcoverage import (MaxCoverageLocalizer, MaxCoverageResult,
                                     path_to_signature)
from repro.debug.silent_drops import (SilentDropLocalizer,
                                      run_silent_drop_experiment,
                                      sweep_time_to_localize)
from repro.debug.blackhole import (BlackholeDiagnoser, BlackholeDiagnosis,
                                   run_blackhole_experiment)
from repro.debug.routing_loop import (RoutingLoopDetector,
                                      run_routing_loop_experiment)
from repro.debug.tcp_anomaly import (TcpAnomalyDiagnoser, VERDICT_INCAST,
                                     VERDICT_OUTCAST, run_incast_experiment,
                                     run_outcast_experiment)
from repro.debug.measurement import (congested_link_flows, ddos_fan_in,
                                     heavy_hitters, top_k_flows,
                                     traffic_matrix)
from repro.debug.coverage import (TABLE2_ROWS, coverage_fraction,
                                  coverage_table, implementation_index,
                                  pathdump_supported, pathdump_unsupported)

__all__ = [
    "ConformancePolicy", "PathConformanceApp",
    "run_path_conformance_experiment",
    "EcmpImbalanceResult", "SprayingResult", "run_ecmp_imbalance_experiment",
    "run_packet_spraying_experiment",
    "MaxCoverageLocalizer", "MaxCoverageResult", "path_to_signature",
    "SilentDropLocalizer", "run_silent_drop_experiment",
    "sweep_time_to_localize",
    "BlackholeDiagnoser", "BlackholeDiagnosis", "run_blackhole_experiment",
    "RoutingLoopDetector", "run_routing_loop_experiment",
    "TcpAnomalyDiagnoser", "VERDICT_INCAST", "VERDICT_OUTCAST",
    "run_incast_experiment", "run_outcast_experiment",
    "congested_link_flows", "ddos_fan_in", "heavy_hitters", "top_k_flows",
    "traffic_matrix",
    "TABLE2_ROWS", "coverage_fraction", "coverage_table",
    "implementation_index", "pathdump_supported", "pathdump_unsupported",
]
