"""The MAX-COVERAGE fault localization algorithm.

Section 2.3: "the controller ... runs the MAX-COVERAGE algorithm
[Kompella et al., INFOCOM'07] implemented as only about 50 lines of Python
code" over the *failure signatures* it has collected - the paths of flows
that reported serious retransmissions.  The algorithm is a greedy set cover:
repeatedly pick the link that explains (covers) the largest number of
still-unexplained signatures.

Two practical refinements keep the output meaningful under noise (congestion
losses produce signatures that traverse no faulty link):

* a link must cover at least ``min_cover`` signatures to be selected, so a
  single noisy signature does not immediately become a false positive;
* host-facing links can be excluded, since the paper localizes switch
  interface faults.

Accuracy is evaluated exactly as in the paper: recall and precision of the
reported link set against the ground-truth faulty interfaces (Figure 7), and
the time until both reach 1.0 (Figure 8).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: A failure signature is the (undirected) set of cables a suffering flow
#: traversed; represented as a frozenset of 2-element frozensets.
Cable = FrozenSet[str]
Signature = FrozenSet[Cable]


def path_to_signature(path: Sequence[str],
                      skip_hosts: bool = True) -> Signature:
    """Convert a node path into a failure signature (set of cables).

    Args:
        path: node names from source to destination (hosts included).
        skip_hosts: drop host-facing cables, keeping only switch-to-switch
            links as localization candidates.
    """
    cables: Set[Cable] = set()
    nodes = list(path)
    for a, b in zip(nodes, nodes[1:]):
        if a == b:
            continue
        if skip_hosts and (_looks_like_host(a) or _looks_like_host(b)):
            continue
        cables.add(frozenset((a, b)))
    return frozenset(cables)


def _looks_like_host(node: str) -> bool:
    """Heuristic host check matching the repository's naming conventions."""
    return node.startswith("h-") or node.startswith("vh-")


@dataclass
class MaxCoverageResult:
    """Output of one MAX-COVERAGE run.

    Attributes:
        reported: the cables blamed for the failures, in selection order.
        covered_signatures: number of signatures explained by the report.
        total_signatures: number of signatures provided.
        uncovered: signatures no selected link explains (usually noise).
    """

    reported: List[Cable] = field(default_factory=list)
    covered_signatures: int = 0
    total_signatures: int = 0
    uncovered: List[Signature] = field(default_factory=list)

    @property
    def reported_set(self) -> Set[Cable]:
        """The reported cables as a set."""
        return set(self.reported)


class MaxCoverageLocalizer:
    """Greedy set-cover localization over accumulated failure signatures.

    Args:
        min_cover: minimum number of signatures a link must cover to be
            blamed (raises precision under noisy signatures).
        max_links: optional cap on the number of links reported.
    """

    def __init__(self, min_cover: int = 2,
                 max_links: Optional[int] = None) -> None:
        if min_cover < 1:
            raise ValueError("min_cover must be >= 1")
        self.min_cover = min_cover
        self.max_links = max_links
        self._signatures: List[Signature] = []
        self._traversals: Counter = Counter()

    # ----------------------------------------------------------------- input
    def add_signature(self, path: Sequence[str]) -> Signature:
        """Add one failure signature from a suffering flow's path."""
        signature = path_to_signature(path)
        if signature:
            self._signatures.append(signature)
        return signature

    def add_signatures(self, paths: Iterable[Sequence[str]]) -> int:
        """Add many signatures; returns how many were non-empty."""
        before = len(self._signatures)
        for path in paths:
            self.add_signature(path)
        return len(self._signatures) - before

    def add_traversal(self, path: Sequence[str], count: int = 1) -> None:
        """Record that ``count`` flows (suffering or not) crossed ``path``.

        Traversal counts are optional side information.  PathDump can obtain
        them from the TIBs (``getFlows(linkID, ...)`` counts every flow on a
        link, not just the suffering ones); when available, the localization
        ranks links by a *suspicion ratio* (suffering flows / all flows on
        the link) instead of raw coverage, which disambiguates a faulty link
        from a healthy link that merely shares paths with the victims.
        """
        if count < 1:
            return
        for cable_ in path_to_signature(path):
            self._traversals[cable_] += count

    @property
    def signature_count(self) -> int:
        """Number of accumulated signatures."""
        return len(self._signatures)

    @property
    def has_traversal_counts(self) -> bool:
        """Whether optional traversal-count evidence was provided."""
        return bool(self._traversals)

    def clear(self) -> None:
        """Forget all accumulated signatures and traversal counts."""
        self._signatures.clear()
        self._traversals.clear()

    # ------------------------------------------------------------------- run
    def localize(self) -> MaxCoverageResult:
        """Run the greedy set cover over the accumulated signatures.

        Ties on coverage are broken by *specificity*: the cable whose
        appearances are concentrated in the still-unexplained signatures
        (rather than spread across already-explained ones) is the better
        suspect.  This matters when every suffering flow that crosses the
        faulty link also crosses some shared healthy link - the two tie on
        coverage, but the healthy link shows up in many other signatures.
        """
        result = MaxCoverageResult(total_signatures=len(self._signatures))
        total_appearances: Counter = Counter()
        for signature in self._signatures:
            for cable_ in signature:
                total_appearances[cable_] += 1

        uncovered: List[Signature] = list(self._signatures)
        while uncovered:
            if self.max_links is not None and \
                    len(result.reported) >= self.max_links:
                break
            coverage: Counter = Counter()
            for signature in uncovered:
                for cable_ in signature:
                    coverage[cable_] += 1
            if not coverage:
                break

            use_ratio = self.has_traversal_counts

            def rank(item: Tuple[Cable, int]) -> Tuple:
                cable_, count = item
                specificity = count / total_appearances[cable_]
                if use_ratio:
                    traversals = max(count, self._traversals.get(cable_, count))
                    # Additive smoothing keeps rarely-traversed cables from
                    # reaching a spuriously perfect suspicion ratio.
                    suspicion = count / (traversals + 10.0)
                    return (suspicion, count, sorted(sorted(cable_)))
                return (count, specificity, sorted(sorted(cable_)))

            best_cable, best_count = max(coverage.items(), key=rank)
            if best_count < self.min_cover:
                break
            result.reported.append(best_cable)
            remaining = [s for s in uncovered if best_cable not in s]
            result.covered_signatures += len(uncovered) - len(remaining)
            uncovered = remaining
        result.uncovered = uncovered
        return result
