"""Path conformance checking (Sections 2.3 and 4.1, Figure 4).

The operator expresses a policy over the paths a flow may take - a maximum
path length, switches that must be avoided, or a waypoint that must be
traversed - and installs the corresponding query at the end hosts.  The
agent evaluates the predicate against the trajectories it extracts (either
on every packet arrival or periodically) and raises a ``PC_FAIL`` alarm with
the offending paths.

The Figure 4 experiment: a link failure makes a packet take a 6-hop path
instead of its intended 4-hop shortest path; the destination agent detects
the violation in real time and alerts the controller with the flow key and
trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.alarms import PC_FAIL, Alarm
from repro.core.cluster import QueryCluster
from repro.core.controller import PathDumpController
from repro.core.query import Q_PATH_CONFORMANCE, Query
from repro.network.faults import FaultInjector
from repro.network.packet import FlowId
from repro.network.routing import RoutingFabric
from repro.network.simulator import Fabric
from repro.topology.fattree import FatTreeTopology
from repro.transport.tcp import TcpSender
from repro.workloads.arrivals import FlowGenerator, FlowSpec


@dataclass
class ConformancePolicy:
    """An operator policy over packet paths.

    Attributes:
        max_switch_hops: maximum allowed number of switches on a path
            (``None`` disables the length check).  The Section 2.3 example
            uses "path length no more than 6".
        forbidden_switches: switches packets must avoid.
        required_waypoints: switches every path must traverse (waypoint
            routing from Table 2); empty means no waypoint requirement.
    """

    max_switch_hops: Optional[int] = None
    forbidden_switches: Set[str] = field(default_factory=set)
    required_waypoints: Set[str] = field(default_factory=set)

    def violations(self, path: Sequence[str]) -> List[str]:
        """Describe every way ``path`` violates the policy (empty = OK)."""
        switch_path = [n for n in path
                       if not (n.startswith("h-") or n.startswith("vh-"))]
        problems: List[str] = []
        if (self.max_switch_hops is not None
                and len(switch_path) >= self.max_switch_hops):
            problems.append(
                f"path length {len(switch_path)} >= {self.max_switch_hops}")
        bad = self.forbidden_switches.intersection(switch_path)
        if bad:
            problems.append(f"traverses forbidden switch(es) {sorted(bad)}")
        missing = self.required_waypoints.difference(switch_path)
        if self.required_waypoints and missing:
            problems.append(f"misses waypoint(s) {sorted(missing)}")
        return problems

    def conforms(self, path: Sequence[str]) -> bool:
        """Whether ``path`` satisfies the policy."""
        return not self.violations(path)

    def to_query(self, flow_id: Optional[FlowId] = None,
                 period: Optional[float] = None) -> Query:
        """Express the (length/forbidden-switch) policy as an installable query."""
        return Query(Q_PATH_CONFORMANCE,
                     params={"max_hops": self.max_switch_hops,
                             "forbidden": sorted(self.forbidden_switches),
                             "flow_id": flow_id},
                     period=period)


class PathConformanceApp:
    """Controller-side view of the path-conformance application."""

    def __init__(self, controller: PathDumpController,
                 policy: ConformancePolicy) -> None:
        self.controller = controller
        self.policy = policy
        self.violations: List[Alarm] = []
        controller.on_alarm(self._on_alarm, reason=PC_FAIL)

    def install(self, hosts: Optional[Sequence[str]] = None,
                period: Optional[float] = None) -> None:
        """Install the conformance query on the given hosts (all by default)."""
        self.controller.install(hosts, self.policy.to_query(period=period),
                                period=period)

    def _on_alarm(self, alarm: Alarm) -> None:
        self.violations.append(alarm)

    def violation_count(self) -> int:
        """Number of PC_FAIL alarms received."""
        return len(self.violations)


@dataclass
class ConformanceExperimentResult:
    """Outcome of the Figure 4 path-conformance experiment."""

    expected_path: Tuple[str, ...]
    actual_path: Tuple[str, ...]
    violation_detected: bool
    alarms: List[Alarm]
    detection_paths: List[Tuple[str, ...]]

    @property
    def detour_hops(self) -> int:
        """Extra links taken compared to the intended shortest path."""
        return len(self.actual_path) - len(self.expected_path)


def run_path_conformance_experiment(*, k: int = 4, seed: int = 0,
                                    max_switch_hops: int = 6,
                                    mode: str = "serial",
                                    retention=None
                                    ) -> ConformanceExperimentResult:
    """Reproduce the Figure 4 scenario on a k-ary fat-tree.

    A flow between two pods is first routed over its 4-hop shortest path;
    then the aggregate-to-ToR link on the destination side fails, the fabric
    fails over onto a longer path, and the destination agent's installed
    conformance query raises a PC_FAIL alarm carrying the offending
    trajectory.  The experiment runs in any cluster ``mode``: the
    event-driven installed query always executes at the end host on packet
    arrival, and the alarm bus carries the PC_FAIL alert identically in
    serial, concurrent and process mode.
    """
    topo = FatTreeTopology(k)
    routing = RoutingFabric(topo)
    fabric = Fabric(topo, routing, seed=seed)
    cluster = QueryCluster(topo, fabric=fabric, mode=mode,
                           retention=retention)
    try:
        return _run_conformance(cluster, topo, routing, fabric, seed=seed,
                                max_switch_hops=max_switch_hops)
    finally:
        cluster.close()


def _run_conformance(cluster: QueryCluster, topo: FatTreeTopology,
                     routing: RoutingFabric, fabric: Fabric, *, seed: int,
                     max_switch_hops: int) -> ConformanceExperimentResult:
    from repro.transport.flows import FlowLevelSimulator

    controller = PathDumpController(cluster, fabric)

    src = topo.host_name(0, 0, 0)
    dst = topo.host_name(topo.k - 1, 0, 0)

    policy = ConformancePolicy(max_switch_hops=max_switch_hops)
    app = PathConformanceApp(controller, policy)
    # Event-driven installation at the destination host only (the flow's
    # records are local to it).
    app.install(hosts=[dst], period=None)

    generator = FlowGenerator(topo.hosts, seed=seed)
    path_probe = FlowLevelSimulator(topo, routing, seed=seed)
    injector = FaultInjector(topo, routing, seed=seed)

    # Pick a flow whose ECMP path survives the failover detour: fail the
    # aggregate->ToR link its shortest path uses on the destination side and
    # keep the first candidate flow for which the detour actually reaches the
    # destination (ECMP hashing at the bounce ToR must pick the healthy
    # aggregate; the paper's testbed crafts its failover rules the same way).
    spec: Optional[FlowSpec] = None
    expected: Tuple[str, ...] = ()
    for _ in range(32):
        candidate = generator.single_flow(src, dst, size=40_000)
        injector.clear()
        shortest = tuple(path_probe.ecmp_path(candidate.flow_id))
        injector.fail_link(shortest[-3], shortest[-2])
        try:
            detour = tuple(path_probe.ecmp_path(candidate.flow_id))
        except RuntimeError:
            continue
        if len(detour) > len(shortest):
            spec = candidate
            expected = shortest
            break
    if spec is None:
        raise RuntimeError("could not construct a surviving detour scenario")

    result = TcpSender(fabric, spec).run()
    cluster.flush_all()

    actual_paths = cluster.agent(dst).get_paths(spec.flow_id)
    actual = max(actual_paths, key=len) if actual_paths else ()
    alarms = controller.alarms(PC_FAIL)
    detection_paths = [tuple(p) for alarm in alarms for p in alarm.paths]
    return ConformanceExperimentResult(
        expected_path=expected, actual_path=tuple(actual),
        violation_detected=bool(alarms), alarms=alarms,
        detection_paths=detection_paths)
