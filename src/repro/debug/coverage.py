"""The Table 2 application-coverage matrix.

Table 2 of the paper lists fifteen debugging applications discussed across
recent systems and marks which of PathDump, PathQuery, Everflow, NetSight and
TPP support each.  PathDump supports 13 of the 15 (87 %), the exceptions
being overlay loop detection and incorrect packet modification - both of
which genuinely require in-network visibility.

This module encodes that matrix (so the Table 2 benchmark can print it) and
maps every PathDump-supported application to the module of this repository
that implements it, which doubles as a completeness check for the
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Support levels.
SUPPORTED = "yes"
UNSUPPORTED = "no"
UNCLEAR = "?"


@dataclass(frozen=True)
class ApplicationSupport:
    """One row of Table 2."""

    name: str
    description: str
    pathdump: str
    pathquery: str
    everflow: str
    netsight: str
    tpp: str
    repro_module: Optional[str] = None


#: The Table 2 rows, in the paper's order.
TABLE2_ROWS: List[ApplicationSupport] = [
    ApplicationSupport(
        "Loop freedom", "Detect forwarding loops",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, UNCLEAR,
        "repro.debug.routing_loop"),
    ApplicationSupport(
        "Load imbalance diagnosis",
        "Get fine-grained statistics of all flows on set of links",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.debug.load_imbalance"),
    ApplicationSupport(
        "Congested link diagnosis",
        "Find flows using a congested link, to help rerouting",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.debug.measurement"),
    ApplicationSupport(
        "Silent blackhole detection",
        "Find switch that drops all packets silently",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, UNSUPPORTED,
        "repro.debug.blackhole"),
    ApplicationSupport(
        "Silent packet drop detection",
        "Find switch that drops packets silently and randomly",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, UNSUPPORTED,
        "repro.debug.silent_drops"),
    ApplicationSupport(
        "Packet drops on servers",
        "Localize packet drop sources (network vs. server)",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.debug.silent_drops"),
    ApplicationSupport(
        "Overlay loop detection",
        "Loop between SLB and physical IP",
        UNSUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, UNCLEAR, None),
    ApplicationSupport(
        "Protocol bugs",
        "Bugs in the implementation of network protocols",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, UNCLEAR,
        "repro.debug.tcp_anomaly"),
    ApplicationSupport(
        "Isolation", "Check if hosts are allowed to talk",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.debug.path_conformance"),
    ApplicationSupport(
        "Incorrect packet modification",
        "Localize switch that modifies packet incorrectly",
        UNSUPPORTED, SUPPORTED, UNCLEAR, SUPPORTED, UNSUPPORTED,
        "repro.core.trajectory (detection only, Section 2.4)"),
    ApplicationSupport(
        "Waypoint routing",
        "Identify packets not passing through a waypoint",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.debug.path_conformance"),
    ApplicationSupport(
        "DDoS diagnosis", "Get statistics of DDoS attack sources",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.debug.measurement"),
    ApplicationSupport(
        "Traffic matrix",
        "Get traffic volume between all switch pairs",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.debug.measurement"),
    ApplicationSupport(
        "Netshark", "Network-wide path-aware packet logger",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.core.tib"),
    ApplicationSupport(
        "Max path length",
        "No packet should exceed path length of size n",
        SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED, SUPPORTED,
        "repro.debug.path_conformance"),
]


def pathdump_supported() -> List[ApplicationSupport]:
    """Rows PathDump supports."""
    return [row for row in TABLE2_ROWS if row.pathdump == SUPPORTED]


def pathdump_unsupported() -> List[ApplicationSupport]:
    """Rows PathDump does not support (network support is necessary)."""
    return [row for row in TABLE2_ROWS if row.pathdump == UNSUPPORTED]


def coverage_fraction() -> float:
    """Fraction of the Table 2 applications PathDump supports.

    The paper summarises this as "more than 85 %" (13 of 15).
    """
    return len(pathdump_supported()) / len(TABLE2_ROWS)


def coverage_table() -> List[Tuple[str, str, str, str, str, str]]:
    """Rows in a printable form (name + the five tools' support flags)."""
    return [(row.name, row.pathdump, row.pathquery, row.everflow,
             row.netsight, row.tpp) for row in TABLE2_ROWS]


def implementation_index() -> Dict[str, Optional[str]]:
    """Application name -> module of this repository implementing it."""
    return {row.name: row.repro_module for row in TABLE2_ROWS}
