"""Silent random packet drop localization (Section 4.3, Figures 7 and 8).

The application works exactly as the paper describes:

1. a TCP performance monitoring query is installed on every end host
   (period ~200 ms); hosts whose flows keep retransmitting raise
   ``POOR_PERF`` alarms;
2. every alarm makes the controller query the flow's destination TIB for the
   path(s) the suffering flow took (``getPaths``), which become *failure
   signatures*;
3. the controller keeps running MAX-COVERAGE over the accumulated signatures;
   as evidence accumulates the reported link set converges to the
   ground-truth faulty interfaces.

:class:`SilentDropLocalizer` is the event-driven controller application;
:func:`run_silent_drop_experiment` is the scenario driver that reproduces the
Figure 7 accuracy-versus-time curves and the Figure 8 time-to-perfect
numbers on a fat-tree with web-search background traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.stats import PrecisionRecall, score_localization
from repro.core.alarms import POOR_PERF, Alarm
from repro.core.cluster import QueryCluster
from repro.debug.maxcoverage import MaxCoverageLocalizer, MaxCoverageResult
from repro.network.faults import FaultInjector
from repro.network.routing import RoutingFabric
from repro.topology.fattree import FatTreeTopology
from repro.transport.flows import FlowLevelSimulator
from repro.workloads.arrivals import FlowGenerator

Cable = FrozenSet[str]


class SilentDropLocalizer:
    """Event-driven controller application localizing silent drops.

    Args:
        cluster: the agent cluster (used to pull paths from destination TIBs).
        min_cover: MAX-COVERAGE selection threshold.
        poor_threshold: consecutive-retransmission threshold identifying a
            suffering flow (matches the monitor's).
    """

    def __init__(self, cluster: QueryCluster, min_cover: int = 2,
                 poor_threshold: int = 1) -> None:
        self.cluster = cluster
        self.localizer = MaxCoverageLocalizer(min_cover=min_cover)
        self.poor_threshold = poor_threshold
        self.alarms_handled = 0
        self.signatures_collected = 0

    # ------------------------------------------------------------- event path
    def on_alarm(self, alarm: Alarm) -> int:
        """Handle one POOR_PERF alarm: collect the flow's failure signature.

        Returns the number of paths (signatures) collected for this alarm.
        """
        if alarm.reason != POOR_PERF:
            return 0
        self.alarms_handled += 1
        dst_agent = self.cluster.agents.get(alarm.flow_id.dst_ip)
        if dst_agent is None:
            return 0
        paths = dst_agent.get_paths(alarm.flow_id, include_live=True)
        for path in paths:
            self.localizer.add_signature(path)
        self.signatures_collected += len(paths)
        return len(paths)

    def observe_link_usage(self, paths, count: int = 1) -> None:
        """Feed per-link usage counts (from ``getFlows`` over the TIBs).

        The localization's suspicion ratio needs to know how many flows
        crossed each link in total, not just the suffering ones; PathDump
        obtains this from the same distributed TIBs with ``getFlows``.
        """
        for path in paths:
            self.localizer.add_traversal(path, count)

    def localize(self) -> MaxCoverageResult:
        """Run MAX-COVERAGE over everything collected so far."""
        return self.localizer.localize()

    def score(self, ground_truth_cables: Set[Cable]) -> PrecisionRecall:
        """Score the current localization against the ground truth."""
        return score_localization(self.localize().reported_set,
                                  ground_truth_cables)


@dataclass
class AccuracyPoint:
    """One point of the Figure 7 accuracy-versus-time curves."""

    time_s: float
    recall: float
    precision: float
    signatures: int
    alarms: int


@dataclass
class SilentDropExperimentResult:
    """Everything the Figure 7 / Figure 8 benchmarks need.

    Attributes:
        points: accuracy over time (one entry per monitoring interval).
        time_to_perfect_s: first time recall and precision both reached 1.0
            (``None`` if never within the experiment duration).
        faulty_interfaces: the injected ground truth.
        flows_simulated: number of background flows simulated.
    """

    points: List[AccuracyPoint] = field(default_factory=list)
    time_to_perfect_s: Optional[float] = None
    faulty_interfaces: List[Tuple[str, str]] = field(default_factory=list)
    flows_simulated: int = 0

    def final_recall(self) -> float:
        """Recall at the end of the experiment."""
        return self.points[-1].recall if self.points else 0.0

    def final_precision(self) -> float:
        """Precision at the end of the experiment."""
        return self.points[-1].precision if self.points else 0.0


def run_silent_drop_experiment(
        *, k: int = 4, faulty_interfaces: int = 1, loss_rate: float = 0.01,
        network_load: float = 0.7, duration_s: float = 60.0,
        interval_s: float = 5.0, seed: int = 0,
        link_capacity_bps: float = 1e9, ambient_loss: float = 0.0,
        min_cover: int = 2, alert_threshold: int = 1
        ) -> SilentDropExperimentResult:
    """Reproduce the Section 4.3 experiment on a k-ary fat-tree.

    Args:
        k: fat-tree arity (the paper uses 4).
        faulty_interfaces: number of randomly chosen lossy interfaces (1-4).
        loss_rate: silent drop probability of each faulty interface.
        network_load: offered load as a fraction of host link capacity.
        duration_s: simulated experiment duration.
        interval_s: how often accuracy is evaluated (one point per interval).
        seed: seed controlling fault placement, workload and loss sampling.
        link_capacity_bps: host access link capacity (the paper's testbed
            uses 1 GbE).
        ambient_loss: per-link congestion loss on healthy links (adds noise
            signatures; zero by default - even without it, early precision
            sits below 1.0 because with few signatures the greedy cover can
            blame a healthy link that happens to be shared by the suffering
            flows' paths).
        min_cover: MAX-COVERAGE selection threshold.
        alert_threshold: consecutive-retransmission count at which the
            end-host monitor raises a POOR_PERF alert (the paper's
            "configured frequency").

    Returns:
        The experiment result with per-interval accuracy points.
    """
    topo = FatTreeTopology(k)
    routing = RoutingFabric(topo)
    cluster = QueryCluster(topo)
    for agent in cluster.agents.values():
        agent.monitor.poor_threshold = alert_threshold
    injector = FaultInjector(topo, routing, seed=seed)
    chosen = injector.random_silent_drop_interfaces(faulty_interfaces,
                                                    loss_rate)
    ground_truth = {frozenset(interface) for interface in chosen}

    simulator = FlowLevelSimulator(topo, routing, seed=seed + 1,
                                   ambient_loss=ambient_loss,
                                   link_capacity_bps=link_capacity_bps)
    generator = FlowGenerator(topo.hosts, seed=seed + 2)
    flows = generator.poisson_all_to_all(duration=duration_s,
                                         load=network_load,
                                         link_capacity_bps=link_capacity_bps)

    app = SilentDropLocalizer(cluster, min_cover=min_cover)
    cluster.alarm_bus.subscribe(app.on_alarm, reason=POOR_PERF)

    result = SilentDropExperimentResult(
        faulty_interfaces=[tuple(i) for i in chosen],
        flows_simulated=len(flows))

    flow_index = 0
    now = 0.0
    while now < duration_s:
        now = min(duration_s, now + interval_s)
        batch = []
        while flow_index < len(flows) and flows[flow_index].start_time <= now:
            batch.append(flows[flow_index])
            flow_index += 1
        outcomes = simulator.simulate(batch)
        cluster.ingest_flow_outcomes(outcomes)
        app.observe_link_usage(
            [d.path for o in outcomes for d in o.deliveries])
        cluster.run_monitors(now)

        scored = app.score(ground_truth)
        point = AccuracyPoint(time_s=now, recall=scored.recall,
                              precision=scored.precision,
                              signatures=app.localizer.signature_count,
                              alarms=app.alarms_handled)
        result.points.append(point)
        if (result.time_to_perfect_s is None and scored.recall >= 1.0
                and scored.precision >= 1.0):
            result.time_to_perfect_s = now
    return result


def sweep_time_to_localize(*, faulty_interface_counts: Sequence[int] = (1, 2, 4),
                           loss_rates: Sequence[float] = (0.01,),
                           network_loads: Sequence[float] = (0.7,),
                           runs: int = 3, duration_s: float = 120.0,
                           interval_s: float = 5.0, seed: int = 0,
                           **kwargs) -> Dict[Tuple[int, float, float],
                                             List[Optional[float]]]:
    """Sweep the Figure 8 parameter grid and collect time-to-perfect samples.

    Returns:
        Mapping ``(faulty_interfaces, loss_rate, network_load)`` to the list
        of per-run times (``None`` entries mean the run never converged).
    """
    results: Dict[Tuple[int, float, float], List[Optional[float]]] = {}
    for count in faulty_interface_counts:
        for loss in loss_rates:
            for load in network_loads:
                samples: List[Optional[float]] = []
                for run in range(runs):
                    outcome = run_silent_drop_experiment(
                        faulty_interfaces=count, loss_rate=loss,
                        network_load=load, duration_s=duration_s,
                        interval_s=interval_s, seed=seed + run * 101 + count,
                        **kwargs)
                    samples.append(outcome.time_to_perfect_s)
                results[(count, loss, load)] = samples
    return results
