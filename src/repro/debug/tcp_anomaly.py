"""TCP performance anomaly diagnosis: outcast and incast (Section 4.6,
Figure 10).

The scenario: 15 TCP senders transmit to a single receiver for 10 seconds.
One sender (f1) is close to the receiver and its packets arrive at the
receiver's ToR on their own input port; the other 14 flows arrive bunched on
the uplink port(s).  Taildrop "port blackout" starves f1 - the *TCP outcast*
problem - even though fair sharing should, if anything, favour it.

PathDump's diagnosis is entirely edge-based:

1. the senders' monitors raise POOR_PERF alerts (every 200 ms check);
2. once the controller sees at least 10 alerts from different sources to the
   same destination, it asks that destination's agent for per-sender byte
   counts and paths;
3. it reconstructs per-sender throughput (Figure 10a) and the path tree with
   per-input-port flow counts (Figure 10b);
4. the signature "the flow entering alone on one port is the slowest by a
   large margin" identifies the outcast; many flows all slow together with no
   port asymmetry is classified as incast.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.stats import jains_fairness
from repro.core.alarms import POOR_PERF, Alarm
from repro.core.cluster import QueryCluster
from repro.network.packet import FlowId
from repro.storage.records import PathFlowRecord
from repro.topology.fattree import FatTreeTopology
from repro.transport.contention import (ContendingFlow, ContentionResult,
                                        simulate_incast,
                                        simulate_port_blackout)
from repro.workloads.arrivals import FlowGenerator

#: Minimum number of distinct-source alerts towards one destination before
#: the diagnosis application starts working (the paper uses 10).
MIN_ALERTS_FOR_DIAGNOSIS = 10

#: Verdicts.
VERDICT_OUTCAST = "outcast"
VERDICT_INCAST = "incast"
VERDICT_UNKNOWN = "unknown"


@dataclass
class PathTreeNode:
    """Per-input-branch flow count at the contention switch (Figure 10b)."""

    branch: str
    flow_count: int
    flows: List[FlowId] = field(default_factory=list)


@dataclass
class AnomalyDiagnosis:
    """Result of one outcast/incast diagnosis.

    Attributes:
        receiver: the common destination host.
        verdict: ``outcast``, ``incast`` or ``unknown``.
        per_sender_throughput_bps: sender host -> achieved throughput.
        victim: the starved sender (for outcast).
        path_tree: per-branch flow counts at the receiver's ToR.
        fairness_index: Jain's fairness index over the throughputs.
        alerts_seen: number of POOR_PERF alerts that triggered the diagnosis.
    """

    receiver: str
    verdict: str
    per_sender_throughput_bps: Dict[str, float] = field(default_factory=dict)
    victim: Optional[str] = None
    path_tree: List[PathTreeNode] = field(default_factory=list)
    fairness_index: float = 1.0
    alerts_seen: int = 0


class TcpAnomalyDiagnoser:
    """Controller application diagnosing outcast/incast from alerts + TIB."""

    def __init__(self, cluster: QueryCluster,
                 min_alerts: int = MIN_ALERTS_FOR_DIAGNOSIS) -> None:
        self.cluster = cluster
        self.min_alerts = min_alerts
        self._alerts_by_destination: Dict[str, Set[str]] = defaultdict(set)
        self.diagnoses: List[AnomalyDiagnosis] = []

    # ------------------------------------------------------------ event path
    def on_alarm(self, alarm: Alarm) -> Optional[AnomalyDiagnosis]:
        """Collect POOR_PERF alerts; diagnose once enough sources complain."""
        if alarm.reason != POOR_PERF:
            return None
        dst = alarm.flow_id.dst_ip
        self._alerts_by_destination[dst].add(alarm.flow_id.src_ip)
        if len(self._alerts_by_destination[dst]) < self.min_alerts:
            return None
        diagnosis = self.diagnose(dst)
        self.diagnoses.append(diagnosis)
        return diagnosis

    # ------------------------------------------------------------- diagnosis
    def diagnose(self, receiver: str,
                 duration_s: float = 10.0) -> AnomalyDiagnosis:
        """Diagnose the anomaly at ``receiver`` from its TIB contents."""
        agent = self.cluster.agents[receiver]
        throughput: Dict[str, float] = {}
        branch_flows: Dict[str, List[FlowId]] = defaultdict(list)
        # One pass over the receiver's TIB; the engine keeps exactly one
        # record per (flow, path), so each record already carries the pair's
        # getCount/getDuration aggregates.
        for record in agent.records():
            if record.flow_id.dst_ip != receiver:
                continue
            flow_id, path = record.flow_id, record.path
            duration = (record.etime - record.stime) or duration_s
            throughput[flow_id.src_ip] = max(
                throughput.get(flow_id.src_ip, 0.0),
                record.bytes * 8.0 / max(duration, 1e-6))
            # The branch is the node the packet came from when it reached the
            # receiver's ToR: a host for rack-local senders, an aggregate
            # switch for remote ones.
            if len(path) >= 3:
                branch = path[-3]
            else:
                branch = path[0]
            branch_flows[branch].append(flow_id)

        tree = [PathTreeNode(branch=branch, flow_count=len(flows),
                             flows=flows)
                for branch, flows in sorted(branch_flows.items())]
        alerts = len(self._alerts_by_destination.get(receiver, ()))
        diagnosis = AnomalyDiagnosis(
            receiver=receiver, verdict=VERDICT_UNKNOWN,
            per_sender_throughput_bps=throughput, path_tree=tree,
            fairness_index=(jains_fairness(list(throughput.values()))
                            if throughput else 1.0),
            alerts_seen=alerts)
        if not throughput:
            return diagnosis

        victim = min(throughput, key=throughput.get)
        others = [v for s, v in throughput.items() if s != victim]
        victim_rate = throughput[victim]
        mean_others = sum(others) / len(others) if others else victim_rate

        # Outcast signature: the slowest sender is far below the rest AND it
        # is the one whose packets enter the contention switch on the
        # minority input branch.
        minority_branch = min(tree, key=lambda n: n.flow_count) if tree else None
        victim_on_minority = bool(
            minority_branch
            and any(f.src_ip == victim for f in minority_branch.flows))
        if others and victim_rate < 0.5 * mean_others and victim_on_minority:
            diagnosis.verdict = VERDICT_OUTCAST
            diagnosis.victim = victim
        elif diagnosis.fairness_index > 0.8 and len(throughput) >= 8:
            diagnosis.verdict = VERDICT_INCAST
        return diagnosis


@dataclass
class OutcastExperimentResult:
    """Outcome of the Figure 10 experiment."""

    diagnosis: AnomalyDiagnosis
    throughputs_mbps: Dict[str, float]
    expected_victim: str
    detection_correct: bool


def run_outcast_experiment(*, k: int = 4, senders: int = 15,
                           duration_s: float = 10.0, seed: int = 0,
                           capacity_bps: float = 1e9, mode: str = "serial",
                           retention=None
                           ) -> OutcastExperimentResult:
    """Reproduce the TCP outcast scenario of Figure 10.

    One rack-local sender (arriving on its own input port of the receiver's
    ToR) competes with ``senders - 1`` remote senders arriving via the ToR
    uplinks.  The port-blackout contention model produces per-flow
    throughputs and retransmission streaks; TIB records and monitor alerts
    are derived from them, and the diagnosis application runs exactly as it
    would in production - over the alarm bus in every cluster ``mode``
    (in process mode the monitors run host-side in the agent-server
    workers and the alerts arrive over the wire).
    """
    topo = FatTreeTopology(k)
    cluster = QueryCluster(topo, mode=mode, retention=retention)
    try:
        return _run_outcast(cluster, topo, senders=senders,
                            duration_s=duration_s, seed=seed,
                            capacity_bps=capacity_bps)
    finally:
        cluster.close()


def _run_outcast(cluster: QueryCluster, topo: FatTreeTopology, *,
                 senders: int, duration_s: float, seed: int,
                 capacity_bps: float) -> OutcastExperimentResult:
    receiver = topo.host_name(2, 0, 0)
    local_sender = topo.host_name(2, 0, 1)
    remote_candidates = [h for h in topo.hosts
                         if topo.node(h).pod != 2]
    remote_senders = remote_candidates[:senders - 1]

    generator = FlowGenerator(topo.hosts, seed=seed)
    specs = generator.many_to_one([local_sender] + remote_senders, receiver,
                                  size=50_000_000)

    contending: List[ContendingFlow] = []
    for spec in specs:
        path = tuple(topo.shortest_path(spec.src, receiver))
        group = "local-port" if spec.src == local_sender else "uplink-port"
        contending.append(ContendingFlow(flow_id=spec.flow_id,
                                         input_port_group=group,
                                         path=path))
    results = simulate_port_blackout(contending, capacity_bps, duration_s,
                                     seed=seed)

    # Feed the TIBs (receiver side) and the monitors (sender side).
    receiver_agent = cluster.agent(receiver)
    for flow, result in zip(contending, results):
        record = PathFlowRecord(
            flow_id=flow.flow_id, path=flow.path, stime=0.0,
            etime=duration_s, bytes=result.bytes_delivered,
            pkts=max(1, result.bytes_delivered // 1460))
        receiver_agent.ingest_path_record(record)
        sender_agent = cluster.agent(flow.flow_id.src_ip)
        sender_agent.monitor.observe_flow(
            flow.flow_id, retransmissions=result.retransmissions,
            consecutive=result.max_consecutive_retransmissions,
            bytes_sent=result.bytes_delivered, when=duration_s)

    diagnoser = TcpAnomalyDiagnoser(cluster)
    cluster.alarm_bus.subscribe(diagnoser.on_alarm, reason=POOR_PERF)
    # Every sender whose flow keeps retransmitting raises an alert during the
    # periodic check (threshold 1 retransmission streak, as in the paper's
    # "repeatedly retransmit" query).  In process mode this is a scatter of
    # monitor-tick frames; the alerts come back over the wire.
    cluster.run_monitors(duration_s, threshold=1)

    if diagnoser.diagnoses:
        diagnosis = diagnoser.diagnoses[-1]
    else:
        diagnosis = diagnoser.diagnose(receiver, duration_s=duration_s)
    throughputs = {sender: rate / 1e6 for sender, rate in
                   diagnosis.per_sender_throughput_bps.items()}
    correct = (diagnosis.verdict == VERDICT_OUTCAST
               and diagnosis.victim == local_sender)
    return OutcastExperimentResult(diagnosis=diagnosis,
                                   throughputs_mbps=throughputs,
                                   expected_victim=local_sender,
                                   detection_correct=correct)


def run_incast_experiment(*, k: int = 4, senders: int = 20,
                          duration_s: float = 5.0, seed: int = 0,
                          capacity_bps: float = 1e9,
                          mode: str = "serial") -> AnomalyDiagnosis:
    """A many-to-one incast scenario classified by the same diagnoser."""
    topo = FatTreeTopology(k)
    cluster = QueryCluster(topo, mode=mode)
    try:
        receiver = topo.host_name(0, 0, 0)
        sender_hosts = [h for h in topo.hosts if h != receiver][:senders]
        generator = FlowGenerator(topo.hosts, seed=seed)
        specs = generator.many_to_one(sender_hosts, receiver, size=1_000_000)

        contending = [ContendingFlow(flow_id=s.flow_id,
                                     input_port_group="uplink",
                                     path=tuple(topo.shortest_path(s.src,
                                                                   receiver)))
                      for s in specs]
        results = simulate_incast(contending, capacity_bps, duration_s,
                                  seed=seed)
        receiver_agent = cluster.agent(receiver)
        for flow, result in zip(contending, results):
            receiver_agent.ingest_path_record(PathFlowRecord(
                flow_id=flow.flow_id, path=flow.path, stime=0.0,
                etime=duration_s, bytes=result.bytes_delivered,
                pkts=max(1, result.bytes_delivered // 1460)))
            cluster.agent(flow.flow_id.src_ip).monitor.observe_flow(
                flow.flow_id, retransmissions=result.retransmissions,
                consecutive=result.max_consecutive_retransmissions,
                bytes_sent=result.bytes_delivered, when=duration_s)

        diagnoser = TcpAnomalyDiagnoser(cluster)
        return diagnoser.diagnose(receiver, duration_s=duration_s)
    finally:
        cluster.close()
