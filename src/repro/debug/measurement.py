"""Traffic measurement applications (Section 2.3 and Table 2).

PathDump's TIBs double as a distributed measurement substrate.  This module
implements the measurement queries the paper lists:

* **top-k flows** across any subset of end hosts (the Section 2.3 example and
  the Figure 12 workload);
* **heavy hitters** - flows exceeding a byte threshold;
* **traffic matrix** between ToR switch pairs (Table 2, "traffic volume
  between all switch pairs");
* **congested link diagnosis** - the flows traversing a given link, ranked by
  bytes, which is what an operator needs to decide what to re-route;
* **DDoS diagnosis** - per-destination fan-in (number of distinct sources and
  total bytes), flagging destinations with an abnormally large fan-in.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cluster import (MECHANISM_DIRECT, MECHANISM_MULTILEVEL,
                                DistributedQueryResult, QueryCluster)
from repro.core.query import Q_TOP_K_FLOWS, Q_TRAFFIC_MATRIX, Query
from repro.core.tib import LinkId, TimeRange
from repro.network.packet import FlowId
from repro.storage.records import flow_key, parse_flow_key
from repro.workloads.traffic_matrix import TrafficMatrix


@dataclass
class TopFlow:
    """One entry of a top-k / heavy-hitter report."""

    flow_id: FlowId
    bytes: int


def top_k_flows(cluster: QueryCluster, k: int = 1000,
                hosts: Optional[Sequence[str]] = None,
                link: Optional[LinkId] = None,
                time_range: Optional[TimeRange] = None,
                mechanism: str = MECHANISM_MULTILEVEL
                ) -> Tuple[List[TopFlow], DistributedQueryResult]:
    """The global top-k flows by byte count across the chosen hosts.

    Returns both the decoded flow list and the raw distributed-query result
    (whose response time / traffic figures the Figure 12 benchmark reports).
    """
    query = Query(Q_TOP_K_FLOWS, params={"k": k, "link": link,
                                         "time_range": time_range})
    result = cluster.execute(query, hosts, mechanism)
    flows = [TopFlow(flow_id=parse_flow_key(key), bytes=nbytes)
             for nbytes, key in result.payload]
    return flows, result


def heavy_hitters(cluster: QueryCluster, threshold_bytes: int,
                  hosts: Optional[Sequence[str]] = None,
                  time_range: Optional[TimeRange] = None) -> List[TopFlow]:
    """Flows larger than ``threshold_bytes`` anywhere in the cluster."""
    targets = hosts if hosts is not None else cluster.hosts
    hitters: Dict[str, int] = defaultdict(int)
    for host in targets:
        agent = cluster.agent(host)
        for record in agent.records(time_range=time_range):
            hitters[flow_key(record.flow_id)] += record.bytes
    return sorted(
        (TopFlow(flow_id=parse_flow_key(key), bytes=nbytes)
         for key, nbytes in hitters.items() if nbytes >= threshold_bytes),
        key=lambda t: -t.bytes)


def traffic_matrix(cluster: QueryCluster,
                   hosts: Optional[Sequence[str]] = None,
                   time_range: Optional[TimeRange] = None,
                   mechanism: str = MECHANISM_MULTILEVEL
                   ) -> Tuple[TrafficMatrix, DistributedQueryResult]:
    """Rack-to-rack traffic matrix assembled from the distributed TIBs."""
    query = Query(Q_TRAFFIC_MATRIX, params={"time_range": time_range})
    result = cluster.execute(query, hosts, mechanism)
    matrix = TrafficMatrix()
    for (src_tor, dst_tor), nbytes in result.payload.items():
        matrix.add(src_tor, dst_tor, nbytes)
    return matrix, result


def congested_link_flows(cluster: QueryCluster, link: LinkId,
                         hosts: Optional[Sequence[str]] = None,
                         time_range: Optional[TimeRange] = None,
                         top: int = 20) -> List[TopFlow]:
    """Flows traversing ``link`` ranked by bytes (congested-link diagnosis).

    An operator uses this to decide which flows to re-route away from a hot
    link (Table 2, "Find flows using a congested link").
    """
    targets = hosts if hosts is not None else cluster.hosts
    totals: Dict[str, int] = defaultdict(int)
    for host in targets:
        agent = cluster.agent(host)
        for record in agent.records(link=link, time_range=time_range):
            totals[flow_key(record.flow_id)] += record.bytes
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:top]
    return [TopFlow(flow_id=parse_flow_key(key), bytes=nbytes)
            for key, nbytes in ranked]


@dataclass
class FanInReport:
    """Per-destination fan-in used by the DDoS diagnosis application."""

    destination: str
    distinct_sources: int
    total_bytes: int
    suspicious: bool


def ddos_fan_in(cluster: QueryCluster, source_threshold: int = 10,
                hosts: Optional[Sequence[str]] = None,
                time_range: Optional[TimeRange] = None) -> List[FanInReport]:
    """Per-destination distinct-source counts (DDoS diagnosis, Table 2)."""
    targets = hosts if hosts is not None else cluster.hosts
    reports: List[FanInReport] = []
    for host in targets:
        agent = cluster.agent(host)
        sources = set()
        total = 0
        for record in agent.records(time_range=time_range):
            if record.flow_id.dst_ip != host:
                continue
            sources.add(record.flow_id.src_ip)
            total += record.bytes
        reports.append(FanInReport(
            destination=host, distinct_sources=len(sources),
            total_bytes=total,
            suspicious=len(sources) >= source_threshold))
    return sorted(reports, key=lambda r: -r.distinct_sources)
