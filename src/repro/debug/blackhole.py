"""Blackhole diagnosis (Section 4.4).

A *silent blackhole* drops every packet crossing one interface without
raising any counter.  With packet spraying, a flow's packets fan out over all
equal-cost paths, so a blackhole makes exactly the affected subflow(s)
disappear: the destination TIB holds per-path records for every path except
the blackholed one(s).

PathDump's diagnosis, driven by the sender's POOR_PERF/timeout alarm:

1. retrieve every TIB record of the flow from the destination agent;
2. compare the observed paths against the expected equal-cost path set (the
   controller knows the topology);
3. the missing path(s) contain the culprit; switches that also appear on
   *observed* (healthy) paths are exonerated, and when several subflows are
   affected the intersection of the missing paths narrows the set further.

The paper's numbers on a 4-ary fat-tree: an aggregate-core blackhole leaves
3 candidate switches (instead of the 10 switches on all four paths); a
ToR-aggregate blackhole in the source pod affects two subflows whose joined
paths share 4 switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.alarms import BLACKHOLE_SUSPECTED, POOR_PERF, Alarm
from repro.core.cluster import QueryCluster
from repro.network.faults import FaultInjector
from repro.network.packet import FlowId
from repro.network.routing import POLICY_SPRAY, RoutingFabric
from repro.topology.fattree import FatTreeTopology
from repro.topology.graph import Topology
from repro.transport.flows import FlowLevelSimulator
from repro.workloads.arrivals import FlowGenerator
from repro.workloads.websearch import web_search_cdf


@dataclass
class BlackholeDiagnosis:
    """Result of diagnosing one suspected blackhole.

    Attributes:
        flow_id: the affected flow.
        expected_paths: equal-cost paths the sprayed flow should have used.
        observed_paths: paths recorded in the destination TIB.
        missing_paths: expected paths with no TIB record (the impacted
            subflows).
        candidate_switches: switches shared by every missing path (the
            "common switches" the paper reports for multi-subflow cases).
        prioritized_switches: candidates that do not appear on any observed
            path - the strongest suspects, checked first.
        search_space_reduction: ratio of total switches on all expected paths
            to the prioritized candidate count.
    """

    flow_id: FlowId
    expected_paths: List[Tuple[str, ...]] = field(default_factory=list)
    observed_paths: List[Tuple[str, ...]] = field(default_factory=list)
    missing_paths: List[Tuple[str, ...]] = field(default_factory=list)
    candidate_switches: Set[str] = field(default_factory=set)
    prioritized_switches: Set[str] = field(default_factory=set)

    @property
    def impacted_subflows(self) -> int:
        """Number of subflows whose packets never arrived."""
        return len(self.missing_paths)

    @property
    def total_switches_on_paths(self) -> int:
        """Total distinct switches across all expected paths."""
        switches: Set[str] = set()
        for path in self.expected_paths:
            switches.update(_switches_only(path))
        return len(switches)

    @property
    def search_space_reduction(self) -> float:
        """How much smaller the suspect set is than the full path set."""
        if not self.prioritized_switches:
            return 1.0
        return self.total_switches_on_paths / len(self.prioritized_switches)


def _switches_only(path: Sequence[str]) -> List[str]:
    """Drop the end hosts from a path."""
    return [n for n in path if not (n.startswith("h-")
                                    or n.startswith("vh-"))]


class BlackholeDiagnoser:
    """Controller application narrowing down silent blackholes.

    Args:
        cluster: the agent cluster (for destination TIB queries).
        topo: the topology (for the expected equal-cost path set).
    """

    def __init__(self, cluster: QueryCluster, topo: Topology) -> None:
        self.cluster = cluster
        self.topo = topo
        self.diagnoses: List[BlackholeDiagnosis] = []

    def on_alarm(self, alarm: Alarm) -> Optional[BlackholeDiagnosis]:
        """Handle a POOR_PERF alarm by checking for missing subflows."""
        if alarm.reason != POOR_PERF:
            return None
        return self.diagnose(alarm.flow_id)

    def diagnose(self, flow_id: FlowId) -> BlackholeDiagnosis:
        """Diagnose one flow: compare expected vs observed subflow paths."""
        expected = [tuple(p) for p in self.topo.all_shortest_paths(
            flow_id.src_ip, flow_id.dst_ip)]
        agent = self.cluster.agents.get(flow_id.dst_ip)
        observed = []
        if agent is not None:
            observed = [tuple(p) for p in agent.get_paths(flow_id,
                                                          include_live=True)]
        observed_set = set(observed)
        missing = [p for p in expected if p not in observed_set]

        diagnosis = BlackholeDiagnosis(flow_id=flow_id,
                                       expected_paths=expected,
                                       observed_paths=observed,
                                       missing_paths=missing)
        if missing:
            common: Set[str] = set(_switches_only(missing[0]))
            for path in missing[1:]:
                common &= set(_switches_only(path))
            observed_switches: Set[str] = set()
            for path in observed:
                observed_switches.update(_switches_only(path))
            diagnosis.candidate_switches = common
            diagnosis.prioritized_switches = common - observed_switches
            agent_src = self.cluster.agents.get(flow_id.src_ip)
            if agent_src is not None:
                agent_src.alarm(flow_id, BLACKHOLE_SUSPECTED,
                                missing,
                                detail=f"candidates="
                                       f"{sorted(diagnosis.prioritized_switches)}")
        self.diagnoses.append(diagnosis)
        return diagnosis


@dataclass
class BlackholeExperimentResult:
    """Outcome of one Section 4.4 scenario."""

    scenario: str
    diagnosis: BlackholeDiagnosis
    blackholed_interface: Tuple[str, str]
    alarm_raised: bool

    @property
    def culprit_covered(self) -> bool:
        """Whether the blackholed interface's switches are in the candidates."""
        return bool(set(self.blackholed_interface)
                    & self.diagnosis.candidate_switches)


def run_blackhole_experiment(*, scenario: str = "agg-core", k: int = 4,
                             flow_size: int = 100_000, seed: int = 0,
                             background_flows: int = 200,
                             mode: str = "serial",
                             retention=None
                             ) -> BlackholeExperimentResult:
    """Reproduce the Section 4.4 blackhole scenarios.

    Args:
        scenario: ``"agg-core"`` (blackhole on an aggregate-core link) or
            ``"tor-agg"`` (blackhole on a ToR-aggregate link in the source
            pod).
        k: fat-tree arity.
        flow_size: size of the sprayed probe flow (the paper uses 100 KB).
        seed: RNG seed.
        background_flows: number of background web-search flows creating
            noise in the TIBs.
        mode: cluster execution mode; with ``"process"`` the sender's
            POOR_PERF alarm is raised by the agent-server worker's monitor
            and travels over the wire protocol before the diagnoser sees
            it.
        retention: optional hot-tier bounds for every TIB (two-tier mode);
            the diagnosis is tier-transparent - queries span the archive,
            so a capped deployment reaches the same verdict.
    """
    if scenario not in ("agg-core", "tor-agg"):
        raise ValueError("scenario must be 'agg-core' or 'tor-agg'")
    topo = FatTreeTopology(k)
    routing = RoutingFabric(topo, policy=POLICY_SPRAY)
    cluster = QueryCluster(topo, mode=mode, retention=retention)
    try:
        return _run_blackhole(cluster, topo, routing, scenario=scenario,
                              flow_size=flow_size, seed=seed,
                              background_flows=background_flows)
    finally:
        cluster.close()


def _run_blackhole(cluster: QueryCluster, topo: FatTreeTopology,
                   routing: RoutingFabric, *, scenario: str, flow_size: int,
                   seed: int, background_flows: int
                   ) -> BlackholeExperimentResult:
    injector = FaultInjector(topo, routing, seed=seed)
    simulator = FlowLevelSimulator(topo, routing, seed=seed + 1)

    src = topo.host_name(0, 0, 0)
    dst = topo.host_name(2, 0, 0)
    src_tor = topo.tor_of(src)
    src_agg = topo.agg_name(0, 0)

    if scenario == "agg-core":
        core = sorted(topo.cores_for_agg(src_agg))[0]
        blackholed = (src_agg, core)
    else:
        blackholed = (src_tor, src_agg)
    injector.blackhole(*blackholed)

    # Background traffic (noise), as in the paper.
    generator = FlowGenerator(topo.hosts, size_cdf=web_search_cdf(),
                              seed=seed + 2)
    background = generator.poisson_all_to_all(duration=1.0, load=0.2,
                                              link_capacity_bps=1e9)
    background = background[:background_flows]
    cluster.ingest_flow_outcomes(simulator.simulate(background))

    # The probe flow, sprayed over all equal-cost paths.
    probe = generator.single_flow(src, dst, size=flow_size)
    outcome = simulator.simulate_flow(probe, policy=POLICY_SPRAY)
    cluster.ingest_flow_outcomes([outcome])

    # The sender's monitor raises the alarm (timeout on the dead subflow);
    # the diagnoser reacts to it.
    diagnoser = BlackholeDiagnoser(cluster, topo)
    cluster.alarm_bus.subscribe(diagnoser.on_alarm, reason=POOR_PERF)
    alarms = cluster.run_monitors(now=1.0)
    alarm_raised = any(a.flow_id == probe.flow_id for a in alarms)
    probe_diagnoses = [d for d in diagnoser.diagnoses
                       if d.flow_id == probe.flow_id]
    diagnosis = (probe_diagnoses[-1] if probe_diagnoses
                 else diagnoser.diagnose(probe.flow_id))
    return BlackholeExperimentResult(scenario=scenario, diagnosis=diagnosis,
                                     blackholed_interface=blackholed,
                                     alarm_raised=alarm_raised)
