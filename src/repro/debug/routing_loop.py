"""Real-time routing-loop detection (Section 4.5, Figure 9).

A packet caught in a forwarding loop keeps crossing CherryPick sampling
points, so it keeps accumulating VLAN tags; as soon as it carries three, the
next switch's ASIC cannot parse past the tag stack, the forwarding lookup
misses and the packet is punted to the controller.  The controller then

* declares a loop immediately if the carried link IDs contain a repetition
  (a 4-hop loop is caught this way in one round, ~47 ms in the paper);
* otherwise stores the tags, strips them, and re-injects the packet at the
  punting switch; a looping packet returns with fresh tags whose IDs overlap
  the stored ones, which proves the loop regardless of its size (the 6-hop
  loop takes ~115 ms in the paper).

:class:`RoutingLoopDetector` wraps the controller's trap handling;
:func:`run_routing_loop_experiment` builds the misconfiguration scenarios on
a fat-tree and measures the detection latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.alarms import LOOP_DETECTED
from repro.core.cluster import QueryCluster
from repro.core.controller import PathDumpController
from repro.network.faults import FaultInjector
from repro.network.packet import Packet, make_tcp_packet
from repro.network.routing import RoutingFabric
from repro.network.simulator import OUTCOME_PUNTED, Fabric
from repro.topology.fattree import FatTreeTopology
from repro.tracing.trap import TrapVerdict


@dataclass
class LoopExperimentResult:
    """Outcome of one routing-loop scenario.

    Attributes:
        loop_size: nominal number of switches in the injected loop.
        detected: whether the controller declared a loop.
        detection_latency_s: time from packet injection to the loop verdict.
        rounds: number of strip-and-re-inject rounds the controller needed.
        repeated_link_id: the link identifier whose repetition proved the loop.
        verdict: the raw trap verdict.
    """

    loop_size: int
    detected: bool
    detection_latency_s: float
    rounds: int
    repeated_link_id: Optional[int]
    verdict: Optional[TrapVerdict] = None


class RoutingLoopDetector:
    """Controller application counting detected loops."""

    def __init__(self, controller: PathDumpController) -> None:
        self.controller = controller
        self.loops: List[TrapVerdict] = []
        controller.on_alarm(self._on_alarm, reason=LOOP_DETECTED)

    def _on_alarm(self, alarm) -> None:
        if self.controller.trap_verdicts:
            self.loops.append(self.controller.trap_verdicts[-1])

    @property
    def loops_detected(self) -> int:
        """Number of loops detected so far."""
        return len(self.loops)


def build_small_loop(topo: FatTreeTopology, routing: RoutingFabric,
                     injector: FaultInjector, src_host: str,
                     dst_host: str) -> List[str]:
    """Create a 2-switch loop: the destination pod's aggregate bounces back up.

    The aggregate switch of the destination pod is misconfigured to forward
    the destination's traffic up to a core switch; that core's only route to
    the destination goes straight back through the same aggregate, so the
    packet ping-pongs between the two.  (The source ToR is steered towards
    the matching core group so the packet deterministically meets the loop.)
    Because the core switch samples its ingress link on every pass, the
    repetition shows up within the first trapped packet - the analogue of the
    paper's quickly-detected 4-hop loop.

    Returns:
        The switches involved in the loop.
    """
    src_pod = topo.node(src_host).pod
    dst_pod = topo.node(dst_host).pod
    agg = topo.agg_name(dst_pod, 0)
    core = sorted(topo.cores_for_agg(agg))[0]
    # Steer the packet into core group 0 so it reaches the misconfigured
    # aggregate switch.
    injector.misconfigure_route(topo.tor_of(src_host), dst_host,
                                topo.agg_name(src_pod, 0))
    injector.misconfigure_route(agg, dst_host, core)
    return [agg, core]


def build_large_loop(topo: FatTreeTopology, routing: RoutingFabric,
                     injector: FaultInjector, src_host: str,
                     dst_host: str) -> List[str]:
    """Create a 4-switch loop inside the source pod (ToR/aggregate cycle).

    Both ToRs and both aggregates of the source pod are misconfigured so that
    traffic to the destination circulates ToR0 -> Agg0 -> ToR1 -> Agg1 ->
    ToR0.  The first trapped packet carries three *distinct* link IDs, so the
    controller needs a second round (store, strip, re-inject, compare) to
    prove the loop - the analogue of the paper's 6-hop loop, which exercises
    the "loops of any size" detection path.

    Returns:
        The switches involved in the loop.
    """
    src_pod = topo.node(src_host).pod
    tor0 = topo.tor_name(src_pod, 0)
    tor1 = topo.tor_name(src_pod, 1)
    agg0 = topo.agg_name(src_pod, 0)
    agg1 = topo.agg_name(src_pod, 1)
    injector.misconfigure_route(tor0, dst_host, agg0)
    injector.misconfigure_route(agg0, dst_host, tor1)
    injector.misconfigure_route(tor1, dst_host, agg1)
    injector.misconfigure_route(agg1, dst_host, tor0)
    return [tor0, agg0, tor1, agg1]


def run_routing_loop_experiment(*, loop: str = "small", k: int = 4,
                                seed: int = 0) -> LoopExperimentResult:
    """Inject a routing loop and measure PathDump's detection latency.

    Args:
        loop: ``"small"`` (repetition visible in the first trapped packet) or
            ``"large"`` (needs one strip-and-re-inject round).
        k: fat-tree arity.
        seed: RNG seed.
    """
    if loop not in ("small", "large"):
        raise ValueError("loop must be 'small' or 'large'")
    topo = FatTreeTopology(k)
    routing = RoutingFabric(topo)
    fabric = Fabric(topo, routing, seed=seed)
    cluster = QueryCluster(topo, fabric=fabric)
    controller = PathDumpController(cluster, fabric)
    detector = RoutingLoopDetector(controller)
    injector = FaultInjector(topo, routing, seed=seed)

    src = topo.host_name(0, 0, 1)
    dst = topo.host_name(k - 1, 1, 0)
    if loop == "small":
        switches = build_small_loop(topo, routing, injector, src, dst)
    else:
        switches = build_large_loop(topo, routing, injector, src, dst)

    packet = make_tcp_packet(src, dst, size=512)
    result = fabric.inject(packet, src)
    if result.outcome != OUTCOME_PUNTED:
        return LoopExperimentResult(loop_size=len(switches), detected=False,
                                    detection_latency_s=float("inf"),
                                    rounds=0, repeated_link_id=None)

    verdict = controller.handle_trapped_packet(result.punt_switch,
                                               result.packet,
                                               result.latency)
    latency = result.latency + verdict.elapsed
    return LoopExperimentResult(
        loop_size=len(switches), detected=verdict.is_loop,
        detection_latency_s=latency, rounds=verdict.rounds,
        repeated_link_id=verdict.repeated_link_id, verdict=verdict)
