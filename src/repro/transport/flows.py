"""Flow-level (statistical) traffic simulation.

The silent-drop and blackhole experiments run hundreds of thousands of flows
of web-search background traffic for minutes of simulated time; injecting
every packet through the hop-by-hop simulator would be needlessly slow.  This
module provides a flow-level alternative that preserves exactly the
observables PathDump consumes:

* the path(s) taken by each flow's packets (per the ECMP hash or packet
  spraying over the equal-cost paths),
* per-path packet/byte counts delivered to the destination TIB,
* the number of (first-attempt) retransmissions implied by the per-link loss
  probabilities along the path, sampled binomially,
* whether the flow stalls entirely (blackholed subflow),
* flow start/finish times under a simple bandwidth/RTT completion model.

A small ``ambient_loss`` models congestion drops on healthy links; it is what
creates the false failure signatures that make the MAX-COVERAGE precision
curves of Figure 7 start below 1.0, as in the paper.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.packet import DEFAULT_MSS, FlowId
from repro.network.routing import POLICY_ECMP, POLICY_SPRAY, RoutingFabric
from repro.topology.graph import Topology
from repro.workloads.arrivals import FlowSpec

#: Nominal round-trip time used by the completion-time model (seconds).
NOMINAL_RTT_S = 250e-6

#: Retransmission timeout charged per timeout event (seconds).
NOMINAL_RTO_S = 0.2

#: Fraction of the access-link capacity a single flow can sustain.
PER_FLOW_BANDWIDTH_SHARE = 0.6


@dataclass
class PathDelivery:
    """Delivery statistics of one flow along one concrete path."""

    path: Tuple[str, ...]
    packets_sent: int
    packets_delivered: int
    bytes_delivered: int
    drops: int


@dataclass
class FlowOutcome:
    """Flow-level simulation result for one flow.

    Attributes:
        spec: the simulated flow.
        deliveries: per-path delivery records (one entry for ECMP, one per
            equal-cost path used for packet spraying).
        retransmissions: total first-attempt packet losses (each implies a
            retransmission by the sender).
        max_consecutive_retransmissions: estimated worst retransmission
            streak; large when a subflow is blackholed.
        timeouts: estimated retransmission timeouts.
        completed: whether every byte was eventually delivered.
        start_time: flow arrival time.
        finish_time: completion time (``None`` for stalled flows).
        drop_links: ground-truth directed links where this flow lost packets.
    """

    spec: FlowSpec
    deliveries: List[PathDelivery] = field(default_factory=list)
    retransmissions: int = 0
    max_consecutive_retransmissions: int = 0
    timeouts: int = 0
    completed: bool = True
    start_time: float = 0.0
    finish_time: Optional[float] = None
    drop_links: Counter = field(default_factory=Counter)

    @property
    def flow_id(self) -> FlowId:
        """The flow's 5-tuple."""
        return self.spec.flow_id

    @property
    def bytes_delivered(self) -> int:
        """Total bytes delivered over all paths."""
        return sum(d.bytes_delivered for d in self.deliveries)

    @property
    def throughput_bps(self) -> float:
        """Achieved goodput (bits/s); zero for stalled flows."""
        if self.finish_time is None or self.finish_time <= self.start_time:
            return 0.0
        return self.bytes_delivered * 8.0 / (self.finish_time
                                             - self.start_time)

    def paths(self) -> List[Tuple[str, ...]]:
        """The concrete paths used by this flow."""
        return [d.path for d in self.deliveries]


class FlowLevelSimulator:
    """Simulates flows statistically over a topology with faults.

    Args:
        topo: the topology (its links carry the fault state).
        routing: routing tables (ECMP hashing uses the same salted hash as
            the packet-level fabric, so both agree on paths).
        seed: RNG seed for binomial loss sampling and spraying splits.
        ambient_loss: per-link congestion-loss probability applied on top of
            configured faults (healthy links only).
        mss: segment size used to convert bytes to packets.
        link_capacity_bps: access-link capacity for the completion model.
    """

    def __init__(self, topo: Topology, routing: Optional[RoutingFabric] = None,
                 seed: int = 0, ambient_loss: float = 0.0,
                 mss: int = DEFAULT_MSS,
                 link_capacity_bps: float = 10e9) -> None:
        self.topo = topo
        self.routing = routing or RoutingFabric(topo)
        self.rng = random.Random(seed)
        self.ambient_loss = ambient_loss
        self.mss = mss
        self.link_capacity_bps = link_capacity_bps

    # ----------------------------------------------------------------- paths
    def ecmp_path(self, flow_id: FlowId) -> List[str]:
        """The path ECMP assigns to ``flow_id`` (host-to-host, inclusive).

        The walk uses the same per-switch salted hash as the packet-level
        simulator, honours misconfigured next hops and avoids failed links,
        but is oblivious to silent faults - just like the real data plane.
        """
        src, dst = flow_id.src_ip, flow_id.dst_ip
        path = [src, self.topo.tor_of(src)]
        current = path[-1]
        for _ in range(32):
            if current == dst:
                return path
            table = self.routing.table(current)
            probe = _DummyPacket(flow_id)
            next_hop = table.select(probe, dst, self.rng,
                                    self._is_link_usable)
            if next_hop is None:
                raise RuntimeError(f"no route from {current} to {dst}")
            path.append(next_hop)
            current = next_hop
        raise RuntimeError("routing walk did not terminate (loop?)")

    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """All shortest host-to-host paths (used by packet spraying)."""
        return self.topo.all_shortest_paths(src, dst)

    def _is_link_usable(self, a: str, b: str) -> bool:
        link = self.topo.links.maybe_get(a, b)
        return link is not None and not link.failed

    # ------------------------------------------------------------ simulation
    def simulate_flow(self, spec: FlowSpec, policy: str = POLICY_ECMP,
                      spray_weights: Optional[Sequence[float]] = None
                      ) -> FlowOutcome:
        """Simulate one flow and return its outcome.

        Args:
            spec: the flow.
            policy: ``"ecmp"`` or ``"spray"``.
            spray_weights: optional per-path weights for packet spraying
                (uniform when omitted); used to model biased spraying.
        """
        if policy == POLICY_ECMP:
            paths = [self.ecmp_path(spec.flow_id)]
            packet_split = [max(1, self._segments(spec.size))]
        elif policy == POLICY_SPRAY:
            paths = self.equal_cost_paths(spec.src, spec.dst)
            packet_split = self._spray_split(self._segments(spec.size),
                                             len(paths), spray_weights)
        else:
            raise ValueError(f"unknown policy {policy!r}")

        outcome = FlowOutcome(spec=spec, start_time=spec.start_time)
        total_segments = max(1, self._segments(spec.size))
        delivered_segments = 0
        stalled = False

        for path, segments in zip(paths, packet_split):
            if segments == 0:
                continue
            delivery = self._simulate_path(spec, path, segments, outcome)
            outcome.deliveries.append(delivery)
            delivered_segments += delivery.packets_delivered
            if delivery.packets_delivered == 0 and delivery.packets_sent > 0:
                stalled = True

        outcome.completed = delivered_segments >= total_segments and not stalled
        outcome.finish_time = self._finish_time(spec, outcome)
        if not outcome.completed:
            outcome.max_consecutive_retransmissions = max(
                outcome.max_consecutive_retransmissions, 8)
            outcome.timeouts = max(outcome.timeouts, 3)
            outcome.finish_time = None
        return outcome

    def simulate(self, specs: Sequence[FlowSpec],
                 policy: str = POLICY_ECMP) -> List[FlowOutcome]:
        """Simulate many flows."""
        return [self.simulate_flow(spec, policy) for spec in specs]

    # ------------------------------------------------------------- internals
    def _segments(self, size: int) -> int:
        return max(1, (size + self.mss - 1) // self.mss)

    def _spray_split(self, segments: int, paths: int,
                     weights: Optional[Sequence[float]] = None) -> List[int]:
        """Multinomially split ``segments`` packets over ``paths`` paths.

        ``weights`` bias the split (they need not be normalised); uniform
        spraying when omitted.
        """
        if paths <= 0:
            raise ValueError("packet spraying needs at least one path")
        if weights is not None:
            if len(weights) != paths or any(w < 0 for w in weights):
                raise ValueError("weights must be non-negative, one per path")
            total = sum(weights)
            if total <= 0:
                raise ValueError("weights must not all be zero")
            cumulative = []
            acc = 0.0
            for w in weights:
                acc += w / total
                cumulative.append(acc)
        else:
            cumulative = [(i + 1) / paths for i in range(paths)]
        counts = [0] * paths
        for _ in range(segments):
            u = self.rng.random()
            for index, bound in enumerate(cumulative):
                if u <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        return counts

    def _loss_probability(self, a: str, b: str) -> float:
        link = self.topo.links.get(a, b)
        if link.blackhole or link.failed:
            return 1.0
        loss = link.drop_probability
        if loss == 0.0:
            loss = self.ambient_loss
        return min(1.0, loss)

    def _simulate_path(self, spec: FlowSpec, path: Sequence[str],
                       segments: int, outcome: FlowOutcome) -> PathDelivery:
        """Walk one path link by link, sampling binomial losses."""
        surviving = segments
        drops = 0
        for a, b in zip(path, path[1:]):
            if surviving == 0:
                break
            p = self._loss_probability(a, b)
            if p <= 0.0:
                continue
            if p >= 1.0:
                lost = surviving
            else:
                lost = self._binomial(surviving, p)
            if lost > 0:
                outcome.drop_links[(a, b)] += lost
                drops += lost
                surviving -= lost
        delivered = surviving
        # First-attempt losses all become retransmissions; unless the path is
        # dead the retransmitted packets eventually get through, so the
        # delivered byte count reflects the full allotment.
        dead = any(self._loss_probability(a, b) >= 1.0
                   for a, b in zip(path, path[1:]))
        outcome.retransmissions += drops
        if drops > 0:
            outcome.max_consecutive_retransmissions = max(
                outcome.max_consecutive_retransmissions,
                1 if not dead else 8)
        if dead:
            delivered_final = 0
        else:
            delivered_final = segments
        bytes_delivered = min(spec.size, delivered_final * self.mss)
        return PathDelivery(path=tuple(path), packets_sent=segments,
                            packets_delivered=delivered_final,
                            bytes_delivered=bytes_delivered, drops=drops)

    def _binomial(self, n: int, p: float) -> int:
        """Sample Binomial(n, p) without pulling in numpy's global RNG."""
        if n <= 0 or p <= 0.0:
            return 0
        if p >= 1.0:
            return n
        # For small n use direct Bernoulli trials; for large n a normal
        # approximation keeps the simulation fast and is accurate enough for
        # the aggregate statistics the experiments consume.
        if n <= 64:
            return sum(1 for _ in range(n) if self.rng.random() < p)
        mean = n * p
        std = math.sqrt(n * p * (1.0 - p))
        value = int(round(self.rng.gauss(mean, std)))
        return min(n, max(0, value))

    def _finish_time(self, spec: FlowSpec, outcome: FlowOutcome
                     ) -> Optional[float]:
        """Simple completion-time model: bandwidth share + loss penalties."""
        bandwidth = self.link_capacity_bps * PER_FLOW_BANDWIDTH_SHARE
        transfer = spec.size * 8.0 / bandwidth
        rtts = max(1, int(math.log2(max(2, self._segments(spec.size)))))
        penalty = outcome.timeouts * NOMINAL_RTO_S \
            + outcome.retransmissions * NOMINAL_RTT_S
        return spec.start_time + transfer + rtts * NOMINAL_RTT_S + penalty


class _DummyPacket:
    """Minimal stand-in exposing the attributes routing selection reads."""

    def __init__(self, flow_id: FlowId) -> None:
        self.flow = flow_id
        self.vlan_stack: List = []
        self.dscp = None

    @property
    def vlan_count(self) -> int:
        return 0
