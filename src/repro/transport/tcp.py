"""Packet-level TCP flow model.

PathDump's active monitoring module watches TCP retransmissions at the end
hosts (via ``tcpretrans`` in the original system) and raises alerts for flows
that keep retransmitting; several debugging applications (silent drop
localization, blackhole diagnosis, outcast diagnosis) are driven entirely by
those alerts plus the per-path statistics recorded in the TIB.

This module provides a deliberately simple windowed TCP sender that injects
real packets into the simulated fabric, so that:

* every delivered packet flows through the destination's edge stack and
  updates its trajectory memory / TIB exactly as in the real system;
* every drop produces a retransmission that the sender-side monitor can see;
* blackholed subflows stall and produce timeout streaks, matching the
  "consecutive retransmissions" signal the paper's monitor keys on.

The model is not meant to reproduce TCP dynamics faithfully (no SACK, no
delayed ACKs); it reproduces the *observables* PathDump consumes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.packet import DEFAULT_MSS, FlowId, Packet, TcpFlags
from repro.network.simulator import Fabric
from repro.workloads.arrivals import FlowSpec

#: Default initial congestion window, in segments.
INITIAL_CWND = 10

#: Default minimum retransmission timeout (the paper's monitor interval of
#: 200 ms is chosen as "default TCP timeout value").
DEFAULT_RTO_S = 0.2

#: Additive-increase amount per delivered window, in segments.
AI_SEGMENTS = 1

#: Number of consecutive failed retransmissions of the same segment after
#: which the sender gives up (models an application-level abort).
MAX_SEGMENT_RETRIES = 8


@dataclass
class TcpTransferResult:
    """Observable outcome of one TCP transfer.

    Attributes:
        flow_id: the 5-tuple.
        size: requested bytes.
        bytes_delivered: bytes acknowledged by the receiver.
        packets_sent: total packets injected (including retransmissions).
        packets_delivered: packets that reached the destination host.
        retransmissions: total retransmitted packets.
        max_consecutive_retransmissions: worst streak of consecutive
            retransmissions of any single segment - the signal
            ``getPoorTCPFlows`` thresholds on.
        timeouts: number of whole-window timeouts.
        start_time: flow start (simulated seconds).
        completion_time: time the last byte was delivered (``None`` when the
            flow aborted, e.g. every path blackholed).
        completed: whether all bytes were delivered.
        per_path_delivery: switch-path tuple -> (packets, bytes) delivered
            along that exact path (ground truth; the TIB learns the same
            thing from the embedded trajectories).
        drop_links: directed links on which this flow lost packets, with
            counts (ground truth used to validate localization results).
    """

    flow_id: FlowId
    size: int
    bytes_delivered: int = 0
    packets_sent: int = 0
    packets_delivered: int = 0
    retransmissions: int = 0
    max_consecutive_retransmissions: int = 0
    timeouts: int = 0
    start_time: float = 0.0
    completion_time: Optional[float] = None
    completed: bool = False
    per_path_delivery: Dict[Tuple[str, ...], Tuple[int, int]] = field(
        default_factory=dict)
    drop_links: Counter = field(default_factory=Counter)

    @property
    def duration(self) -> Optional[float]:
        """Transfer duration in seconds (``None`` if it never completed)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time

    @property
    def throughput_bps(self) -> float:
        """Achieved goodput in bits per second (0 for stalled flows)."""
        duration = self.duration
        if not duration or duration <= 0:
            return 0.0
        return self.bytes_delivered * 8.0 / duration

    @property
    def is_poor(self) -> bool:
        """Heuristic used by tests: the flow struggled noticeably."""
        return (not self.completed or self.timeouts > 0
                or self.max_consecutive_retransmissions >= 2)


class TcpSender:
    """A windowed TCP sender transferring one flow through the fabric.

    Args:
        fabric: the simulated fabric.
        spec: the flow to transfer.
        mss: segment payload size in bytes.
        initial_cwnd: initial congestion window in segments.
        rto: retransmission timeout in seconds.
        rtt_estimate: nominal round-trip time used to pace windows; measured
            per-packet latencies are added on top of it.
    """

    def __init__(self, fabric: Fabric, spec: FlowSpec, *,
                 mss: int = DEFAULT_MSS, initial_cwnd: int = INITIAL_CWND,
                 rto: float = DEFAULT_RTO_S,
                 rtt_estimate: float = 250e-6) -> None:
        self.fabric = fabric
        self.spec = spec
        self.mss = mss
        self.initial_cwnd = initial_cwnd
        self.rto = rto
        self.rtt_estimate = rtt_estimate

    # ------------------------------------------------------------------ run
    def run(self, max_rounds: int = 10_000) -> TcpTransferResult:
        """Transfer the flow and return its observables.

        The sender transmits in rounds: up to ``cwnd`` outstanding segments
        per round, one simulated RTT per round (plus an RTO on timeout).
        Lost segments are retransmitted in the next round; a segment lost
        :data:`MAX_SEGMENT_RETRIES` times in a row aborts the transfer
        (which is how a fully blackholed path manifests).
        """
        spec = self.spec
        total_segments = max(1, (spec.size + self.mss - 1) // self.mss)
        result = TcpTransferResult(flow_id=spec.flow_id, size=spec.size,
                                   start_time=spec.start_time)
        per_path: Dict[Tuple[str, ...], List[int]] = defaultdict(
            lambda: [0, 0])

        now = spec.start_time
        cwnd = float(self.initial_cwnd)
        next_new_segment = 0
        pending_retransmit: List[int] = []
        retry_streak: Dict[int, int] = defaultdict(int)
        delivered_segments = 0
        current_streak = 0

        for _ in range(max_rounds):
            if delivered_segments >= total_segments:
                break
            window: List[Tuple[int, bool]] = []
            budget = max(1, int(cwnd))
            while pending_retransmit and len(window) < budget:
                window.append((pending_retransmit.pop(0), True))
            while (next_new_segment < total_segments
                   and len(window) < budget):
                window.append((next_new_segment, False))
                next_new_segment += 1
            if not window:
                break

            lost_this_round: List[int] = []
            max_latency = 0.0
            for seg, is_retx in window:
                seg_bytes = min(self.mss, spec.size - seg * self.mss)
                packet = Packet(
                    flow=spec.flow_id, size=max(seg_bytes, 1), seq=seg,
                    flags=TcpFlags(ack=True,
                                   fin=(seg == total_segments - 1)),
                    retransmission=is_retx)
                outcome = self.fabric.inject(packet, spec.src, at_time=now)
                result.packets_sent += 1
                if is_retx:
                    result.retransmissions += 1
                    current_streak += 1
                    result.max_consecutive_retransmissions = max(
                        result.max_consecutive_retransmissions,
                        current_streak)
                max_latency = max(max_latency, outcome.latency)
                if outcome.delivered:
                    delivered_segments += 1
                    result.packets_delivered += 1
                    result.bytes_delivered += max(seg_bytes, 1)
                    retry_streak.pop(seg, None)
                    if not is_retx:
                        current_streak = 0
                    key = tuple(outcome.switch_path)
                    per_path[key][0] += 1
                    per_path[key][1] += max(seg_bytes, 1)
                else:
                    lost_this_round.append(seg)
                    retry_streak[seg] += 1
                    if outcome.drop_link is not None:
                        result.drop_links[outcome.drop_link] += 1

            abandoned = [seg for seg in lost_this_round
                         if retry_streak[seg] > MAX_SEGMENT_RETRIES]
            if abandoned:
                now += self.rto
                break
            pending_retransmit.extend(lost_this_round)

            if lost_this_round:
                whole_window_lost = len(lost_this_round) == len(window)
                if whole_window_lost:
                    result.timeouts += 1
                    now += self.rto
                else:
                    now += max(self.rtt_estimate, 2 * max_latency)
                cwnd = max(1.0, cwnd / 2.0)
            else:
                now += max(self.rtt_estimate, 2 * max_latency)
                cwnd += AI_SEGMENTS

        result.per_path_delivery = {k: (v[0], v[1])
                                    for k, v in per_path.items()}
        result.completed = delivered_segments >= total_segments
        if result.completed:
            result.completion_time = now
        return result


def run_flows(fabric: Fabric, specs: List[FlowSpec],
              **sender_kwargs) -> List[TcpTransferResult]:
    """Run a list of flows sequentially and return their results.

    The flows share the fabric (and therefore the destination TIBs) but are
    simulated one at a time; congestion coupling between flows is modelled
    only where an experiment needs it (see
    :mod:`repro.transport.contention`).
    """
    return [TcpSender(fabric, spec, **sender_kwargs).run() for spec in specs]
