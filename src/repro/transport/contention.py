"""Shared-output-port contention models (TCP incast and outcast).

Section 4.6 diagnoses the *TCP outcast* problem [Prakash et al., NSDI'12]:
when flows arriving on two different input ports of a switch compete for one
output port, taildrop queues exhibit "port blackout" - consecutive losses hit
the input port carrying *fewer* flows, so the sender closest to the receiver
(one flow on its own port) is starved even though fair sharing should favour
it.  TCP incast [Chen et al.] is the related many-to-one collapse.

PathDump does not need a queue-accurate model; its diagnosis works from the
per-sender throughputs and paths recorded in the receiver's TIB plus the
retransmission alerts from the senders.  This module produces those
observables with a compact analytical model of port blackout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.network.packet import FlowId

#: Fraction of its fair share the outcast flow retains under port blackout.
#: Prakash et al. report roughly an order-of-magnitude unfairness; the exact
#: figure depends on queue sizes, so this is a calibration constant.
OUTCAST_PENALTY = 0.12

#: Retransmissions per second experienced by the outcast flow (each burst of
#: port blackout drops a window); used to drive the monitoring alerts.
OUTCAST_RETX_RATE_PER_S = 25.0

#: Retransmissions per second for the non-outcast flows (mild congestion).
BACKGROUND_RETX_RATE_PER_S = 2.0


@dataclass
class ContendingFlow:
    """One flow competing for the shared output port.

    Attributes:
        flow_id: the flow's 5-tuple.
        input_port_group: label of the input port the flow arrives on at the
            contention switch (flows sharing a label share that port).
        path: the switch-level path the flow takes (recorded in the TIB).
    """

    flow_id: FlowId
    input_port_group: str
    path: Tuple[str, ...]


@dataclass
class ContentionResult:
    """Per-flow outcome of the contention model."""

    flow_id: FlowId
    throughput_bps: float
    retransmissions: int
    max_consecutive_retransmissions: int
    bytes_delivered: int
    input_port_group: str
    path: Tuple[str, ...]

    @property
    def is_outcast(self) -> bool:
        """Whether this flow was the port-blackout victim."""
        return self.max_consecutive_retransmissions >= 3


def simulate_port_blackout(flows: Sequence[ContendingFlow],
                           capacity_bps: float, duration_s: float,
                           seed: int = 0,
                           penalty: float = OUTCAST_PENALTY
                           ) -> List[ContentionResult]:
    """Model port blackout on one shared output port.

    The input port carrying the fewest flows is the blackout victim: its
    flows retain only ``penalty`` of their fair share, while the remaining
    capacity is (approximately) fairly shared by the other port's flows.

    Args:
        flows: the competing flows with their input-port grouping.
        capacity_bps: capacity of the shared output port.
        duration_s: length of the experiment.
        seed: RNG seed for the small per-flow jitter.
        penalty: throughput multiplier applied to the victim flows.

    Returns:
        Per-flow results, in the same order as ``flows``.
    """
    if not flows:
        return []
    if duration_s <= 0 or capacity_bps <= 0:
        raise ValueError("capacity and duration must be positive")
    rng = random.Random(seed)

    groups: Dict[str, List[ContendingFlow]] = {}
    for flow in flows:
        groups.setdefault(flow.input_port_group, []).append(flow)
    if len(groups) < 2:
        # No inter-port contention: plain fair sharing with jitter.
        victims: set = set()
    else:
        victim_group = min(groups, key=lambda g: (len(groups[g]), g))
        victims = {f.flow_id for f in groups[victim_group]}

    fair_share = capacity_bps / len(flows)
    n_victims = sum(1 for f in flows if f.flow_id in victims)
    surplus = fair_share * (1.0 - penalty) * n_victims
    n_others = len(flows) - n_victims
    bonus = surplus / n_others if n_others else 0.0

    results: List[ContentionResult] = []
    for flow in flows:
        if flow.flow_id in victims and len(groups) >= 2:
            rate = fair_share * penalty
            retx = int(OUTCAST_RETX_RATE_PER_S * duration_s)
            streak = 4 + rng.randrange(3)
        else:
            rate = fair_share + bonus
            retx = int(BACKGROUND_RETX_RATE_PER_S * duration_s)
            streak = 1
        rate *= rng.uniform(0.9, 1.1)
        results.append(ContentionResult(
            flow_id=flow.flow_id,
            throughput_bps=rate,
            retransmissions=retx,
            max_consecutive_retransmissions=streak,
            bytes_delivered=int(rate * duration_s / 8.0),
            input_port_group=flow.input_port_group,
            path=flow.path))
    return results


def simulate_incast(flows: Sequence[ContendingFlow], capacity_bps: float,
                    duration_s: float, seed: int = 0,
                    collapse_threshold: int = 8) -> List[ContentionResult]:
    """Model TCP incast throughput collapse on one output port.

    Beyond ``collapse_threshold`` synchronised senders, the aggregate goodput
    collapses because of repeated synchronized timeouts; every flow suffers
    roughly equally (unlike outcast, where one flow is singled out).
    """
    if not flows:
        return []
    rng = random.Random(seed)
    n = len(flows)
    if n <= collapse_threshold:
        efficiency = 0.95
        retx_rate = BACKGROUND_RETX_RATE_PER_S
        streak = 1
    else:
        efficiency = max(0.2, 0.95 - 0.05 * (n - collapse_threshold))
        retx_rate = OUTCAST_RETX_RATE_PER_S / 2
        streak = 3
    share = capacity_bps * efficiency / n
    results = []
    for flow in flows:
        rate = share * rng.uniform(0.85, 1.15)
        results.append(ContentionResult(
            flow_id=flow.flow_id, throughput_bps=rate,
            retransmissions=int(retx_rate * duration_s),
            max_consecutive_retransmissions=streak,
            bytes_delivered=int(rate * duration_s / 8.0),
            input_port_group=flow.input_port_group, path=flow.path))
    return results
