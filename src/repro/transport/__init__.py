"""TCP flow models: packet-level, flow-level (statistical) and contention."""

from repro.transport.tcp import TcpSender, TcpTransferResult, run_flows
from repro.transport.flows import FlowLevelSimulator, FlowOutcome, PathDelivery
from repro.transport.contention import (ContendingFlow, ContentionResult,
                                         simulate_incast,
                                         simulate_port_blackout)

__all__ = [
    "TcpSender", "TcpTransferResult", "run_flows",
    "FlowLevelSimulator", "FlowOutcome", "PathDelivery",
    "ContendingFlow", "ContentionResult", "simulate_incast",
    "simulate_port_blackout",
]
