"""Datacenter topologies (fat-tree, VL2) and CherryPick link ID assignment."""

from repro.topology.graph import (NodeInfo, Topology, ROLE_AGGREGATE,
                                  ROLE_CORE, ROLE_EDGE, ROLE_HOST)
from repro.topology.fattree import FatTreeTopology
from repro.topology.vl2 import Vl2Topology
from repro.topology.linkid import (LinkIdAssignment, apply_assignment,
                                   assign_fattree_link_ids,
                                   assign_generic_link_ids, assign_link_ids,
                                   assign_vl2_link_ids, cable,
                                   edge_color_bipartite)

__all__ = [
    "NodeInfo", "Topology", "ROLE_AGGREGATE", "ROLE_CORE", "ROLE_EDGE",
    "ROLE_HOST", "FatTreeTopology", "Vl2Topology",
    "LinkIdAssignment", "apply_assignment", "assign_fattree_link_ids",
    "assign_generic_link_ids", "assign_link_ids", "assign_vl2_link_ids",
    "cable", "edge_color_bipartite",
]
