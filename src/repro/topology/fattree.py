"""k-ary fat-tree topology builder.

The fat-tree is the topology used for every testbed experiment in the paper
(a 4-ary fat-tree for the debugging applications, and the CherryPick encoding
supports fat-trees up to 72-port switches).  The standard construction for an
even ``k``:

* ``k`` pods, each with ``k/2`` edge (ToR) switches and ``k/2`` aggregation
  switches forming a complete bipartite graph inside the pod;
* ``(k/2)^2`` core switches; core switch ``(g, i)`` - group ``g`` in
  ``0..k/2-1``, index ``i`` in ``0..k/2-1`` - connects to the aggregation
  switch with index ``g`` in every pod;
* each edge switch hosts ``k/2`` servers.

Naming scheme (stable and parseable, used throughout tests and examples):

* hosts:      ``h-<pod>-<edge>-<i>``
* edge:       ``tor-<pod>-<i>``
* aggregate:  ``agg-<pod>-<i>``
* core:       ``core-<g>-<i>``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.topology.graph import (ROLE_AGGREGATE, ROLE_CORE, ROLE_EDGE,
                                  Topology)


class FatTreeTopology(Topology):
    """A ``k``-ary fat-tree with ``k^3/4`` hosts.

    Args:
        k: switch port count; must be even and >= 2.
        hosts_per_edge: number of servers attached to each ToR; defaults to
            the canonical ``k/2``.  The query-scalability experiments use a
            reduced host count to keep simulation tractable while preserving
            the switching structure.
    """

    def __init__(self, k: int = 4, hosts_per_edge: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        if k < 2 or k % 2 != 0:
            raise ValueError("fat-tree arity k must be an even integer >= 2")
        super().__init__(name or f"fattree-k{k}")
        self.k = k
        self.half = k // 2
        self.hosts_per_edge = self.half if hosts_per_edge is None else hosts_per_edge
        if self.hosts_per_edge < 1:
            raise ValueError("hosts_per_edge must be >= 1")
        self._build()

    # ---------------------------------------------------------------- build
    def _build(self) -> None:
        k, half = self.k, self.half
        # Core switches: (k/2)^2, organised in k/2 groups of k/2.
        for g in range(half):
            for i in range(half):
                self.add_switch(self.core_name(g, i), ROLE_CORE,
                                pod=None, index=g * half + i)
        # Pods.
        for pod in range(k):
            for a in range(half):
                self.add_switch(self.agg_name(pod, a), ROLE_AGGREGATE,
                                pod=pod, index=a)
            for e in range(half):
                self.add_switch(self.tor_name(pod, e), ROLE_EDGE,
                                pod=pod, index=e)
            # Intra-pod complete bipartite edge<->aggregate mesh.
            for e in range(half):
                for a in range(half):
                    self.add_link(self.tor_name(pod, e), self.agg_name(pod, a))
            # Hosts.
            for e in range(half):
                for h in range(self.hosts_per_edge):
                    host = self.host_name(pod, e, h)
                    self.add_host(host, pod=pod, index=h)
                    self.add_link(host, self.tor_name(pod, e))
        # Aggregation <-> core: aggregation switch a of every pod connects to
        # all core switches in group a.
        for pod in range(k):
            for a in range(half):
                for i in range(half):
                    self.add_link(self.agg_name(pod, a), self.core_name(a, i))

    # --------------------------------------------------------------- naming
    @staticmethod
    def host_name(pod: int, edge: int, index: int) -> str:
        """Canonical host name."""
        return f"h-{pod}-{edge}-{index}"

    @staticmethod
    def tor_name(pod: int, index: int) -> str:
        """Canonical ToR (edge) switch name."""
        return f"tor-{pod}-{index}"

    @staticmethod
    def agg_name(pod: int, index: int) -> str:
        """Canonical aggregation switch name."""
        return f"agg-{pod}-{index}"

    @staticmethod
    def core_name(group: int, index: int) -> str:
        """Canonical core switch name."""
        return f"core-{group}-{index}"

    # -------------------------------------------------------------- helpers
    def pods(self) -> List[int]:
        """All pod indices."""
        return list(range(self.k))

    def hosts_in_pod(self, pod: int) -> List[str]:
        """Hosts located in ``pod``."""
        return [h for h in self.hosts if self.node(h).pod == pod]

    def tors_in_pod(self, pod: int) -> List[str]:
        """ToR switches of ``pod``."""
        return [s for s in self.edge_switches() if self.node(s).pod == pod]

    def aggs_in_pod(self, pod: int) -> List[str]:
        """Aggregation switches of ``pod``."""
        return [s for s in self.aggregate_switches()
                if self.node(s).pod == pod]

    def core_group(self, agg: str) -> int:
        """The core group an aggregation switch connects to (its index)."""
        return self.node(agg).index

    def cores_for_agg(self, agg: str) -> List[str]:
        """Core switches adjacent to aggregation switch ``agg``."""
        return [n for n in self.neighbors(agg)
                if self.node(n).role == ROLE_CORE]

    def agg_in_pod_for_core(self, core: str, pod: int) -> str:
        """The unique aggregation switch of ``pod`` adjacent to ``core``.

        This uniqueness ("there is only a single route to destination from
        the core switch") is the structural property CherryPick exploits to
        reconstruct 4-hop paths from a single sampled aggregate-core link.
        """
        candidates = [n for n in self.neighbors(core)
                      if self.node(n).role == ROLE_AGGREGATE
                      and self.node(n).pod == pod]
        if len(candidates) != 1:
            raise ValueError(
                f"expected exactly one aggregation switch of pod {pod} "
                f"adjacent to {core}, found {candidates}")
        return candidates[0]

    def expected_shortest_hops(self, src_host: str, dst_host: str) -> int:
        """Number of switch-to-switch style hops on the shortest path.

        Same ToR: 2 (host-tor-host is 2 links); same pod: 4; across pods: 6
        links which the paper describes as a "4-hop" switch path (ToR, agg,
        core, agg, ToR traversal).  We return the number of *links*.
        """
        src_tor = self.tor_of(src_host)
        dst_tor = self.tor_of(dst_host)
        if src_tor == dst_tor:
            return 2
        if self.node(src_tor).pod == self.node(dst_tor).pod:
            return 4
        return 6

    def describe(self) -> Dict[str, int]:
        """Summary including the arity."""
        info = super().describe()
        info["k"] = self.k
        return info
