"""Global link identifier assignment for CherryPick trajectory encoding.

CherryPick samples *links* rather than switches, so every link that may be
sampled needs an identifier that fits the carrier field (12-bit VLAN ID or
6-bit DSCP).  A 48-ary fat-tree has ~55 K physical links but only 4,096 VLAN
values, so the assignment must reuse identifiers.  Two ideas from the paper
(Section 3.1) make this possible:

1. **Pod-local reuse** - aggregate switches of different pods are only
   interconnected through core switches, so the links *inside* a pod
   (ToR-aggregate) can share one set of IDs across all pods; the receiver
   disambiguates using the source pod (known from the packet's source
   address).

2. **Edge colouring of core links** - aggregate-core links are assigned IDs
   derived from an edge colouring of the aggregation-core bipartite graph,
   again reusing IDs across pods.

This module implements both, provides the reverse mapping used by the edge
host when reconstructing a path from sampled IDs, and exposes a simple
bipartite edge-colouring routine used for VL2 and for the header-space
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.network.packet import MAX_DSCP, MAX_VLAN_ID
from repro.topology.fattree import FatTreeTopology
from repro.topology.graph import ROLE_AGGREGATE, ROLE_CORE, ROLE_EDGE, Topology
from repro.topology.vl2 import Vl2Topology

#: An undirected cable is identified by the frozenset of its endpoints.
Cable = FrozenSet[str]


def cable(a: str, b: str) -> Cable:
    """Return the canonical undirected cable key for two endpoints."""
    return frozenset((a, b))


class LinkIdSpaceError(ValueError):
    """Raised when the topology needs more link IDs than the carrier allows."""


@dataclass
class LinkIdAssignment:
    """The result of assigning link IDs to a topology.

    Attributes:
        id_of: mapping from cable to its assigned identifier.
        cables_of: reverse mapping from identifier to the set of cables
            sharing it (IDs are reused across pods).
        vlan_ids_used: number of distinct VLAN-carried identifiers.
        dscp_ids_used: number of distinct DSCP-carried identifiers (VL2 only).
    """

    id_of: Dict[Cable, int]
    cables_of: Dict[int, Set[Cable]]
    vlan_ids_used: int
    dscp_ids_used: int = 0

    def lookup(self, a: str, b: str) -> Optional[int]:
        """Identifier of the cable between ``a`` and ``b`` (or ``None``)."""
        return self.id_of.get(cable(a, b))

    def candidates(self, link_id: int) -> Set[Cable]:
        """All cables that share ``link_id``."""
        return self.cables_of.get(link_id, set())

    def resolve(self, link_id: int, pods: Iterable[Optional[int]],
                topo: Topology) -> Set[Cable]:
        """Resolve ``link_id`` to cables consistent with the given pods.

        Args:
            link_id: the sampled identifier.
            pods: pod indices that the cable may belong to (typically the
                source pod, the destination pod, or both); ``None`` entries
                are ignored.
            topo: the topology, used to look up endpoint pods.

        Returns:
            The subset of candidate cables having at least one endpoint in
            one of the given pods.  If no pod constraint applies, all
            candidates are returned.
        """
        pods = {p for p in pods if p is not None}
        candidates = self.candidates(link_id)
        if not pods:
            return set(candidates)
        resolved = set()
        for c in candidates:
            endpoint_pods = {topo.node(n).pod for n in c}
            if endpoint_pods & pods:
                resolved.add(c)
        return set(candidates) if not resolved else resolved


# ----------------------------------------------------------- edge colouring
def edge_color_bipartite(edges: List[Tuple[int, int]]) -> Dict[Tuple[int, int], int]:
    """Greedy proper edge colouring of a bipartite (multi)graph.

    Implements the simple variant of bipartite edge colouring (the paper
    cites Cole-Ost-Schirra for the O(E log D) algorithm; a greedy pass is
    sufficient here and always uses at most ``2*D - 1`` colours, while for
    the regular graphs we colour it typically achieves ``D``).

    Args:
        edges: list of ``(left_index, right_index)`` pairs.

    Returns:
        A mapping from each edge to its colour (0-based).
    """
    left_used: Dict[int, Set[int]] = {}
    right_used: Dict[int, Set[int]] = {}
    coloring: Dict[Tuple[int, int], int] = {}
    for (u, v) in edges:
        lu = left_used.setdefault(u, set())
        rv = right_used.setdefault(v, set())
        color = 0
        while color in lu or color in rv:
            color += 1
        coloring[(u, v)] = color
        lu.add(color)
        rv.add(color)
    return coloring


# --------------------------------------------------------------- fat-tree
def assign_fattree_link_ids(topo: FatTreeTopology) -> LinkIdAssignment:
    """Assign CherryPick link identifiers for a fat-tree.

    Two identifier classes are used, with disjoint value ranges so the
    receiver can tell them apart:

    * **ToR-aggregate links** - identifier ``1 + e * (k/2) + a`` where ``e``
      and ``a`` are the ToR's and aggregate's indices within their pod.  The
      same identifier is shared by the corresponding link of *every* pod.
    * **Aggregate-core links** - identifier ``base + colour`` where the
      colour comes from the position of the core switch within its group
      and the group index (an explicit edge colouring of the
      aggregation-core graph restricted to one pod); identifiers are shared
      across pods.

    Raises:
        LinkIdSpaceError: if the fat-tree is too large for 12-bit IDs
            (beyond 72-port switches, mirroring the paper's limit).
    """
    half = topo.half
    tor_agg_ids = half * half
    agg_core_ids = half * half
    total = tor_agg_ids + agg_core_ids
    if total > MAX_VLAN_ID:
        raise LinkIdSpaceError(
            f"fat-tree k={topo.k} needs {total} link IDs; "
            f"only {MAX_VLAN_ID} available in a VLAN tag")

    id_of: Dict[Cable, int] = {}
    cables_of: Dict[int, Set[Cable]] = {}

    def record(c: Cable, link_id: int) -> None:
        id_of[c] = link_id
        cables_of.setdefault(link_id, set()).add(c)

    # ToR <-> aggregate links: IDs 1 .. half*half, shared across pods.
    for pod in topo.pods():
        for e in range(half):
            for a in range(half):
                link_id = 1 + e * half + a
                record(cable(topo.tor_name(pod, e), topo.agg_name(pod, a)),
                       link_id)

    # Aggregate <-> core links.  Within a pod, aggregate a connects to cores
    # (a, 0..half-1); the colouring (a, i) -> a*half + i is a proper edge
    # colouring of that bipartite graph and is reused by every pod.
    agg_core_base = 1 + tor_agg_ids
    edges = [(a, a * half + i) for a in range(half) for i in range(half)]
    coloring = edge_color_bipartite(edges)
    for pod in topo.pods():
        for a in range(half):
            for i in range(half):
                color = coloring[(a, a * half + i)]
                link_id = agg_core_base + a * half + i
                # Use the explicit colouring for validation: it must be a
                # proper colouring so that no aggregate switch carries two
                # uplinks with the same colour.
                assert color < half * half
                record(cable(topo.agg_name(pod, a), topo.core_name(a, i)),
                       link_id)

    return LinkIdAssignment(id_of=id_of, cables_of=cables_of,
                            vlan_ids_used=total)


# -------------------------------------------------------------------- VL2
def assign_vl2_link_ids(topo: Vl2Topology) -> LinkIdAssignment:
    """Assign link identifiers for a VL2 topology.

    The VL2 encoding samples three links on a 6-hop path; the first sample
    (a ToR-aggregate link in the source pod) is carried in the 6-bit DSCP
    field and the remaining samples in VLAN tags:

    * **ToR-aggregate links** get DSCP identifiers ``1 + 2*t + j`` where
      ``t`` is the ToR index within its aggregation pair and ``j`` selects
      which of the two aggregation switches; shared across pairs.
    * **Aggregate-intermediate links** get VLAN identifiers derived from a
      proper edge colouring of the complete bipartite aggregation x
      intermediate graph, offset to stay disjoint from ToR-aggregate VLAN
      identifiers used for deviated paths.

    Raises:
        LinkIdSpaceError: if the ToR-aggregate IDs exceed the DSCP space
            (the paper's 62-port-switch VL2 limit).
    """
    dscp_ids = 2 * topo.tors_per_agg_pair
    if dscp_ids > MAX_DSCP:
        raise LinkIdSpaceError(
            f"VL2 needs {dscp_ids} DSCP link IDs; only {MAX_DSCP} available")

    id_of: Dict[Cable, int] = {}
    cables_of: Dict[int, Set[Cable]] = {}

    def record(c: Cable, link_id: int) -> None:
        id_of[c] = link_id
        cables_of.setdefault(link_id, set()).add(c)

    # ToR <-> aggregate links (DSCP space, reused across aggregation pairs).
    for tor in topo.edge_switches():
        tor_info = topo.node(tor)
        pair = tor_info.pod
        local_t = tor_info.index - min(
            topo.node(t).index for t in topo.edge_switches()
            if topo.node(t).pod == pair)
        for j, agg in enumerate(sorted(topo.agg_pair_of_tor(tor))):
            record(cable(tor, agg), 1 + 2 * local_t + j)

    # Aggregate <-> intermediate links (VLAN space).  The complete bipartite
    # graph K_{n_agg, n_int} admits the proper colouring (a + i) mod n_int
    # when n_int >= n_agg; the greedy routine handles the general case.
    edges = [(a, i) for a in range(topo.n_agg) for i in range(topo.n_int)]
    coloring = edge_color_bipartite(edges)
    vlan_base = 1 + MAX_DSCP  # keep VLAN-carried IDs disjoint from DSCP IDs
    vlan_ids: Set[int] = set()
    for a in range(topo.n_agg):
        for i in range(topo.n_int):
            # Reuse colours across aggregation switches of different pairs
            # would be ambiguous for VL2 (aggregates are globally meshed),
            # so the identifier combines the aggregate index and the colour.
            link_id = vlan_base + a * (max(coloring.values()) + 1) + coloring[(a, i)]
            if link_id > MAX_VLAN_ID:
                raise LinkIdSpaceError("VL2 aggregate-intermediate links "
                                       "exceed the VLAN ID space")
            vlan_ids.add(link_id)
            record(cable(topo.agg_name(a), topo.int_name(i)), link_id)

    return LinkIdAssignment(id_of=id_of, cables_of=cables_of,
                            vlan_ids_used=len(vlan_ids),
                            dscp_ids_used=dscp_ids)


def assign_link_ids(topo: Topology) -> LinkIdAssignment:
    """Dispatch to the appropriate assignment for the topology type.

    Generic topologies get globally unique IDs for every switch-switch cable
    (no reuse), which is correct but uses more identifier space; this is the
    fallback the paper alludes to for future, less structured networks.
    """
    if isinstance(topo, FatTreeTopology):
        return assign_fattree_link_ids(topo)
    if isinstance(topo, Vl2Topology):
        return assign_vl2_link_ids(topo)
    return assign_generic_link_ids(topo)


def assign_generic_link_ids(topo: Topology) -> LinkIdAssignment:
    """Globally unique IDs for every switch-switch cable of any topology."""
    id_of: Dict[Cable, int] = {}
    cables_of: Dict[int, Set[Cable]] = {}
    next_id = 1
    seen: Set[Cable] = set()
    for link in topo.switch_links():
        c = cable(link.src, link.dst)
        if c in seen:
            continue
        seen.add(c)
        if next_id > MAX_VLAN_ID:
            raise LinkIdSpaceError("topology exceeds the 12-bit link ID space")
        id_of[c] = next_id
        cables_of[next_id] = {c}
        next_id += 1
    return LinkIdAssignment(id_of=id_of, cables_of=cables_of,
                            vlan_ids_used=next_id - 1)


def apply_assignment(topo: Topology, assignment: LinkIdAssignment) -> None:
    """Stamp each directed :class:`~repro.network.link.Link` with its ID."""
    for link in topo.links:
        link_id = assignment.lookup(link.src, link.dst)
        link.global_id = link_id
