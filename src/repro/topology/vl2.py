"""VL2 topology builder.

VL2 (Greenberg et al., SIGCOMM 2009) is the second topology family the
CherryPick encoding supports.  Its switching fabric is a folded Clos:

* ``n_int`` *intermediate* (core) switches,
* ``n_agg`` *aggregation* switches, each connected to **every** intermediate
  switch (complete bipartite aggregation-intermediate mesh),
* ToR switches, each connected to exactly **two** aggregation switches,
* servers attached to ToRs.

With VL2 a 6-hop host-to-host route traverses ToR, aggregation, intermediate,
aggregation, ToR; CherryPick needs to sample *three* links for such a path
and therefore spends the DSCP field on the first sample (ToR->aggregation in
the source pod) and VLAN tags on the rest.

Naming scheme: ``int-<i>``, ``vagg-<i>``, ``vtor-<i>``, ``vh-<tor>-<i>``.
The ``pod`` attribute of a ToR/host is the index of its *primary*
aggregation switch, which is the grouping the link ID assignment reuses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.topology.graph import (ROLE_AGGREGATE, ROLE_CORE, ROLE_EDGE,
                                  Topology)


class Vl2Topology(Topology):
    """A VL2 folded-Clos topology.

    Args:
        n_int: number of intermediate (core) switches.
        n_agg: number of aggregation switches; must be even so every ToR can
            dual-home to an (odd, even) aggregation pair.
        tors_per_agg_pair: ToR switches per aggregation pair.
        hosts_per_tor: servers per ToR switch.
    """

    def __init__(self, n_int: int = 4, n_agg: int = 4,
                 tors_per_agg_pair: int = 2, hosts_per_tor: int = 2,
                 name: Optional[str] = None) -> None:
        if n_agg % 2 != 0 or n_agg < 2:
            raise ValueError("n_agg must be an even integer >= 2")
        if n_int < 1:
            raise ValueError("n_int must be >= 1")
        super().__init__(name or f"vl2-{n_int}x{n_agg}")
        self.n_int = n_int
        self.n_agg = n_agg
        self.tors_per_agg_pair = tors_per_agg_pair
        self.hosts_per_tor = hosts_per_tor
        self._build()

    # ---------------------------------------------------------------- build
    def _build(self) -> None:
        for i in range(self.n_int):
            self.add_switch(self.int_name(i), ROLE_CORE, pod=None, index=i)
        for a in range(self.n_agg):
            self.add_switch(self.agg_name(a), ROLE_AGGREGATE,
                            pod=a // 2, index=a)
        # Complete bipartite aggregation <-> intermediate mesh.
        for a in range(self.n_agg):
            for i in range(self.n_int):
                self.add_link(self.agg_name(a), self.int_name(i))
        # ToRs dual-homed to aggregation pairs (2p, 2p+1).
        tor_index = 0
        for pair in range(self.n_agg // 2):
            for t in range(self.tors_per_agg_pair):
                tor = self.tor_name(tor_index)
                self.add_switch(tor, ROLE_EDGE, pod=pair, index=tor_index)
                self.add_link(tor, self.agg_name(2 * pair))
                self.add_link(tor, self.agg_name(2 * pair + 1))
                for h in range(self.hosts_per_tor):
                    host = self.host_name(tor_index, h)
                    self.add_host(host, pod=pair, index=h)
                    self.add_link(host, tor)
                tor_index += 1
        self.n_tor = tor_index

    # --------------------------------------------------------------- naming
    @staticmethod
    def int_name(index: int) -> str:
        """Canonical intermediate (core) switch name."""
        return f"int-{index}"

    @staticmethod
    def agg_name(index: int) -> str:
        """Canonical aggregation switch name."""
        return f"vagg-{index}"

    @staticmethod
    def tor_name(index: int) -> str:
        """Canonical ToR switch name."""
        return f"vtor-{index}"

    @staticmethod
    def host_name(tor_index: int, index: int) -> str:
        """Canonical host name."""
        return f"vh-{tor_index}-{index}"

    # -------------------------------------------------------------- helpers
    def agg_pair_of_tor(self, tor: str) -> List[str]:
        """The two aggregation switches a ToR is homed to."""
        return [n for n in self.neighbors(tor)
                if self.node(n).role == ROLE_AGGREGATE]

    def intermediates(self) -> List[str]:
        """All intermediate switches."""
        return self.core_switches()

    def describe(self) -> Dict[str, int]:
        """Summary including VL2 parameters."""
        info = super().describe()
        info["n_int"] = self.n_int
        info["n_agg"] = self.n_agg
        return info
