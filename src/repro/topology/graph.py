"""Datacenter topology model.

PathDump's edge stack keeps a *static view of the datacenter network
topology* (Section 2.2): the ground truth against which extracted packet
trajectories are validated and from which end-to-end paths are reconstructed
out of sampled link IDs.  This module provides that view.

A :class:`Topology` wraps a :class:`networkx.Graph` whose nodes carry a
:class:`NodeInfo` record (role, pod, index) and maintains a
:class:`~repro.network.link.LinkRegistry` with one directed
:class:`~repro.network.link.Link` per direction of every cable.  Concrete
builders live in :mod:`repro.topology.fattree` and :mod:`repro.topology.vl2`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.network.link import Link, LinkRegistry

#: Node roles used across the repository.
ROLE_HOST = "host"
ROLE_EDGE = "edge"          # ToR switches
ROLE_AGGREGATE = "aggregate"
ROLE_CORE = "core"

SWITCH_ROLES = (ROLE_EDGE, ROLE_AGGREGATE, ROLE_CORE)


@dataclass(frozen=True)
class NodeInfo:
    """Static attributes of a topology node.

    Attributes:
        name: unique node name, also used as its address.
        role: one of ``host``, ``edge``, ``aggregate``, ``core``.
        pod: pod index for pod-structured topologies (``None`` for core
            switches and for topologies without pods).
        index: position of the node within its role/pod group.
    """

    name: str
    role: str
    pod: Optional[int] = None
    index: int = 0

    @property
    def is_switch(self) -> bool:
        """``True`` for any non-host node."""
        return self.role in SWITCH_ROLES

    @property
    def is_host(self) -> bool:
        """``True`` for end hosts."""
        return self.role == ROLE_HOST


class Topology:
    """A datacenter topology: typed nodes, directed links and helpers.

    The class is deliberately generic; structured topologies (fat-tree, VL2)
    subclass it to add structure-specific helpers that CherryPick's sampling
    rules rely on (pod membership, uplink enumeration, etc.).
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.graph = nx.Graph()
        self.links = LinkRegistry()
        self._nodes: Dict[str, NodeInfo] = {}

    # ------------------------------------------------------------ population
    def add_node(self, info: NodeInfo) -> NodeInfo:
        """Add a node; raises on duplicates."""
        if info.name in self._nodes:
            raise ValueError(f"duplicate node {info.name}")
        self._nodes[info.name] = info
        self.graph.add_node(info.name, info=info)
        return info

    def add_host(self, name: str, pod: Optional[int] = None,
                 index: int = 0) -> NodeInfo:
        """Add an end host."""
        return self.add_node(NodeInfo(name, ROLE_HOST, pod, index))

    def add_switch(self, name: str, role: str, pod: Optional[int] = None,
                   index: int = 0) -> NodeInfo:
        """Add a switch with the given role."""
        if role not in SWITCH_ROLES:
            raise ValueError(f"unknown switch role {role!r}")
        return self.add_node(NodeInfo(name, role, pod, index))

    def add_link(self, a: str, b: str, **link_kwargs) -> Tuple[Link, Link]:
        """Connect ``a`` and ``b`` with a cable (two directed links)."""
        for node in (a, b):
            if node not in self._nodes:
                raise KeyError(f"unknown node {node}")
        self.graph.add_edge(a, b)
        return self.links.add_bidirectional(a, b, **link_kwargs)

    # --------------------------------------------------------------- queries
    def node(self, name: str) -> NodeInfo:
        """Return the :class:`NodeInfo` for ``name``."""
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        """``True`` when ``name`` is a node of the topology."""
        return name in self._nodes

    def nodes(self, role: Optional[str] = None) -> List[str]:
        """Return node names, optionally filtered by role, sorted."""
        if role is None:
            return sorted(self._nodes)
        return sorted(n for n, i in self._nodes.items() if i.role == role)

    @property
    def hosts(self) -> List[str]:
        """All host names, sorted."""
        return self.nodes(ROLE_HOST)

    @property
    def switches(self) -> List[str]:
        """All switch names (any role), sorted."""
        return sorted(n for n, i in self._nodes.items() if i.is_switch)

    def edge_switches(self) -> List[str]:
        """All ToR/edge switch names."""
        return self.nodes(ROLE_EDGE)

    def aggregate_switches(self) -> List[str]:
        """All aggregation switch names."""
        return self.nodes(ROLE_AGGREGATE)

    def core_switches(self) -> List[str]:
        """All core switch names."""
        return self.nodes(ROLE_CORE)

    def neighbors(self, name: str) -> List[str]:
        """Neighbors of ``name``, sorted for determinism."""
        return sorted(self.graph.neighbors(name))

    def switch_neighbors(self, name: str) -> List[str]:
        """Neighboring switches of ``name`` (hosts excluded)."""
        return [n for n in self.neighbors(name) if self.node(n).is_switch]

    def host_neighbors(self, name: str) -> List[str]:
        """Neighboring hosts of ``name``."""
        return [n for n in self.neighbors(name) if self.node(n).is_host]

    def tor_of(self, host: str) -> str:
        """Return the ToR (edge) switch a host is attached to."""
        info = self.node(host)
        if not info.is_host:
            raise ValueError(f"{host} is not a host")
        tors = [n for n in self.neighbors(host)
                if self.node(n).role == ROLE_EDGE]
        if len(tors) != 1:
            raise ValueError(f"host {host} has {len(tors)} ToR switches")
        return tors[0]

    def hosts_under(self, switch: str) -> List[str]:
        """Hosts directly attached to ``switch``."""
        return self.host_neighbors(switch)

    def pod_of(self, name: str) -> Optional[int]:
        """Pod index of ``name`` (``None`` for core or pod-less nodes)."""
        return self.node(name).pod

    # ----------------------------------------------------------------- paths
    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Return one shortest path (list of node names) from src to dst."""
        return nx.shortest_path(self.graph, src, dst)

    def all_shortest_paths(self, src: str, dst: str) -> List[List[str]]:
        """Return every shortest path between ``src`` and ``dst``, sorted."""
        return sorted(nx.all_shortest_paths(self.graph, src, dst))

    def shortest_path_length(self, src: str, dst: str) -> int:
        """Number of hops on the shortest path between two nodes."""
        return nx.shortest_path_length(self.graph, src, dst)

    def path_links(self, path: Sequence[str]) -> List[Tuple[str, str]]:
        """Return the directed links (endpoint pairs) along ``path``."""
        return [(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def is_valid_path(self, path: Sequence[str]) -> bool:
        """Check that ``path`` only uses links present in the topology.

        This is the "ground truth" check PathDump applies to extracted
        trajectories to detect switches inserting bogus identifiers
        (Section 2.4).
        """
        if not path:
            return False
        for node in path:
            if node not in self._nodes:
                return False
        for u, v in self.path_links(path):
            if not self.graph.has_edge(u, v):
                return False
        return True

    # --------------------------------------------------------------- volumes
    def switch_links(self) -> List[Link]:
        """All directed links whose *both* endpoints are switches."""
        return [l for l in self.links
                if self.node(l.src).is_switch and self.node(l.dst).is_switch]

    def link_count(self) -> int:
        """Total number of directed links."""
        return len(self.links)

    def describe(self) -> Dict[str, int]:
        """Return a summary of node/link counts, useful for reports."""
        return {
            "hosts": len(self.hosts),
            "edge_switches": len(self.edge_switches()),
            "aggregate_switches": len(self.aggregate_switches()),
            "core_switches": len(self.core_switches()),
            "directed_links": len(self.links),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        d = self.describe()
        return (f"Topology({self.name}: {d['hosts']} hosts, "
                f"{d['edge_switches']}+{d['aggregate_switches']}"
                f"+{d['core_switches']} switches)")
