"""Log-structured cold archive for aged-out TIB records.

PathDump keeps only *recent* flow entries in each end host's in-memory TIB
and ages older entries out to persistent storage; queries span both tiers.
This module is the cold tier of that design: an append-only, log-structured
store of encoded :class:`~repro.storage.records.PathFlowRecord` entries,
modelling the on-disk half of the paper's MongoDB-backed TIB.

Layout
------

Records arrive in *eviction order* (oldest ``etime`` first, the hot tier's
retention order) and are appended to an **active log buffer**.  Once the
buffer holds :attr:`ColdArchive.segment_records` entries it is **sealed**
into an immutable segment: a single ``bytes`` blob of
``varint(record id) + record body`` entries (the same record encoding the
wire codec ships, so archive bytes are *measured* serialized bytes, not
estimates), plus a **sparse index** - the segment's ``[min stime, max
etime]`` envelope, its ``[min id, max id]`` range and the set of flow keys
it contains.  Queries prune whole segments on that metadata and decode only
the candidates.

Two mutations exist besides append:

* :meth:`ColdArchive.take` removes one entry (the hot tier *promotes* a
  record back when a new write merges into an archived key).  The entry's
  bytes stay in place; its id joins a tombstone set that reads skip.
* :meth:`ColdArchive.compact` rewrites every segment without the
  tombstoned entries (triggered automatically once the dead fraction
  crosses :attr:`ColdArchive.compact_dead_ratio`), reclaiming their bytes.

The archive also keeps a **key index** ``(flow key, path) -> record id``
over its live entries - the structure a real log-structured store carries
as bloom filters / sparse key indexes - so the hot tier's upsert path can
detect in O(1) that an incoming record must merge into an archived one.

Nothing in this module imports the wire codec at import time (the codec
lives in :mod:`repro.core`, which imports this package); the record
encoder is bound lazily on first use, mirroring
:meth:`repro.storage.records.PathFlowRecord.wire_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from repro.storage.records import PathFlowRecord, flow_key

#: A hot/cold tier key: ``(flow key, path)`` - the TIB's primary key.
ArchiveKey = Tuple[str, Tuple[str, ...]]

_INF = float("inf")

_wire = None


def _codec():
    """The wire codec, bound lazily (see the module docstring)."""
    global _wire
    if _wire is None:
        from repro.core import wire
        _wire = wire
    return _wire


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on the hot tier of a two-tier TIB.

    Attributes:
        max_records: hot-tier record-count cap (``None`` = unbounded).
        max_bytes: hot-tier ``estimated_bytes`` cap (``None`` = unbounded).

    When either bound is exceeded the TIB ages its oldest-``etime`` records
    out into the cold archive until it is back under both.
    """

    max_records: Optional[int] = None
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_records is not None and self.max_records < 0:
            raise ValueError("max_records must be non-negative")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")

    @property
    def bounded(self) -> bool:
        """Whether any bound is set at all."""
        return self.max_records is not None or self.max_bytes is not None

    def exceeded_by(self, records: int, nbytes: int) -> bool:
        """Whether a hot tier of ``records`` rows / ``nbytes`` bytes is
        over either bound."""
        if self.max_records is not None and records > self.max_records:
            return True
        return self.max_bytes is not None and nbytes > self.max_bytes


class _Segment:
    """One sealed, immutable log segment plus its sparse index.

    ``offsets`` maps record id -> byte offset of the id's *latest* entry
    in ``data`` (the point-lookup index a real log-structured store keeps
    per SSTable); promotion reads decode exactly one entry through it.
    """

    __slots__ = ("data", "count", "min_stime", "max_etime", "min_id",
                 "max_id", "flow_keys", "offsets")

    def __init__(self, data: bytes, count: int, min_stime: float,
                 max_etime: float, min_id: int, max_id: int,
                 flow_keys: FrozenSet[str],
                 offsets: Dict[int, int]) -> None:
        self.data = data
        self.count = count
        self.min_stime = min_stime
        self.max_etime = max_etime
        self.min_id = min_id
        self.max_id = max_id
        self.flow_keys = flow_keys
        self.offsets = offsets

    def may_contain(self, fkey: Optional[str], start: Optional[float],
                    end: Optional[float]) -> bool:
        """Sparse-index pruning: can this segment hold a matching entry?"""
        if fkey is not None and fkey not in self.flow_keys:
            return False
        if start is not None and self.max_etime < start:
            return False
        if end is not None and self.min_stime > end:
            return False
        return True


class ColdArchive:
    """The log-structured cold tier of one host's TIB.

    Args:
        segment_records: entries per sealed segment (the log granularity).
        compact_dead_ratio: dead-entry fraction above which a
            :meth:`take` triggers an automatic :meth:`compact`; ``None``
            disables auto-compaction.
    """

    #: Default entries per sealed segment.
    SEGMENT_RECORDS = 256
    #: Default dead fraction that triggers compaction.
    COMPACT_DEAD_RATIO = 0.3
    #: Minimum total entries before auto-compaction is considered.
    COMPACT_MIN_RECORDS = 64

    def __init__(self, segment_records: int = SEGMENT_RECORDS,
                 compact_dead_ratio: Optional[float] = COMPACT_DEAD_RATIO
                 ) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        self.segment_records = segment_records
        self.compact_dead_ratio = compact_dead_ratio
        self._segments: List[_Segment] = []
        # Active (unsealed) log buffer plus its index-in-progress.
        self._active = bytearray()
        self._active_count = 0
        self._active_min_stime = _INF
        self._active_max_etime = -_INF
        self._active_min_id = 0
        self._active_max_id = 0
        self._active_flow_keys: Set[str] = set()
        self._active_offsets: Dict[int, int] = {}
        # Live-entry key index + tombstones (see the module docstring).
        self._key_index: Dict[ArchiveKey, int] = {}
        self._dead: Set[int] = set()
        # Entries superseded by a re-archival of the same id: their bytes
        # are garbage like tombstones, but the id itself is live again, so
        # they are counted instead of kept in the dead set.
        self._superseded = 0
        self._total_records = 0
        #: Instrumentation: how often the expensive operations happen.
        self.stats = {"appends": 0, "takes": 0, "segments_sealed": 0,
                      "compactions": 0, "segment_decodes": 0}

    # ------------------------------------------------------------------ writes
    def append(self, record_id: int, record: PathFlowRecord,
               key: Optional[ArchiveKey] = None) -> None:
        """Append one aged-out record under its hot-tier id.

        ``key`` is the TIB's primary key for the record (derived when
        omitted).  The caller must not hold two live entries for the same
        key - the hot tier promotes before re-archiving.  Re-archiving an
        id that was promoted earlier is fine: the tombstone is lifted and
        the *latest* log entry for an id is authoritative everywhere.
        """
        if key is None:
            key = (flow_key(record.flow_id), record.path)
        if key in self._key_index:
            raise ValueError(f"archive already holds a live entry for {key}")
        if record_id in self._dead:
            # Re-archival of a promoted id: the tombstoned entry becomes a
            # *superseded* duplicate - still garbage bytes, but the id is
            # live again, so track it by count for the compaction trigger.
            self._dead.discard(record_id)
            self._superseded += 1
        wire = _codec()
        if not self._active_count:
            self._active_min_id = record_id
        self._active_offsets[record_id] = len(self._active)
        wire.append_record_entry(self._active, record_id, record)
        self._active_count += 1
        self._active_max_id = max(self._active_max_id, record_id)
        self._active_min_id = min(self._active_min_id, record_id)
        if record.stime < self._active_min_stime:
            self._active_min_stime = record.stime
        if record.etime > self._active_max_etime:
            self._active_max_etime = record.etime
        self._active_flow_keys.add(key[0])
        self._key_index[key] = record_id
        self._total_records += 1
        self.stats["appends"] += 1
        if self._active_count >= self.segment_records:
            self._seal_active()
        self._maybe_compact()

    def _seal_active(self) -> None:
        """Freeze the active buffer into an immutable segment."""
        if not self._active_count:
            return
        self._segments.append(_Segment(
            bytes(self._active), self._active_count,
            self._active_min_stime, self._active_max_etime,
            self._active_min_id, self._active_max_id,
            frozenset(self._active_flow_keys), self._active_offsets))
        self.stats["segments_sealed"] += 1
        self._reset_active()

    def _reset_active(self) -> None:
        self._active = bytearray()
        self._active_count = 0
        self._active_min_stime = _INF
        self._active_max_etime = -_INF
        self._active_min_id = 0
        self._active_max_id = 0
        self._active_flow_keys = set()
        self._active_offsets = {}

    def take(self, key: ArchiveKey) -> Tuple[int, PathFlowRecord]:
        """Remove and return the live entry for ``key`` (promotion path).

        Returns ``(record id, record)``.  The entry's bytes are tombstoned
        in place; compaction reclaims them once enough pile up.  Raises
        :class:`KeyError` when the archive holds no live entry for ``key``.
        """
        record_id = self._key_index.pop(key)  # KeyError propagates
        record = self._find_entry(record_id, key[0])
        if record is None:  # pragma: no cover - index/log desync guard
            raise KeyError(f"archive log lost entry {record_id} for {key}")
        self._dead.add(record_id)
        self.stats["takes"] += 1
        self._maybe_compact()
        return record_id, record

    def lookup(self, key: ArchiveKey) -> Optional[int]:
        """The live entry id archived under ``key``, or ``None``."""
        return self._key_index.get(key)

    def _find_entry(self, record_id: int,
                    fkey: str) -> Optional[PathFlowRecord]:
        """Decode the entry ``record_id`` via the per-segment offset index.

        The log may hold several entries for one id (a promoted record
        re-archived later); the *latest* one is authoritative, so the
        active buffer is consulted first, then the sealed segments newest
        to oldest.  Exactly one entry is decoded - no segment scan.
        """
        wire = _codec()
        offset = self._active_offsets.get(record_id)
        if offset is not None:
            # The reader indexes/slices the bytearray directly - no copy
            # of the whole active buffer for a point lookup.
            entry_id, record = wire.read_record_entry(self._active, offset)
            return record
        for segment in reversed(self._segments):
            offset = segment.offsets.get(record_id)
            if offset is not None:
                entry_id, record = wire.read_record_entry(segment.data,
                                                          offset)
                return record
        return None

    @staticmethod
    def _iter_entries(data: bytes
                      ) -> Iterator[Tuple[int, PathFlowRecord]]:
        return _codec().iter_record_entries(data)

    # --------------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        ratio = self.compact_dead_ratio
        if ratio is None:
            return
        if self._total_records >= self.COMPACT_MIN_RECORDS and \
                self.dead_ratio >= ratio:
            self.compact()

    @property
    def dead_ratio(self) -> float:
        """Fraction of log entries holding garbage bytes: tombstoned ids
        plus entries superseded by a re-archival of their id."""
        total = self._total_records
        return (len(self._dead) + self._superseded) / total if total else 0.0

    def compact(self) -> None:
        """Rewrite the log without tombstoned entries.

        Live entries are re-laid in id order and re-sealed into full
        segments; the sparse indexes are rebuilt; the dead set empties.
        """
        self.stats["compactions"] += 1
        # Last entry per id wins (see append()); tombstoned ids drop out.
        latest: Dict[int, PathFlowRecord] = {}
        for record_id, record in self._entries():
            if record_id not in self._dead:
                latest[record_id] = record
        live = sorted(latest.items())
        self._segments = []
        self._reset_active()
        self._dead = set()
        self._superseded = 0
        self._total_records = 0
        appends = self.stats["appends"]  # compaction is not ingest
        sealed = self.stats["segments_sealed"]
        for record_id, record in live:
            key = (flow_key(record.flow_id), record.path)
            del self._key_index[key]  # append() re-adds it
            self.append(record_id, record, key)
        self._seal_active()
        self.stats["appends"] = appends
        self.stats["segments_sealed"] = sealed

    def _entries(self) -> List[Tuple[int, PathFlowRecord]]:
        """Every log entry (live and dead), segments first then active."""
        out: List[Tuple[int, PathFlowRecord]] = []
        for segment in self._segments:
            self.stats["segment_decodes"] += 1
            out.extend(self._iter_entries(segment.data))
        out.extend(self._iter_entries(self._active))
        return out

    # ------------------------------------------------------------------- reads
    def search(self, fkey: Optional[str] = None,
               start: Optional[float] = None,
               end: Optional[float] = None
               ) -> List[Tuple[int, PathFlowRecord]]:
        """Live entries matching a flow key and/or overlapping a window.

        Returns ``(record id, record)`` pairs in ascending id order - the
        hot tier merges them with its own id-ordered results so queries
        spanning both tiers keep the deterministic single-tier order.
        Whole segments are pruned on the sparse index; only candidates are
        decoded.

        When the log holds several entries for one id (promotion then
        re-archival), the latest is authoritative; time filters run on it
        *after* the dedup.  Pruning stays safe across duplicates because a
        record's ``stime`` only ever decreases and its ``etime`` only ever
        increases: any segment holding the newest entry of an id whose
        stale twin overlaps the window must overlap it too.
        """
        latest: Dict[int, PathFlowRecord] = {}
        dead = self._dead
        for segment in self._segments:
            if not segment.may_contain(fkey, start, end):
                continue
            self.stats["segment_decodes"] += 1
            self._collect_blob(segment.data, fkey, dead, latest)
        if self._active_count:
            self._collect_blob(self._active, fkey, dead, latest)
        results = [(record_id, record)
                   for record_id, record in latest.items()
                   if (start is None or record.etime >= start)
                   and (end is None or record.stime <= end)]
        results.sort(key=lambda pair: pair[0])
        return results

    @staticmethod
    def _collect_blob(data: bytes, fkey: Optional[str], dead: Set[int],
                      latest: Dict[int, PathFlowRecord]) -> None:
        for record_id, record in ColdArchive._iter_entries(data):
            if record_id in dead:
                continue
            if fkey is not None and flow_key(record.flow_id) != fkey:
                continue
            latest[record_id] = record

    # -------------------------------------------------------------- accounting
    @property
    def live_count(self) -> int:
        """Number of live (non-tombstoned) archived records."""
        return len(self._key_index)

    @property
    def segment_count(self) -> int:
        """Number of sealed segments."""
        return len(self._segments)

    def archive_bytes(self) -> int:
        """*Measured* size of the log: the encoded bytes actually held
        (sealed segments plus the active buffer, tombstones included until
        compaction reclaims them)."""
        return sum(len(s.data) for s in self._segments) + len(self._active)

    def index_bytes(self) -> int:
        """Rough footprint of the archive-side index structures (the key
        index, tombstone set and per-segment sparse metadata)."""
        total = 0
        for (fkey, path), _ in self._key_index.items():
            total += len(fkey) + sum(len(node) + 2 for node in path) + 8
        total += 8 * len(self._dead)
        for segment in self._segments:
            total += 48 + sum(len(k) for k in segment.flow_keys)
            total += 16 * len(segment.offsets)
        total += 16 * len(self._active_offsets)
        return total

    def clear(self) -> None:
        """Drop every segment, the active buffer and all indexes."""
        self._segments = []
        self._reset_active()
        self._key_index = {}
        self._dead = set()
        self._superseded = 0
        self._total_records = 0

    def reset_stats(self) -> None:
        """Zero the instrumentation counters (data stays intact)."""
        for key in self.stats:
            self.stats[key] = 0
