"""Log-structured cold archive for aged-out TIB records.

PathDump keeps only *recent* flow entries in each end host's in-memory TIB
and ages older entries out to persistent storage; queries span both tiers.
This module is the cold tier of that design: an append-only, log-structured
store of encoded :class:`~repro.storage.records.PathFlowRecord` entries,
modelling the on-disk half of the paper's MongoDB-backed TIB.

Layout
------

Evicted records land in a **write-behind buffer** first (:meth:`stage` - an
O(1) dict insert, keeping the hot tier's eviction path off the encoder),
then a batched :meth:`flush` appends them to an **active log buffer**.  Once
the buffer holds :attr:`ColdArchive.segment_records` entries it is
**sealed** into an immutable segment: a single ``bytes`` blob of
field-offset log entries (``uvarint(id) + uvarint(body len) + body``, the
body leading with a fixed ``stime/etime/link-bloom`` header - see the entry
layout notes in :mod:`repro.core.wire`), plus the segment's pruning
metadata:

* a **zone map** - the ``[min stime, max etime]`` time envelope, the
  ``[min id, max id]`` range and the exact set of path nodes it holds;
* a **link bloom** and a **flow-key bloom** (crc32-salted, so they mean the
  same thing in every worker process).

:meth:`scan` - the cold half of the tiers' shared
:class:`~repro.storage.records.ScanSpec` read surface - prunes whole
segments on that metadata, evaluates time/link/flow-key predicates on the
encoded bytes of the surviving segments' entries (one ``unpack_from`` and a
bloom AND per entry), and decodes full records *lazily*, only for entries
that pass every encoded-byte predicate.  Blooms can produce false
positives, never false negatives; every decoded candidate is re-verified
against the spec's exact predicate.  Surviving segments are independent,
so scans optionally scatter across them through the scatter-gather
executor (:meth:`configure_scan`).

Every read path flushes the write-behind buffer first (the **flush
barrier**), so a scan, snapshot or byte count never observes a torn tier.

Two mutations exist besides append:

* :meth:`ColdArchive.take` removes one entry (the hot tier *promotes* a
  record back when a new write merges into an archived key).  A still-
  staged entry is simply popped from the write-behind buffer; a logged
  entry's bytes stay in place and its id joins a tombstone set that reads
  skip.
* :meth:`ColdArchive.compact` rewrites every segment without the
  tombstoned entries (triggered automatically once the dead fraction
  crosses :attr:`ColdArchive.compact_dead_ratio`), reclaiming their bytes.

The archive also keeps a **key index** ``(flow key, path) -> record id``
over its live entries (staged ones included) - the structure a real
log-structured store carries as bloom filters / sparse key indexes - so the
hot tier's upsert path can detect in O(1) that an incoming record must
merge into an archived one.

Nothing in this module imports the wire codec at import time (the codec
lives in :mod:`repro.core`, which imports this package); the record
encoder is bound lazily on first use, mirroring
:meth:`repro.storage.records.PathFlowRecord.wire_bytes`.
"""

from __future__ import annotations

import threading
import warnings
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.storage.records import (PathFlowRecord, ScanSpec, flow_key,
                                   parse_flow_key)

#: A hot/cold tier key: ``(flow key, path)`` - the TIB's primary key.
ArchiveKey = Tuple[str, Tuple[str, ...]]

_INF = float("inf")

_wire = None


def _codec():
    """The wire codec, bound lazily (see the module docstring)."""
    global _wire
    if _wire is None:
        from repro.core import wire
        _wire = wire
    return _wire


#: Segment-bloom geometry.  Sized for the segment granularity (256 entries
#: by default): 512 link bits with k=2 stay well under ~20% full for a
#: datacenter topology's link diversity per segment, and 2048 flow-key bits
#: with k=3 keep the per-segment false-positive rate in the low percent
#: even when every entry carries a distinct flow.  Segment blooms are plain
#: Python ints (subset test = two bitwise ops), rebuilt at seal time.
SEG_LINK_BLOOM_BITS = 512
SEG_FKEY_BLOOM_BITS = 2048
#: crc32 salts (k hash functions); crc32 instead of ``hash()`` because the
#: latter is per-process randomized and segment metadata must agree across
#: worker processes.
_SEG_LINK_SALTS = (0x51ED2701, 0x9E3779B9)
_SEG_FKEY_SALTS = (0x1B873593, 0xCC9E2D51, 0x85EBCA6B)


@lru_cache(maxsize=1 << 12)
def _seg_link_mask(a: str, b: str) -> int:
    """Segment-bloom mask of one concrete (undirected) link."""
    if b < a:
        a, b = b, a
    key = (a + "\x00" + b).encode("utf-8")
    mask = 0
    for salt in _SEG_LINK_SALTS:
        mask |= 1 << (zlib.crc32(key, salt) % SEG_LINK_BLOOM_BITS)
    return mask


@lru_cache(maxsize=1 << 14)
def _seg_path_link_bloom(path: Tuple[str, ...]) -> int:
    """Segment-bloom contribution of one path (all its undirected links)."""
    if len(path) < 2:
        return 0
    bloom = 0
    for a, b in zip(path, path[1:]):
        bloom |= _seg_link_mask(a, b)
    return bloom


@lru_cache(maxsize=1 << 14)
def _seg_fkey_mask(fkey: str) -> int:
    """Segment-bloom mask of one canonical flow key."""
    key = fkey.encode("utf-8")
    mask = 0
    for salt in _SEG_FKEY_SALTS:
        mask |= 1 << (zlib.crc32(key, salt) % SEG_FKEY_BLOOM_BITS)
    return mask


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on the hot tier of a two-tier TIB.

    Attributes:
        max_records: hot-tier record-count cap (``None`` = unbounded).
        max_bytes: hot-tier ``estimated_bytes`` cap (``None`` = unbounded).

    When either bound is exceeded the TIB ages its oldest-``etime`` records
    out into the cold archive until it is back under both.
    """

    max_records: Optional[int] = None
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_records is not None and self.max_records < 0:
            raise ValueError("max_records must be non-negative")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")

    @property
    def bounded(self) -> bool:
        """Whether any bound is set at all."""
        return self.max_records is not None or self.max_bytes is not None

    def exceeded_by(self, records: int, nbytes: int) -> bool:
        """Whether a hot tier of ``records`` rows / ``nbytes`` bytes is
        over either bound."""
        if self.max_records is not None and records > self.max_records:
            return True
        return self.max_bytes is not None and nbytes > self.max_bytes


class _Segment:
    """One sealed, immutable log segment plus its pruning metadata.

    ``offsets`` maps record id -> byte offset of the id's *latest* entry
    in ``data`` (the point-lookup index a real log-structured store keeps
    per SSTable); promotion reads decode exactly one entry through it.
    ``entry_ids``/``entry_starts``/``body_offsets`` are the scan-side
    parallel arrays: one slot per log entry in append order, so a header
    scan walks encoded bytes without re-parsing the entry framing, and
    compaction can splice whole entries (``data[start:next start]``)
    without decoding them.
    """

    __slots__ = ("data", "count", "min_stime", "max_etime", "min_id",
                 "max_id", "nodes", "link_bloom", "fkey_bloom", "entry_ids",
                 "entry_starts", "body_offsets", "offsets")

    def __init__(self, data: bytes, count: int, min_stime: float,
                 max_etime: float, min_id: int, max_id: int,
                 nodes: FrozenSet[str], link_bloom: int, fkey_bloom: int,
                 entry_ids: Tuple[int, ...], entry_starts: Tuple[int, ...],
                 body_offsets: Tuple[int, ...],
                 offsets: Dict[int, int]) -> None:
        self.data = data
        self.count = count
        self.min_stime = min_stime
        self.max_etime = max_etime
        self.min_id = min_id
        self.max_id = max_id
        self.nodes = nodes
        self.link_bloom = link_bloom
        self.fkey_bloom = fkey_bloom
        self.entry_ids = entry_ids
        self.entry_starts = entry_starts
        self.body_offsets = body_offsets
        self.offsets = offsets

    def may_match(self, start: Optional[float], end: Optional[float],
                  link_tests: List[Tuple[Optional[str], int]],
                  fkey_masks: Optional[List[int]]) -> bool:
        """Zone-map + bloom pruning: can this segment hold a match?

        ``link_tests`` is the compiled link conjunction - ``(node, mask)``
        pairs where a non-``None`` node means "the segment must hold this
        path node" (exact set test, for wildcard-endpoint constraints) and
        otherwise ``mask`` must be a subset of the segment's link bloom.
        ``fkey_masks`` is the flow-key disjunction against the flow-key
        bloom.  False negatives are impossible: a pruned segment provably
        holds no matching entry (the pruning-soundness fuzz test asserts
        exactly this against brute-force decode).
        """
        if start is not None and self.max_etime < start:
            return False
        if end is not None and self.min_stime > end:
            return False
        for node, mask in link_tests:
            if node is not None:
                if node not in self.nodes:
                    return False
            elif self.link_bloom & mask != mask:
                return False
        if fkey_masks is not None:
            fkey_bloom = self.fkey_bloom
            if not any(fkey_bloom & mask == mask for mask in fkey_masks):
                return False
        return True


class ColdArchive:
    """The log-structured cold tier of one host's TIB.

    Args:
        segment_records: entries per sealed segment (the log granularity).
        compact_dead_ratio: dead-entry fraction above which a
            :meth:`take` triggers an automatic :meth:`compact`; ``None``
            disables auto-compaction.
        write_behind_records: staged evictions that force an inline
            :meth:`flush` (the write-behind buffer's bound).
    """

    #: Default entries per sealed segment.
    SEGMENT_RECORDS = 256
    #: Default dead fraction that triggers compaction.
    COMPACT_DEAD_RATIO = 0.3
    #: Minimum total entries before auto-compaction is considered.
    COMPACT_MIN_RECORDS = 64
    #: Default bound on the write-behind buffer.  Sized well above the
    #: segment granularity: evictions that merge again while still staged
    #: are folded as live objects (no decode, no dead entry), so a deeper
    #: buffer directly cheapens churn-heavy ingest.
    WRITE_BEHIND_RECORDS = 1024
    #: Bound on the decoded-entry cache serving repeated scans.
    DECODE_CACHE_ENTRIES = 4096

    def __init__(self, segment_records: int = SEGMENT_RECORDS,
                 compact_dead_ratio: Optional[float] = COMPACT_DEAD_RATIO,
                 write_behind_records: int = WRITE_BEHIND_RECORDS) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        if write_behind_records < 1:
            raise ValueError("write_behind_records must be positive")
        self.segment_records = segment_records
        self.compact_dead_ratio = compact_dead_ratio
        self.write_behind_records = write_behind_records
        self._segments: List[_Segment] = []
        # Active (unsealed) log buffer plus its index-in-progress.
        self._active = bytearray()
        self._active_count = 0
        self._active_min_stime = _INF
        self._active_max_etime = -_INF
        self._active_min_id = 0
        self._active_max_id = 0
        self._active_nodes: Set[str] = set()
        self._active_link_bloom = 0
        self._active_fkey_bloom = 0
        self._active_entry_ids: List[int] = []
        self._active_entry_starts: List[int] = []
        self._active_body_offsets: List[int] = []
        self._active_offsets: Dict[int, int] = {}
        # Write-behind buffer: evictions staged here (insertion order =
        # eviction order) until a batched flush encodes them.
        self._staged: Dict[int, Tuple[PathFlowRecord, ArchiveKey]] = {}
        self._flush_lock = threading.Lock()
        # Live-entry key index + tombstones (see the module docstring).
        self._key_index: Dict[ArchiveKey, int] = {}
        self._dead: Set[int] = set()
        # Entries superseded by a re-archival of the same id: their bytes
        # are garbage like tombstones, but the id itself is live again, so
        # they are counted instead of kept in the dead set.
        self._superseded = 0
        self._total_records = 0
        # Optional segment-parallel scan executor (see configure_scan).
        self._scan_executor = None
        # Bounded LRU of decoded entries serving the scan path, keyed by
        # (blob identity, body offset).  The value pins the blob, so the
        # id() half of the key can never be reused while the entry lives.
        # Promotion decodes bypass it entirely: promoted records are
        # merged *in place* by the hot tier, and a mutated object must
        # never be what a later scan returns.
        self._decode_cache: "OrderedDict[Tuple[int, int], Tuple[bytes, PathFlowRecord]]" = OrderedDict()
        #: Instrumentation: how often the expensive operations happen and
        #: how much work pruning avoided.
        self.stats = {"appends": 0, "takes": 0, "segments_sealed": 0,
                      "compactions": 0, "segment_decodes": 0,
                      "segments_skipped": 0, "entries_decoded": 0,
                      "entries_skipped": 0, "decode_cache_hits": 0,
                      "flushes": 0, "flushed_records": 0}

    # ------------------------------------------------------------------ writes
    def append(self, record_id: int, record: PathFlowRecord,
               key: Optional[ArchiveKey] = None) -> None:
        """Append one aged-out record under its hot-tier id, synchronously.

        ``key`` is the TIB's primary key for the record (derived when
        omitted).  The caller must not hold two live entries for the same
        key - the hot tier promotes before re-archiving.  Re-archiving an
        id that was promoted earlier is fine: the tombstone is lifted and
        the *latest* log entry for an id is authoritative everywhere.
        (The eviction fast path uses :meth:`stage` instead, deferring the
        encode to a batched flush.)
        """
        if key is None:
            key = (flow_key(record.flow_id), record.path)
        if key in self._key_index:
            raise ValueError(f"archive already holds a live entry for {key}")
        self._append_entry(record_id, record, key)
        self._maybe_compact()

    def stage(self, record_id: int, record: PathFlowRecord,
              key: Optional[ArchiveKey] = None) -> None:
        """Write-behind append - the eviction fast path.

        The entry becomes *live* immediately (``lookup``, ``take`` and
        ``live_count`` all see it) but the encode is deferred to a batched
        :meth:`flush` off the hot tier's eviction path.  Every read path
        flushes first - the flush barrier - so scans and snapshots never
        observe a torn tier.  Promoting a still-staged entry back is a
        dict pop: no log bytes, no tombstone, no compaction pressure.
        """
        if key is None:
            key = (flow_key(record.flow_id), record.path)
        if key in self._key_index:
            raise ValueError(f"archive already holds a live entry for {key}")
        self._key_index[key] = record_id
        self._staged[record_id] = (record, key)
        if len(self._staged) >= self.write_behind_records:
            self.flush()

    def flush(self) -> None:
        """Drain the write-behind buffer into the log (the flush barrier).

        Idempotent and cheap when nothing is staged; every read entry
        point calls it before touching the log.
        """
        if not self._staged:
            return
        with self._flush_lock:
            self._drain_staged()
        self._maybe_compact()

    def _drain_staged(self) -> None:
        staged = self._staged
        if not staged:
            return
        self._staged = {}
        for record_id, (record, key) in staged.items():
            self._append_entry(record_id, record, key)
        self.stats["flushes"] += 1
        self.stats["flushed_records"] += len(staged)

    def _append_entry(self, record_id: int, record: PathFlowRecord,
                      key: ArchiveKey) -> None:
        """Encode one entry into the active buffer and index it (shared by
        direct appends, write-behind flushes and compaction rewrites)."""
        wire = _codec()
        if record_id in self._dead:
            # Re-archival of a promoted id: the tombstoned entry becomes a
            # *superseded* duplicate - still garbage bytes, but the id is
            # live again, so track it by count for the compaction trigger.
            self._dead.discard(record_id)
            self._superseded += 1
        if not self._active_count:
            self._active_min_id = record_id
        start = len(self._active)
        self._active_offsets[record_id] = start
        body_offset = wire.append_record_entry(self._active, record_id,
                                               record)
        self._active_entry_ids.append(record_id)
        self._active_entry_starts.append(start)
        self._active_body_offsets.append(body_offset)
        self._active_count += 1
        self._active_max_id = max(self._active_max_id, record_id)
        self._active_min_id = min(self._active_min_id, record_id)
        if record.stime < self._active_min_stime:
            self._active_min_stime = record.stime
        if record.etime > self._active_max_etime:
            self._active_max_etime = record.etime
        if len(record.path) >= 2:
            self._active_nodes.update(record.path)
        self._active_link_bloom |= _seg_path_link_bloom(record.path)
        self._active_fkey_bloom |= _seg_fkey_mask(key[0])
        self._key_index[key] = record_id
        self._total_records += 1
        self.stats["appends"] += 1
        if self._active_count >= self.segment_records:
            self._seal_active()

    def _seal_active(self) -> None:
        """Freeze the active buffer into an immutable segment."""
        if not self._active_count:
            return
        self._segments.append(_Segment(
            bytes(self._active), self._active_count,
            self._active_min_stime, self._active_max_etime,
            self._active_min_id, self._active_max_id,
            frozenset(self._active_nodes), self._active_link_bloom,
            self._active_fkey_bloom, tuple(self._active_entry_ids),
            tuple(self._active_entry_starts),
            tuple(self._active_body_offsets), self._active_offsets))
        self.stats["segments_sealed"] += 1
        self._reset_active()

    def _reset_active(self) -> None:
        self._active = bytearray()
        self._active_count = 0
        self._active_min_stime = _INF
        self._active_max_etime = -_INF
        self._active_min_id = 0
        self._active_max_id = 0
        self._active_nodes = set()
        self._active_link_bloom = 0
        self._active_fkey_bloom = 0
        self._active_entry_ids = []
        self._active_entry_starts = []
        self._active_body_offsets = []
        self._active_offsets = {}

    def take(self, key: ArchiveKey) -> Tuple[int, PathFlowRecord]:
        """Remove and return the live entry for ``key`` (promotion path).

        Returns ``(record id, record)``.  A still-staged entry is popped
        straight out of the write-behind buffer; a logged entry's bytes
        are tombstoned in place and compaction reclaims them once enough
        pile up.  Raises :class:`KeyError` when the archive holds no live
        entry for ``key``.
        """
        record_id = self._key_index.pop(key)  # KeyError propagates
        staged = self._staged.pop(record_id, None)
        if staged is not None:
            self.stats["takes"] += 1
            return record_id, staged[0]
        record = self._find_entry(record_id, key)
        if record is None:  # pragma: no cover - index/log desync guard
            raise KeyError(f"archive log lost entry {record_id} for {key}")
        self._dead.add(record_id)
        self.stats["takes"] += 1
        self._maybe_compact()
        return record_id, record

    def lookup(self, key: ArchiveKey) -> Optional[int]:
        """The live entry id archived under ``key``, or ``None``."""
        return self._key_index.get(key)

    def _find_entry(self, record_id: int,
                    key: ArchiveKey) -> Optional[PathFlowRecord]:
        """Decode the entry ``record_id`` via the per-segment offset index.

        The log may hold several entries for one id (a promoted record
        re-archived later); the *latest* one is authoritative, so the
        active buffer is consulted first, then the sealed segments newest
        to oldest.  Exactly one entry is read - no segment scan - and the
        caller's key supplies the flow id and path outright, so the read
        skips the entry's key bytes and decodes only the time header and
        tail counters (see :func:`repro.core.wire.read_entry_tail`).  The
        decoded record is a fresh mutable object, never shared with the
        scan path's cache: the hot tier merges into promoted records in
        place.
        """
        wire = _codec()
        flow_id = parse_flow_key(key[0])
        entry_start = self._active_offsets.get(record_id)
        if entry_start is not None:
            # The reader indexes/slices the bytearray directly - no copy
            # of the whole active buffer for a point lookup.
            return wire.read_entry_tail(self._active, entry_start,
                                        flow_id, key[1])
        for segment in reversed(self._segments):
            entry_start = segment.offsets.get(record_id)
            if entry_start is not None:
                return wire.read_entry_tail(segment.data, entry_start,
                                            flow_id, key[1])
        return None

    # --------------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        ratio = self.compact_dead_ratio
        if ratio is None:
            return
        if self._total_records >= self.COMPACT_MIN_RECORDS and \
                self.dead_ratio >= ratio:
            self.compact()

    @property
    def dead_ratio(self) -> float:
        """Fraction of log entries holding garbage bytes: tombstoned ids
        plus entries superseded by a re-archival of their id."""
        total = self._total_records
        return (len(self._dead) + self._superseded) / total if total else 0.0

    def compact(self) -> None:
        """Splice-rewrite the log without its garbage entries - no decode.

        Each kept entry's bytes are copied verbatim (``data[entry start :
        next entry start]``) using the per-blob parallel arrays; an entry
        is kept iff its id is not tombstoned *and* it is the id's globally
        latest entry (resolved from the per-blob offset indexes alone, so
        superseded duplicates drop too).  Each rewritten blob inherits its
        source blob's pruning metadata - a conservative superset of what
        remains, so pruning stays false-negative-free - and neighbouring
        rewritten blobs merge (metadata union) while they fit the segment
        granularity, keeping the segment count from fragmenting under
        repeated compactions.  Write-behind entries are untouched - they
        hold no log bytes yet, so there is nothing to reclaim for them.
        """
        self.stats["compactions"] += 1
        blobs: List[Tuple] = [
            (s.data, s.entry_ids, s.entry_starts, s.body_offsets,
             s.offsets, s.min_stime, s.max_etime, s.nodes, s.link_bloom,
             s.fkey_bloom)
            for s in self._segments]
        if self._active_count:
            blobs.append((
                self._active, tuple(self._active_entry_ids),
                tuple(self._active_entry_starts),
                tuple(self._active_body_offsets), self._active_offsets,
                self._active_min_stime, self._active_max_etime,
                frozenset(self._active_nodes), self._active_link_bloom,
                self._active_fkey_bloom))
        # Globally latest entry per id: each blob's offset index already
        # holds the id's latest entry *within* the blob, and blob order is
        # log order, so a forward fold resolves duplicates with no decode.
        latest: Dict[int, Tuple[int, int]] = {}
        for blob_no, blob in enumerate(blobs):
            for record_id, entry_start in blob[4].items():
                latest[record_id] = (blob_no, entry_start)
        dead = self._dead
        pieces: List[List] = []
        for blob_no, (data, entry_ids, entry_starts, body_offsets, _off,
                      min_stime, max_etime, nodes, link_bloom,
                      fkey_bloom) in enumerate(blobs):
            out = bytearray()
            new_ids: List[int] = []
            new_starts: List[int] = []
            new_bodies: List[int] = []
            new_offsets: Dict[int, int] = {}
            blob_len = len(data)
            entries = len(entry_ids)
            for index, record_id in enumerate(entry_ids):
                start = entry_starts[index]
                if record_id in dead or \
                        latest[record_id] != (blob_no, start):
                    continue
                end = entry_starts[index + 1] if index + 1 < entries \
                    else blob_len
                new_start = len(out)
                new_offsets[record_id] = new_start
                new_ids.append(record_id)
                new_starts.append(new_start)
                new_bodies.append(body_offsets[index] - start + new_start)
                out += data[start:end]
            if new_ids:
                pieces.append([out, new_ids, new_starts, new_bodies,
                               new_offsets, min_stime, max_etime,
                               set(nodes), link_bloom, fkey_bloom])
        merged: List[List] = []
        for piece in pieces:
            if merged and len(merged[-1][1]) + len(piece[1]) <= \
                    self.segment_records:
                dst = merged[-1]
                base = len(dst[0])
                dst[0] += piece[0]
                dst[1].extend(piece[1])
                dst[2].extend(s + base for s in piece[2])
                dst[3].extend(b + base for b in piece[3])
                for record_id, entry_start in piece[4].items():
                    dst[4][record_id] = entry_start + base
                dst[5] = min(dst[5], piece[5])
                dst[6] = max(dst[6], piece[6])
                dst[7] |= piece[7]
                dst[8] |= piece[8]
                dst[9] |= piece[9]
            else:
                merged.append(piece)
        self._segments = []
        self._reset_active()
        total = 0
        for (out, ids, starts, bodies, offsets, min_stime, max_etime,
             nodes, link_bloom, fkey_bloom) in merged:
            total += len(ids)
            self._segments.append(_Segment(
                bytes(out), len(ids), min_stime, max_etime, min(ids),
                max(ids), frozenset(nodes), link_bloom, fkey_bloom,
                tuple(ids), tuple(starts), tuple(bodies), offsets))
        self._dead = set()
        self._superseded = 0
        self._total_records = total
        # Every blob was replaced; the cached decodes can never be served
        # again (new object identities), so release the pinned blobs.
        self._decode_cache.clear()

    # ------------------------------------------------------------------- reads
    def configure_scan(self, mode: str = "serial",
                       max_workers: Optional[int] = None) -> None:
        """Select the spanning-scan strategy.

        ``mode="serial"`` (the default) scans surviving segments inline;
        any executor mode (e.g. ``"concurrent"``) scatters them across the
        scatter-gather executor - segments are independent, so per-segment
        header scans run in parallel and the executor's canonical slot
        order makes the merged result identical to the serial scan by
        construction.  The lazy import mirrors :func:`_codec` (the
        executor lives above this package).
        """
        if mode == "serial":
            self._scan_executor = None
            return
        from repro.core.executor import (LoopbackTransport,
                                         ScatterGatherExecutor)
        self._scan_executor = ScatterGatherExecutor(
            LoopbackTransport(), mode=mode, max_workers=max_workers)

    def scan(self, spec: ScanSpec) -> List[Tuple[int, PathFlowRecord]]:
        """Live entries matching ``spec``, as id-ordered ``(id, record)``
        pairs - the cold half of the tiers' shared read surface.

        The pruned read path: the write-behind buffer flushes first (the
        flush barrier), whole segments are skipped on zone maps + blooms,
        surviving segments are header-scanned on encoded bytes, and only
        entries passing every encoded-byte predicate pay a full record
        decode (once per surviving id).  Each decoded record is re-checked
        against the spec's exact predicate, so bloom false positives never
        surface.

        When the log holds several entries for one id (promotion then
        re-archival), the latest is authoritative.  Pruning stays safe
        across duplicates because an id is permanently bound to one
        ``(flow key, path)`` and a record's ``stime`` only ever decreases
        / ``etime`` only ever increases: whenever a stale duplicate
        matches, the authoritative entry matches too and its segment
        survives pruning, so the log-order fold always lands on it.
        """
        self.flush()
        wire = _codec()
        stats = self.stats
        # Compile the spec once into segment-level and entry-level filters.
        link_tests: List[Tuple[Optional[str], int]] = []
        entry_masks: List[int] = []
        for a, b in spec.links:
            if a is None or b is None:
                node = a if b is None else b
                link_tests.append((node, 0))
                entry_masks.append(wire.node_bloom_mask(node))
            else:
                link_tests.append((None, _seg_link_mask(a, b)))
                entry_masks.append(wire.link_bloom_mask(a, b))
        probes: Optional[List[bytes]] = None
        fkey_masks: Optional[List[int]] = None
        if spec.flow_keys is not None:
            flow_keys = sorted(spec.flow_keys)
            probes = [wire.flow_key_probe(fkey) for fkey in flow_keys]
            fkey_masks = [_seg_fkey_mask(fkey) for fkey in flow_keys]
        candidates: List[_Segment] = []
        for segment in self._segments:
            if segment.may_match(spec.start, spec.end, link_tests,
                                 fkey_masks):
                candidates.append(segment)
            else:
                stats["segments_skipped"] += 1
        executor = self._scan_executor
        if executor is not None and len(candidates) > 1:
            def scan_segment(label: str):
                segment = candidates[int(label.rsplit("-", 1)[1])]
                return self._scan_blob(segment.data, segment.entry_ids,
                                       segment.body_offsets, spec,
                                       entry_masks, probes)
            labels = [f"segment-{i}" for i in range(len(candidates))]
            streams = executor.map_local(labels, scan_segment)
        else:
            streams = [self._scan_blob(segment.data, segment.entry_ids,
                                       segment.body_offsets, spec,
                                       entry_masks, probes)
                       for segment in candidates]
        stats["segment_decodes"] += len(candidates)
        # Fold the per-segment survivor streams in log order (latest entry
        # per id wins), then the active buffer on top.
        hits: Dict[int, Tuple[bytes, int]] = {}
        skipped = 0
        for segment, (survivors, blob_skipped) in zip(candidates, streams):
            skipped += blob_skipped
            data = segment.data
            for record_id, body_offset in survivors:
                hits[record_id] = (data, body_offset)
        if self._active_count:
            survivors, blob_skipped = self._scan_blob(
                self._active, self._active_entry_ids,
                self._active_body_offsets, spec, entry_masks, probes)
            skipped += blob_skipped
            for record_id, body_offset in survivors:
                hits[record_id] = (self._active, body_offset)
        stats["entries_skipped"] += skipped
        # Lazy decode of the survivors only, plus the exact re-check.
        # Repeated scans over a stable tier hit the bounded decoded-entry
        # cache instead of re-decoding (callers treat the returned records
        # as read-only, so sharing the decoded objects is safe; the hot
        # tier's promotion path decodes its own mutable copies).
        read = wire.read_entry_record
        cache = self._decode_cache
        cache_bound = self.DECODE_CACHE_ENTRIES
        decoded = 0
        cache_hits = 0
        results = []
        for record_id, (data, body_offset) in hits.items():
            cache_key = (id(data), body_offset)
            entry = cache.get(cache_key)
            if entry is not None:
                record = entry[1]
                cache.move_to_end(cache_key)
                cache_hits += 1
            else:
                record = read(data, body_offset)
                decoded += 1
                cache[cache_key] = (data, record)
                if len(cache) > cache_bound:
                    cache.popitem(last=False)
            if spec.matches(record):
                results.append((record_id, record))
        stats["entries_decoded"] += decoded
        stats["decode_cache_hits"] += cache_hits
        results.sort(key=lambda pair: pair[0])
        if spec.limit is not None:
            del results[spec.limit:]
        return results

    def _scan_blob(self, data: bytes, entry_ids, body_offsets,
                   spec: ScanSpec, entry_masks: List[int],
                   probes: Optional[List[bytes]]
                   ) -> Tuple[List[Tuple[int, int]], int]:
        """Header-scan one blob on encoded bytes only.

        Returns ``(survivors, skipped)`` where survivors are ``(record id,
        body offset)`` pairs in log order; nothing is decoded.  Pure with
        respect to the archive (stats fold in the caller's thread), so
        segment-parallel scans can run it concurrently.
        """
        wire = _codec()
        unpack = wire.ENTRY_FIXED.unpack_from
        flowid_offset = wire.ENTRY_FLOWID_OFFSET
        dead = self._dead
        start = spec.start
        end = spec.end
        survivors: List[Tuple[int, int]] = []
        skipped = 0
        for index, record_id in enumerate(entry_ids):
            if record_id in dead:
                continue
            body_offset = body_offsets[index]
            stime, etime, bloom = unpack(data, body_offset)
            if start is not None and etime < start:
                skipped += 1
                continue
            if end is not None and stime > end:
                skipped += 1
                continue
            rejected = False
            for mask in entry_masks:
                if bloom & mask != mask:
                    rejected = True
                    break
            if not rejected and probes is not None:
                base = body_offset + flowid_offset
                for probe in probes:
                    if data[base:base + len(probe)] == probe:
                        break
                else:
                    rejected = True
            if rejected:
                skipped += 1
                continue
            survivors.append((record_id, body_offset))
        return survivors, skipped

    def search(self, fkey: Optional[str] = None,
               start: Optional[float] = None,
               end: Optional[float] = None
               ) -> List[Tuple[int, PathFlowRecord]]:
        """Deprecated pre-:class:`ScanSpec` read surface (thin wrapper).

        Kept for callers of the original cold-tier API; equivalent to
        ``scan(ScanSpec(start=start, end=end, flow_keys={fkey}))`` and
        returns exactly what :meth:`scan` returns.
        """
        warnings.warn(
            "ColdArchive.search() is deprecated; build a ScanSpec and call "
            "scan(spec) instead", DeprecationWarning, stacklevel=2)
        flow_keys = None if fkey is None else frozenset((fkey,))
        return self.scan(ScanSpec(start=start, end=end,
                                  flow_keys=flow_keys))

    # -------------------------------------------------------------- accounting
    @property
    def live_count(self) -> int:
        """Number of live (non-tombstoned) archived records, staged
        write-behind entries included."""
        return len(self._key_index)

    @property
    def staged_count(self) -> int:
        """Entries waiting in the write-behind buffer."""
        return len(self._staged)

    @property
    def segment_count(self) -> int:
        """Number of sealed segments."""
        return len(self._segments)

    def archive_bytes(self) -> int:
        """*Measured* size of the log: the encoded bytes actually held
        (sealed segments plus the active buffer, tombstones included until
        compaction reclaims them).  Callers that must account staged
        entries too flush first (the TIB's tier accounting does)."""
        return sum(len(s.data) for s in self._segments) + len(self._active)

    def index_bytes(self) -> int:
        """Rough footprint of the archive-side index structures (the key
        index, tombstone set and per-segment pruning metadata)."""
        total = 0
        for (fkey, path), _ in self._key_index.items():
            total += len(fkey) + sum(len(node) + 2 for node in path) + 8
        total += 8 * len(self._dead)
        for segment in self._segments:
            total += 48 + sum(len(node) for node in segment.nodes)
            total += (SEG_LINK_BLOOM_BITS + SEG_FKEY_BLOOM_BITS) // 8
            total += 16 * len(segment.offsets)
            total += 20 * len(segment.entry_ids)
        total += 16 * len(self._active_offsets)
        total += 20 * len(self._active_entry_ids)
        return total

    def clear(self) -> None:
        """Drop every segment, the buffers and all indexes."""
        self._segments = []
        self._reset_active()
        self._staged = {}
        self._key_index = {}
        self._dead = set()
        self._superseded = 0
        self._total_records = 0
        self._decode_cache.clear()

    def reset_stats(self) -> None:
        """Zero the instrumentation counters (data stays intact)."""
        for key in self.stats:
            self.stats[key] = 0

    def pruning_snapshot(self) -> Dict[str, int]:
        """The cold tier's pruning counters under their tier-qualified
        names - the cold half of ``Tib.scan_stat_snapshot``.  The plan
        executor diffs two snapshots around a scan to report how much
        zone-map/bloom pruning one plan's pushed-down ``Filter`` bought.
        """
        stats = self.stats
        return {
            "cold_segments_skipped": stats["segments_skipped"],
            "cold_entries_skipped": stats["entries_skipped"],
            "cold_entries_decoded": stats["entries_decoded"],
            "cold_decode_cache_hits": stats["decode_cache_hits"],
        }
