"""Storage substrate: in-memory document store and flow-record schema."""

from repro.storage.docstore import Collection, DocumentStore, QueryError
from repro.storage.records import (PathFlowRecord, TrajectoryMemoryRecord,
                                   flow_key, parse_flow_key,
                                   records_wire_bytes)

__all__ = [
    "Collection", "DocumentStore", "QueryError",
    "PathFlowRecord", "TrajectoryMemoryRecord", "flow_key", "parse_flow_key",
    "records_wire_bytes",
]
