"""Storage substrate: in-memory document store, flow-record schema and the
log-structured cold archive of the two-tier TIB."""

from repro.storage.archive import ColdArchive, RetentionPolicy
from repro.storage.docstore import Collection, DocumentStore, QueryError
from repro.storage.records import (PathFlowRecord, ScanSpec,
                                   TrajectoryMemoryRecord, flow_key,
                                   parse_flow_key, records_wire_bytes)

__all__ = [
    "ColdArchive", "RetentionPolicy",
    "Collection", "DocumentStore", "QueryError",
    "PathFlowRecord", "ScanSpec", "TrajectoryMemoryRecord", "flow_key",
    "parse_flow_key", "records_wire_bytes",
]
