"""An in-memory document store backing the Trajectory Information Base.

The original PathDump builds its TIB on MongoDB.  Nothing in the system
depends on MongoDB specifics - the TIB needs insertion of small flow-record
documents, filtered scans (by flow, by link, by time range) and counts - so
this module provides a compact, dependency-free document store with a
Mongo-flavoured query subset:

* equality matches: ``{"field": value}``
* comparison operators: ``{"field": {"$gte": x, "$lt": y}}``
* membership: ``{"field": {"$in": [...]}}``
* containment for list-valued fields: ``{"field": {"$contains": value}}``

Single-field hash indexes accelerate equality lookups; everything else falls
back to a filtered scan.  The store also tracks an estimate of its storage
footprint so the Section 5.3 overhead numbers have a concrete counterpart.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

#: Comparison operators supported in query documents.
_OPERATORS = {
    "$eq": lambda value, ref: value == ref,
    "$ne": lambda value, ref: value != ref,
    "$gt": lambda value, ref: value is not None and value > ref,
    "$gte": lambda value, ref: value is not None and value >= ref,
    "$lt": lambda value, ref: value is not None and value < ref,
    "$lte": lambda value, ref: value is not None and value <= ref,
    "$in": lambda value, ref: value in ref,
    "$nin": lambda value, ref: value not in ref,
    "$contains": lambda value, ref: isinstance(value, (list, tuple, set))
    and ref in value,
}


class QueryError(ValueError):
    """Raised for malformed query documents."""


def _matches(document: Dict[str, Any], query: Dict[str, Any]) -> bool:
    """Evaluate a query document against one stored document."""
    for field, condition in query.items():
        value = document.get(field)
        if isinstance(condition, dict):
            for op, ref in condition.items():
                func = _OPERATORS.get(op)
                if func is None:
                    raise QueryError(f"unsupported operator {op!r}")
                if not func(value, ref):
                    return False
        else:
            if value != condition:
                return False
    return True


class Collection:
    """A named collection of documents with optional hash indexes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: List[Dict[str, Any]] = []
        self._indexes: Dict[str, Dict[Any, List[int]]] = {}
        self._next_id = 0

    # ---------------------------------------------------------------- writes
    def create_index(self, field: str) -> None:
        """Create (or rebuild) a hash index on ``field``."""
        index: Dict[Any, List[int]] = defaultdict(list)
        for position, document in enumerate(self._documents):
            if document is None:
                continue
            index[self._index_key(document.get(field))].append(position)
        self._indexes[field] = index

    def insert(self, document: Dict[str, Any]) -> int:
        """Insert a document; returns its assigned ``_id``."""
        doc = dict(document)
        doc.setdefault("_id", self._next_id)
        self._next_id += 1
        position = len(self._documents)
        self._documents.append(doc)
        for field, index in self._indexes.items():
            index.setdefault(self._index_key(doc.get(field)),
                             []).append(position)
        return doc["_id"]

    def insert_many(self, documents: Iterable[Dict[str, Any]]) -> int:
        """Insert many documents; returns the number inserted."""
        count = 0
        for document in documents:
            self.insert(document)
            count += 1
        return count

    def delete(self, query: Dict[str, Any]) -> int:
        """Delete matching documents; returns the number removed.

        Deletion marks slots as tombstones to keep index positions stable;
        :meth:`compact` reclaims the space.
        """
        removed = 0
        for position, document in enumerate(self._documents):
            if document is None:
                continue
            if _matches(document, query):
                self._documents[position] = None
                removed += 1
        if removed:
            for field in list(self._indexes):
                self.create_index(field)
        return removed

    def compact(self) -> None:
        """Drop tombstones and rebuild indexes."""
        self._documents = [d for d in self._documents if d is not None]
        for field in list(self._indexes):
            self.create_index(field)

    def clear(self) -> None:
        """Remove every document."""
        self._documents.clear()
        for index in self._indexes.values():
            index.clear()

    # ----------------------------------------------------------------- reads
    def find(self, query: Optional[Dict[str, Any]] = None,
             limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Return documents matching ``query`` (all documents when omitted)."""
        results: List[Dict[str, Any]] = []
        for document in self._candidates(query):
            if document is None:
                continue
            if query is None or _matches(document, query):
                results.append(document)
                if limit is not None and len(results) >= limit:
                    break
        return results

    def find_one(self, query: Optional[Dict[str, Any]] = None
                 ) -> Optional[Dict[str, Any]]:
        """Return one matching document or ``None``."""
        found = self.find(query, limit=1)
        return found[0] if found else None

    def count(self, query: Optional[Dict[str, Any]] = None) -> int:
        """Count matching documents."""
        if query is None:
            return sum(1 for d in self._documents if d is not None)
        return len(self.find(query))

    def distinct(self, field: str,
                 query: Optional[Dict[str, Any]] = None) -> List[Any]:
        """Distinct values of ``field`` among matching documents."""
        seen = []
        seen_keys = set()
        for document in self.find(query):
            value = document.get(field)
            key = self._index_key(value)
            if key not in seen_keys:
                seen_keys.add(key)
                seen.append(value)
        return seen

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return (d for d in self._documents if d is not None)

    # ------------------------------------------------------------- internals
    def _candidates(self, query: Optional[Dict[str, Any]]
                    ) -> Iterable[Optional[Dict[str, Any]]]:
        """Use an index for a single equality term when possible."""
        if query:
            for field, condition in query.items():
                if field in self._indexes and not isinstance(condition, dict):
                    positions = self._indexes[field].get(
                        self._index_key(condition), [])
                    return (self._documents[p] for p in positions)
        return iter(self._documents)

    @staticmethod
    def _index_key(value: Any) -> Any:
        """Hashable representation of a field value."""
        if isinstance(value, list):
            return tuple(value)
        return value

    # ------------------------------------------------------------ accounting
    def estimated_bytes(self) -> int:
        """Rough storage footprint of the collection in bytes."""
        total = 0
        for document in self._documents:
            if document is None:
                continue
            total += _estimate_document_bytes(document)
        return total


def _estimate_document_bytes(document: Dict[str, Any]) -> int:
    """Estimate the serialized size of one document."""
    total = 16  # per-document overhead
    for key, value in document.items():
        total += len(key)
        total += _estimate_value_bytes(value)
    return total


def _estimate_value_bytes(value: Any) -> int:
    if isinstance(value, str):
        return len(value) + 1
    if isinstance(value, (int, float, bool)) or value is None:
        return 8
    if isinstance(value, (list, tuple)):
        return 4 + sum(_estimate_value_bytes(v) for v in value)
    if isinstance(value, dict):
        return _estimate_document_bytes(value)
    return sys.getsizeof(value)


class DocumentStore:
    """A set of named collections (one 'database' per end host)."""

    def __init__(self) -> None:
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create the collection ``name``."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def drop(self, name: str) -> None:
        """Drop the collection ``name`` (no-op when absent)."""
        self._collections.pop(name, None)

    def collection_names(self) -> List[str]:
        """All collection names, sorted."""
        return sorted(self._collections)

    def estimated_bytes(self) -> int:
        """Total estimated footprint of the store."""
        return sum(c.estimated_bytes() for c in self._collections.values())
