"""An in-memory document store backing the Trajectory Information Base.

The original PathDump builds its TIB on MongoDB.  Nothing in the system
depends on MongoDB specifics - the TIB needs insertion of small flow-record
documents, filtered scans (by flow, by link, by time range) and counts - so
this module provides a compact, dependency-free document store with a
Mongo-flavoured query subset:

* equality matches: ``{"field": value}``
* comparison operators: ``{"field": {"$gte": x, "$lt": y}}``
* membership: ``{"field": {"$in": [...]}}``
* containment for list-valued fields: ``{"field": {"$contains": value}}``

Two index kinds accelerate queries:

* **hash indexes** (:meth:`Collection.create_index`) serve equality lookups;
* **sorted indexes** (:meth:`Collection.create_sorted_index`) serve range
  queries (``$gt``/``$gte``/``$lt``/``$lte``/``$eq``) via bisection.

All indexes are maintained *incrementally*: inserts, in-place updates
(:meth:`Collection.update`) and deletes touch only the affected postings -
there is no full index rebuild outside :meth:`Collection.create_index`,
:meth:`Collection.create_sorted_index` and :meth:`Collection.compact`.
Deletion tombstones document slots to keep index positions stable; a
compaction reclaiming the space runs automatically once the tombstone ratio
crosses ``auto_compact_ratio``.  The store also tracks an estimate of its
storage footprint so the Section 5.3 overhead numbers have a concrete
counterpart, and per-collection counters (``Collection.stats``) expose how
often full scans and index rebuilds actually happen.
"""

from __future__ import annotations

import sys
from bisect import bisect_left, bisect_right, insort
from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: Comparison operators supported in query documents.
_OPERATORS = {
    "$eq": lambda value, ref: value == ref,
    "$ne": lambda value, ref: value != ref,
    "$gt": lambda value, ref: value is not None and value > ref,
    "$gte": lambda value, ref: value is not None and value >= ref,
    "$lt": lambda value, ref: value is not None and value < ref,
    "$lte": lambda value, ref: value is not None and value <= ref,
    "$in": lambda value, ref: value in ref,
    "$nin": lambda value, ref: value not in ref,
    "$contains": lambda value, ref: isinstance(value, (list, tuple, set))
    and ref in value,
}

#: Range operators a sorted index can answer by bisection.
_RANGE_OPERATORS = ("$eq", "$gt", "$gte", "$lt", "$lte")

#: Upper sentinel for bisecting "all entries with this exact value".
_POS_INF = float("inf")


class QueryError(ValueError):
    """Raised for malformed query documents."""


def _matches(document: Dict[str, Any], query: Dict[str, Any]) -> bool:
    """Evaluate a query document against one stored document."""
    for field, condition in query.items():
        value = document.get(field)
        if isinstance(condition, dict):
            for op, ref in condition.items():
                func = _OPERATORS.get(op)
                if func is None:
                    raise QueryError(f"unsupported operator {op!r}")
                if not func(value, ref):
                    return False
        else:
            if value != condition:
                return False
    return True


class Collection:
    """A named collection of documents with hash and sorted indexes.

    Args:
        name: the collection name.
        auto_compact_ratio: tombstone fraction above which a delete triggers
            an automatic :meth:`compact` (set to ``None`` to disable).
    """

    #: Minimum number of slots before auto-compaction is considered; keeps
    #: tiny collections from compacting on every other delete.
    AUTO_COMPACT_MIN_SLOTS = 64

    def __init__(self, name: str,
                 auto_compact_ratio: Optional[float] = 0.3) -> None:
        self.name = name
        self.auto_compact_ratio = auto_compact_ratio
        self._documents: List[Optional[Dict[str, Any]]] = []
        # Serialized-size of each slot, parallel to _documents: deletes and
        # footprint accounting read the cached size instead of re-walking
        # the document (which made heavy eviction churn quadratic-ish).
        self._doc_bytes: List[int] = []
        self._id_to_pos: Dict[Any, int] = {}
        # Hash-index postings are insertion-ordered dicts (position -> None)
        # rather than lists: removal is O(1) instead of O(len(posting)),
        # which matters when one hot key (e.g. a single busy dst host)
        # accumulates most of the collection.
        self._indexes: Dict[str, Dict[Any, Dict[int, None]]] = {}
        self._sorted_indexes: Dict[str, List[Tuple[Any, int]]] = {}
        self._next_id = 0
        self._tombstones = 0
        # Incrementally maintained storage-footprint estimate: adjusted on
        # every insert/update/delete instead of walked O(n) per call.
        self._estimated_bytes = 0
        #: Instrumentation: how often expensive operations actually happen.
        self.stats = {"full_scans": 0, "index_rebuilds": 0, "compactions": 0}

    def reset_stats(self) -> None:
        """Zero the instrumentation counters (call once per experiment).

        Only the counters are touched - documents and indexes stay intact -
        so repeated benchmark runs against the same collection start from a
        clean slate instead of double-counting earlier phases.
        """
        for key in self.stats:
            self.stats[key] = 0

    # ---------------------------------------------------------------- indexes
    def create_index(self, field: str) -> None:
        """Create (or rebuild) a hash index on ``field``."""
        self.stats["index_rebuilds"] += 1
        self._build_hash_index(field)

    def create_sorted_index(self, field: str) -> None:
        """Create (or rebuild) a sorted index on ``field``.

        Sorted indexes answer range queries by bisection.  Documents whose
        ``field`` is missing or ``None`` are excluded; queries whose bounds
        are all ``None`` (e.g. ``{"$eq": None}``) therefore fall back to a
        scan instead of the index.  Values must be mutually comparable.
        """
        self.stats["index_rebuilds"] += 1
        self._build_sorted_index(field)

    def _build_hash_index(self, field: str) -> None:
        index: Dict[Any, Dict[int, None]] = defaultdict(dict)
        for position, document in enumerate(self._documents):
            if document is None:
                continue
            index[self._index_key(document.get(field))][position] = None
        self._indexes[field] = dict(index)

    def _build_sorted_index(self, field: str) -> None:
        entries = [(document[field], position)
                   for position, document in enumerate(self._documents)
                   if document is not None
                   and document.get(field) is not None]
        entries.sort()
        self._sorted_indexes[field] = entries

    # ---------------------------------------------------------------- writes
    def insert(self, document: Dict[str, Any]) -> int:
        """Insert a document; returns its assigned ``_id``."""
        doc = dict(document)
        doc.setdefault("_id", self._next_id)
        if doc["_id"] in self._id_to_pos:
            raise QueryError(f"duplicate _id {doc['_id']!r}")
        self._next_id += 1
        if isinstance(doc["_id"], int) and doc["_id"] >= self._next_id:
            self._next_id = doc["_id"] + 1
        position = len(self._documents)
        self._documents.append(doc)
        doc_bytes = _estimate_document_bytes(doc)
        self._doc_bytes.append(doc_bytes)
        self._id_to_pos[doc["_id"]] = position
        self._estimated_bytes += doc_bytes
        for field, index in self._indexes.items():
            index.setdefault(self._index_key(doc.get(field)),
                             {})[position] = None
        for field, entries in self._sorted_indexes.items():
            value = doc.get(field)
            if value is not None:
                insort(entries, (value, position))
        return doc["_id"]

    def reserve_id(self) -> int:
        """Allocate and return the next auto ``_id`` without inserting.

        For callers that route a logical row somewhere other than this
        collection (the two-tier TIB's cold-admission path) but must keep
        the id sequence identical to what :meth:`insert` would have
        assigned.  The reserved id is consumed permanently.
        """
        doc_id = self._next_id
        self._next_id += 1
        return doc_id

    def insert_many(self, documents: Iterable[Dict[str, Any]]) -> int:
        """Insert many documents; returns the number inserted."""
        count = 0
        for document in documents:
            self.insert(document)
            count += 1
        return count

    def update(self, doc_id: Any, changes: Dict[str, Any]) -> bool:
        """Update fields of the document ``doc_id`` in place.

        Indexes over the changed fields are maintained incrementally (the
        old posting is removed, the new one added); unchanged fields cost
        nothing.  Returns whether the document existed.  ``_id`` cannot be
        changed.
        """
        if "_id" in changes:
            raise QueryError("_id is immutable")
        position = self._id_to_pos.get(doc_id)
        if position is None:
            return False
        document = self._documents[position]
        for field, new_value in changes.items():
            old_value = document.get(field)
            if old_value == new_value:
                continue
            delta = _estimate_value_bytes(new_value)
            if field in document:
                delta -= _estimate_value_bytes(old_value)
            else:
                delta += len(field)
            self._estimated_bytes += delta
            self._doc_bytes[position] += delta
            index = self._indexes.get(field)
            if index is not None:
                self._posting_remove(index, self._index_key(old_value),
                                     position)
                index.setdefault(self._index_key(new_value),
                                 {})[position] = None
            entries = self._sorted_indexes.get(field)
            if entries is not None:
                if old_value is not None:
                    self._sorted_remove(entries, old_value, position)
                if new_value is not None:
                    insort(entries, (new_value, position))
            document[field] = new_value
        return True

    def delete(self, query: Dict[str, Any]) -> int:
        """Delete matching documents; returns the number removed.

        Deletion marks slots as tombstones to keep index positions stable
        and removes only the affected index postings; a tombstone-ratio
        triggered :meth:`compact` reclaims the space.
        """
        positions = self._candidate_positions(query)
        if positions is None:
            if query:
                self.stats["full_scans"] += 1
            positions = range(len(self._documents))
        removed = 0
        # Copy: postings are mutated while we iterate over them.
        for position in list(positions):
            document = self._documents[position]
            if document is None:
                continue
            if _matches(document, query):
                self._remove_at(position, document)
                removed += 1
        if removed:
            self._maybe_auto_compact()
        return removed

    def delete_by_id(self, doc_id: Any) -> bool:
        """Delete the document ``doc_id``; returns whether it existed."""
        position = self._id_to_pos.get(doc_id)
        if position is None:
            return False
        document = self._documents[position]
        self._remove_at(position, document)
        self._maybe_auto_compact()
        return True

    def _remove_at(self, position: int, document: Dict[str, Any]) -> None:
        """Tombstone one slot and strip its postings from every index."""
        self._documents[position] = None
        self._tombstones += 1
        self._estimated_bytes -= self._doc_bytes[position]
        self._doc_bytes[position] = 0
        self._id_to_pos.pop(document["_id"], None)
        for field, index in self._indexes.items():
            self._posting_remove(index, self._index_key(document.get(field)),
                                 position)
        for field, entries in self._sorted_indexes.items():
            value = document.get(field)
            if value is not None:
                self._sorted_remove(entries, value, position)

    @staticmethod
    def _posting_remove(index: Dict[Any, Dict[int, None]], key: Any,
                        position: int) -> None:
        posting = index.get(key)
        if posting is None:
            return
        posting.pop(position, None)
        if not posting:
            del index[key]

    @staticmethod
    def _sorted_remove(entries: List[Tuple[Any, int]], value: Any,
                       position: int) -> None:
        i = bisect_left(entries, (value, position))
        if i < len(entries) and entries[i] == (value, position):
            del entries[i]

    def _maybe_auto_compact(self) -> None:
        ratio = self.auto_compact_ratio
        if ratio is None:
            return
        slots = len(self._documents)
        if slots >= self.AUTO_COMPACT_MIN_SLOTS and \
                self._tombstones / slots >= ratio:
            self.compact()

    @property
    def tombstone_ratio(self) -> float:
        """Fraction of document slots holding tombstones."""
        slots = len(self._documents)
        return self._tombstones / slots if slots else 0.0

    def compact(self) -> None:
        """Drop tombstones and rebuild indexes over the compacted slots."""
        self.stats["compactions"] += 1
        self._doc_bytes = [b for d, b in zip(self._documents, self._doc_bytes)
                           if d is not None]
        self._documents = [d for d in self._documents if d is not None]
        self._tombstones = 0
        self._id_to_pos = {d["_id"]: i for i, d in enumerate(self._documents)}
        for field in self._indexes:
            self._build_hash_index(field)
        for field in self._sorted_indexes:
            self._build_sorted_index(field)

    def clear(self) -> None:
        """Remove every document."""
        self._documents.clear()
        self._doc_bytes.clear()
        self._id_to_pos.clear()
        self._tombstones = 0
        self._estimated_bytes = 0
        for index in self._indexes.values():
            index.clear()
        for entries in self._sorted_indexes.values():
            entries.clear()

    # ----------------------------------------------------------------- reads
    def get(self, doc_id: Any) -> Optional[Dict[str, Any]]:
        """Return the document with ``_id == doc_id`` (O(1)) or ``None``."""
        position = self._id_to_pos.get(doc_id)
        return self._documents[position] if position is not None else None

    def find(self, query: Optional[Dict[str, Any]] = None,
             limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Return documents matching ``query`` (all documents when omitted)."""
        results: List[Dict[str, Any]] = []
        if query is None:
            for document in self._documents:
                if document is not None:
                    results.append(document)
                    if limit is not None and len(results) >= limit:
                        break
            return results
        positions = self._candidate_positions(query)
        if positions is None:
            self.stats["full_scans"] += 1
            positions = range(len(self._documents))
        for position in positions:
            document = self._documents[position]
            if document is None:
                continue
            if _matches(document, query):
                results.append(document)
                if limit is not None and len(results) >= limit:
                    break
        return results

    def find_one(self, query: Optional[Dict[str, Any]] = None
                 ) -> Optional[Dict[str, Any]]:
        """Return one matching document or ``None``."""
        found = self.find(query, limit=1)
        return found[0] if found else None

    def count(self, query: Optional[Dict[str, Any]] = None) -> int:
        """Count matching documents.

        Counts directly over the candidate positions - no result list is
        built (``len(self.find(query))`` used to materialize every match
        just to throw it away).  Uses the same index routing as
        :meth:`find`, so the two can never disagree.
        """
        if query is None:
            return len(self._documents) - self._tombstones
        positions = self._candidate_positions(query)
        if positions is None:
            self.stats["full_scans"] += 1
            positions = range(len(self._documents))
        matched = 0
        documents = self._documents
        for position in positions:
            document = documents[position]
            if document is not None and _matches(document, query):
                matched += 1
        return matched

    def distinct(self, field: str,
                 query: Optional[Dict[str, Any]] = None) -> List[Any]:
        """Distinct values of ``field`` among matching documents."""
        seen = []
        seen_keys = set()
        for document in self.find(query):
            value = document.get(field)
            key = self._index_key(value)
            if key not in seen_keys:
                seen_keys.add(key)
                seen.append(value)
        return seen

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return (d for d in self._documents if d is not None)

    # ------------------------------------------------------------- internals
    def _candidate_positions(self, query: Dict[str, Any]
                             ) -> Optional[Iterable[int]]:
        """Narrow the scan with an index when one covers a query term.

        Returns candidate positions (a superset of the matches - ``find``
        and ``delete`` still verify every term), or ``None`` when no index
        applies and a full scan is required.
        """
        for field, condition in query.items():
            if not isinstance(condition, dict):
                if field == "_id":
                    position = self._id_to_pos.get(condition)
                    return [] if position is None else [position]
                index = self._indexes.get(field)
                if index is not None:
                    return index.get(self._index_key(condition), [])
                continue
            entries = self._sorted_indexes.get(field)
            # None bounds cannot be bisected (and None-valued documents are
            # not in the sorted index), so only non-None refs qualify.
            if entries is not None and any(condition.get(op) is not None
                                           for op in _RANGE_OPERATORS):
                return self._sorted_candidates(entries, condition)
        return None

    @staticmethod
    def _sorted_candidates(entries: List[Tuple[Any, int]],
                           condition: Dict[str, Any]) -> List[int]:
        """Bisect a sorted index down to the slice a range query allows."""
        lo, hi = 0, len(entries)
        eq = condition.get("$eq")
        if eq is not None:
            lo = max(lo, bisect_left(entries, (eq,)))
            hi = min(hi, bisect_right(entries, (eq, _POS_INF)))
        if "$gte" in condition:
            lo = max(lo, bisect_left(entries, (condition["$gte"],)))
        if "$gt" in condition:
            lo = max(lo, bisect_right(entries, (condition["$gt"], _POS_INF)))
        if "$lte" in condition:
            hi = min(hi, bisect_right(entries, (condition["$lte"], _POS_INF)))
        if "$lt" in condition:
            hi = min(hi, bisect_left(entries, (condition["$lt"],)))
        return [position for _, position in entries[lo:hi]]

    @staticmethod
    def _index_key(value: Any) -> Any:
        """Hashable representation of a field value."""
        if isinstance(value, list):
            return tuple(value)
        return value

    # ------------------------------------------------------------ accounting
    def estimated_bytes(self) -> int:
        """Rough storage footprint of the collection in bytes.

        O(1): the estimate is maintained incrementally by every
        insert/update/delete (it used to be an O(n) walk per call, which
        made per-experiment storage accounting quadratic).
        """
        return self._estimated_bytes

    def recompute_estimated_bytes(self) -> int:
        """The O(n) reference walk (cross-checks the incremental counter)."""
        total = 0
        for document in self._documents:
            if document is None:
                continue
            total += _estimate_document_bytes(document)
        return total


def _estimate_document_bytes(document: Dict[str, Any]) -> int:
    """Estimate the serialized size of one document."""
    total = 16  # per-document overhead
    for key, value in document.items():
        total += len(key)
        total += _estimate_value_bytes(value)
    return total


def _estimate_value_bytes(value: Any) -> int:
    if isinstance(value, str):
        # UTF-8 length, not code-point count: non-ASCII characters occupy
        # 2-4 bytes serialized, and the wire codec measures them that way.
        # (For ASCII - the overwhelmingly common case on this write path -
        # the code-point count already is the UTF-8 length; isascii()
        # avoids allocating an encoded copy per string per insert.)
        if value.isascii():
            return len(value) + 1
        return len(value.encode("utf-8")) + 1
    if isinstance(value, (int, float, bool)) or value is None:
        return 8
    if isinstance(value, (list, tuple)):
        return 4 + sum(_estimate_value_bytes(v) for v in value)
    if isinstance(value, dict):
        return _estimate_document_bytes(value)
    return sys.getsizeof(value)


class DocumentStore:
    """A set of named collections (one 'database' per end host)."""

    def __init__(self) -> None:
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create the collection ``name``."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def drop(self, name: str) -> None:
        """Drop the collection ``name`` (no-op when absent)."""
        self._collections.pop(name, None)

    def collection_names(self) -> List[str]:
        """All collection names, sorted."""
        return sorted(self._collections)

    def estimated_bytes(self) -> int:
        """Total estimated footprint of the store."""
        return sum(c.estimated_bytes() for c in self._collections.values())

    def reset_stats(self) -> None:
        """Zero the instrumentation counters of every collection."""
        for collection in self._collections.values():
            collection.reset_stats()
