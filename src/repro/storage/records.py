"""Flow-record schema shared by the trajectory memory and the TIB.

Section 3.2 of the paper defines the TIB record as

    ``<flow ID, path, stime, etime, #bytes, #pkts>``

and the trajectory-memory record as the pre-path-construction variant keyed
by ``(flow ID, link IDs)``.  This module defines both as slotted dataclasses
(the trajectory-memory record is allocated on the packet fast path, the TIB
record once per stored row) plus the (de)serialisation to the plain-dict
documents stored in the :class:`~repro.storage.docstore.DocumentStore`,
along with the payload-size estimator used by the query traffic-volume
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.network.packet import FlowId


def is_wild(value) -> bool:
    """Whether a link-endpoint / time-bound value is a wildcard.

    The canonical wildcard test of the query API (``None``, ``"*"`` or
    ``"?"``), shared by :class:`ScanSpec` and the TIB's constraint helpers
    so the two can never diverge.
    """
    return value is None or value in ("*", "?")

#: *Estimated* wire size (bytes) of one serialized TIB record; derived from
#: the field sizes (5-tuple ~ 13 B, timestamps 2 x 8 B, counters 2 x 8 B,
#: path as a list of 2-byte switch indices).  Reported record sizes are
#: measured against the real :mod:`repro.core.wire` codec now; this estimate
#: survives as a cross-check (see ``estimated_wire_bytes``).
RECORD_FIXED_BYTES = 13 + 16 + 16


@dataclass(slots=True)
class PathFlowRecord:
    """A per-path flow record (one row of the TIB).

    Attributes:
        flow_id: the flow's 5-tuple.
        path: the end-to-end switch path (source ToR .. destination ToR).
        stime: time the first packet of this record was observed.
        etime: time the last packet was observed.
        bytes: bytes observed.
        pkts: packets observed.
    """

    flow_id: FlowId
    path: Tuple[str, ...]
    stime: float
    etime: float
    bytes: int = 0
    pkts: int = 0
    #: Lazily computed set of the path's directed link pairs; ``path`` never
    #: changes once the record is stored, so the set is computed at most once.
    _link_pairs: Optional[FrozenSet[Tuple[str, str]]] = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------- accessors
    @property
    def duration(self) -> float:
        """Observed duration of this record in seconds."""
        return max(0.0, self.etime - self.stime)

    def links(self) -> List[Tuple[str, str]]:
        """Directed links along the recorded path."""
        return list(zip(self.path, self.path[1:]))

    def link_pairs(self) -> FrozenSet[Tuple[str, str]]:
        """The path's directed links as a (cached) frozen set."""
        pairs = self._link_pairs
        if pairs is None:
            pairs = frozenset(zip(self.path, self.path[1:]))
            self._link_pairs = pairs
        return pairs

    def traverses_link(self, a: str, b: str) -> bool:
        """Whether the record's path uses the (undirected) link ``a``-``b``."""
        pairs = self.link_pairs()
        return (a, b) in pairs or (b, a) in pairs

    def update(self, nbytes: int, npkts: int, when: float) -> None:
        """Fold another observation into this record.

        Reference implementation of the fold: the TIB's merge path
        (``Tib._merge_into``) inlines this arithmetic for speed and must
        stay equivalent.
        """
        self.bytes += nbytes
        self.pkts += npkts
        if when < self.stime:
            self.stime = when
        if when > self.etime:
            self.etime = when

    # ---------------------------------------------------------- serialization
    def to_document(self) -> Dict[str, Any]:
        """Serialise to a plain-dict document for the document store."""
        return {
            "src_ip": self.flow_id.src_ip,
            "dst_ip": self.flow_id.dst_ip,
            "src_port": self.flow_id.src_port,
            "dst_port": self.flow_id.dst_port,
            "protocol": self.flow_id.protocol,
            "flow_key": flow_key(self.flow_id),
            "path": list(self.path),
            "stime": self.stime,
            "etime": self.etime,
            "bytes": self.bytes,
            "pkts": self.pkts,
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "PathFlowRecord":
        """Reconstruct a record from its document form."""
        flow_id = FlowId(document["src_ip"], document["dst_ip"],
                         document["src_port"], document["dst_port"],
                         document["protocol"])
        return cls(flow_id=flow_id, path=tuple(document["path"]),
                   stime=document["stime"], etime=document["etime"],
                   bytes=document["bytes"], pkts=document["pkts"])

    def wire_bytes(self) -> int:
        """Measured serialized size in a query response (codec body bytes)."""
        from repro.core import wire
        return wire.record_wire_bytes(self)

    def estimated_wire_bytes(self) -> int:
        """The pre-codec size estimate (cross-check only)."""
        return RECORD_FIXED_BYTES + 2 * len(self.path)


@dataclass(slots=True)
class TrajectoryMemoryRecord:
    """A per-path flow record *before* path construction.

    This is what the modified OVS maintains: the packet's link-ID samples are
    still raw (not yet resolved against the topology), and the record is
    evicted to the TIB on FIN/RST or after an idle timeout.
    """

    flow_id: FlowId
    link_ids: Tuple[int, ...]
    stime: float
    etime: float
    bytes: int = 0
    pkts: int = 0
    src_host: str = ""

    def update(self, nbytes: int, when: float) -> None:
        """Fold one more packet into the record.

        Reference implementation of the per-packet fold: the fast path
        (``TrajectoryMemory.update``) inlines this arithmetic and must
        stay equivalent.
        """
        self.bytes += nbytes
        self.pkts += 1
        if when < self.stime:
            self.stime = when
        if when > self.etime:
            self.etime = when

    @property
    def idle_for(self) -> float:
        """Helper for eviction: seconds since the last update (needs now)."""
        return self.etime


@lru_cache(maxsize=1 << 16)
def flow_key(flow_id: FlowId) -> str:
    """Canonical string key for a flow (used as an index field).

    Uses ``|`` as the field separator because host names themselves contain
    dashes and colons are used inside the endpoint fields.  The result is
    memoized per flow ID: building the string once per *flow* instead of
    once per call keeps repeated key derivations (record upserts, query
    grouping) off the hot paths.
    """
    return (f"{flow_id.src_ip}:{flow_id.src_port}|{flow_id.dst_ip}:"
            f"{flow_id.dst_port}|{flow_id.protocol}")


@lru_cache(maxsize=1 << 16)
def parse_flow_key(key: str) -> FlowId:
    """Inverse of :func:`flow_key` (memoized like its counterpart: the
    archive's promotion path re-parses the same live keys repeatedly)."""
    left, right, proto = key.split("|")
    src_ip, src_port = left.rsplit(":", 1)
    dst_ip, dst_port = right.rsplit(":", 1)
    return FlowId(src_ip, dst_ip, int(src_port), int(dst_port), int(proto))


#: The record schema as the declarative plan IR sees it: the addressable
#: field names of one :class:`PathFlowRecord`, in canonical (emission)
#: order.  ``flow`` is the canonical :func:`flow_key` string, not the raw
#: :class:`FlowId` - plans group and rank by the same key the TIB's flow
#: index and per-flow aggregates use.
RECORD_FIELDS: Tuple[str, ...] = ("flow", "path", "stime", "etime",
                                  "bytes", "pkts")


def record_field(record: PathFlowRecord, name: str) -> Any:
    """Read one schema field off a record (the plan IR's field accessor).

    Shared by the plan reference evaluator and the pushdown executor so a
    field name can never mean two different things on the two paths.
    """
    if name == "flow":
        return flow_key(record.flow_id)
    if name in ("path", "stime", "etime", "bytes", "pkts"):
        return getattr(record, name)
    raise KeyError(f"unknown record field {name!r}")


@dataclass(frozen=True)
class ScanSpec:
    """One declarative read request, implemented by both storage tiers.

    ``Tib.scan`` (hot) and ``ColdArchive.scan`` (cold) both take a spec and
    return id-ordered ``(record id, record)`` pairs, so the tier-spanning
    merge and the built-in query handlers are written once against a single
    surface instead of the old divergent ``_hot_pairs`` /
    ``search(fkey=, start=, end=)`` pair.

    Attributes:
        start: inclusive window start, or ``None`` for open-ended.  A record
            matches when its *observed interval* overlaps the window
            (``etime >= start and stime <= end``), same as the TIB's
            ``record_in_range``.
        end: inclusive window end, or ``None``.
        links: conjunction of link constraints ``(a, b)``.  An endpoint may
            be a wildcard (``None``/``"*"``/``"?"``, normalised to ``None``),
            meaning "path traverses this node"; a fully-wild pair constrains
            nothing and is dropped.  Concrete pairs are undirected.
        flow_keys: disjunction of canonical flow keys (see
            :func:`flow_key`), or ``None`` for unconstrained.
        limit: keep only the first ``limit`` pairs in id order, or ``None``.
    """

    start: Optional[float] = None
    end: Optional[float] = None
    links: Tuple[Tuple[Optional[str], Optional[str]], ...] = ()
    flow_keys: Optional[FrozenSet[str]] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        start = None if is_wild(self.start) else float(self.start)
        end = None if is_wild(self.end) else float(self.end)
        if start is not None and end is not None and end < start:
            raise ValueError(
                f"scan window end ({end}) precedes start ({start})")
        links = []
        for a, b in self.links:
            a = None if is_wild(a) else a
            b = None if is_wild(b) else b
            if a is None and b is None:
                continue
            links.append((a, b))
        flow_keys = self.flow_keys
        if flow_keys is not None and not isinstance(flow_keys, frozenset):
            flow_keys = frozenset(flow_keys)
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"scan limit must be >= 0, got {self.limit}")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)
        object.__setattr__(self, "links", tuple(links))
        object.__setattr__(self, "flow_keys", flow_keys)

    @property
    def unconstrained(self) -> bool:
        """True when every record matches (limit aside)."""
        return (self.start is None and self.end is None
                and not self.links and self.flow_keys is None)

    def matches(self, record: PathFlowRecord) -> bool:
        """Exact predicate — the reference semantics for the pruned scan.

        Pruned/bloomed scan paths may only ever *skip* work this predicate
        would reject; every candidate they surface is re-verified against it
        (the pruning-soundness fuzz test checks exactly this equivalence).
        """
        if self.start is not None and record.etime < self.start:
            return False
        if self.end is not None and record.stime > self.end:
            return False
        if (self.flow_keys is not None
                and flow_key(record.flow_id) not in self.flow_keys):
            return False
        for a, b in self.links:
            if a is None or b is None:
                node = a if b is None else b
                if len(record.path) < 2 or node not in record.path:
                    return False
            elif not record.traverses_link(a, b):
                return False
        return True


def records_wire_bytes(records: Sequence[PathFlowRecord]) -> int:
    """Total measured serialized size of the records in a batch.

    Sums the codec body bytes of each record; the full batch frame adds
    only a fixed header plus a count varint on top (see
    :func:`repro.core.wire.encode_record_batch`).
    """
    from repro.core import wire
    return sum(wire.record_wire_bytes(r) for r in records)
