"""Multi-level aggregation trees for distributed queries.

Inspired by Dremel and iMR, PathDump's controller can distribute a query
along a *multi-level aggregation tree*: every interior node executes the
query on its local TIB, forwards query+tree to its children, and merges the
children's partial results before passing a single (reduced) result upward
(Section 3.2).  The evaluation uses a logical 4-level tree over 112 end
hosts: 7 children under the controller, each with 4 children, each of those
with 4 leaves.

:class:`AggregationTree` builds such trees for arbitrary host counts and
exposes the per-level structure the query executor and the response-time
model need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: The fan-outs of the paper's 4-level tree (controller -> 7 -> 4 -> 4).
PAPER_TREE_FANOUT = (7, 4, 4)

#: *Estimated* serialized bytes of a subtree-description message: fixed
#: framing plus one entry per host in the subtree.  The description rides
#: in the same (batched) request message as the query itself.  Reported
#: spec sizes are measured against the real :mod:`repro.core.wire` codec
#: now; the estimate survives as a cross-check.
SPEC_BASE_BYTES = 16
SPEC_HOST_BYTES = 8


@dataclass
class TreeNode:
    """One node of the aggregation tree.

    Attributes:
        host: the end host this node runs on (``None`` for the controller
            root, which runs no local query).
        children: child nodes.
        level: 0 for the root (controller), increasing downward.
    """

    host: Optional[str]
    children: List["TreeNode"] = field(default_factory=list)
    level: int = 0

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    def descend(self) -> List["TreeNode"]:
        """All nodes of the subtree rooted here (pre-order)."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.descend())
        return nodes

    def subtree_host_count(self) -> int:
        """Number of end hosts in this subtree (including this node)."""
        count = 1 if self.host is not None else 0
        for child in self.children:
            count += child.subtree_host_count()
        return count

    def subtree_hosts(self) -> List[str]:
        """Every host in this subtree (including this node), pre-order."""
        hosts = [] if self.host is None else [self.host]
        for child in self.children:
            hosts.extend(child.subtree_hosts())
        return hosts

    def subtree_spec(self):
        """The wire-codec description of this node's subtree.

        A parent forwarding a multi-level query tells each child which part
        of the tree it is responsible for; this is the message that rides
        in the batched request frame next to the query.
        """
        from repro.core import wire
        return wire.SubtreeSpec(self.host or "", tuple(self.subtree_hosts()))

    def subtree_spec_bytes(self) -> int:
        """Measured serialized size of this node's subtree description."""
        from repro.core import wire
        return len(wire.encode_subtree_spec(self.subtree_spec()))

    def estimated_spec_bytes(self) -> int:
        """The pre-codec size estimate (cross-check only)."""
        return SPEC_BASE_BYTES + SPEC_HOST_BYTES * self.subtree_host_count()


class AggregationTree:
    """A multi-level aggregation tree over a set of end hosts.

    Args:
        hosts: the hosts participating in the query.
        fanout: children per node at each level below the controller; the
            last fan-out is reused if the tree needs to be deeper.  Defaults
            to the paper's (7, 4, 4) structure.
    """

    def __init__(self, hosts: Sequence[str],
                 fanout: Sequence[int] = PAPER_TREE_FANOUT) -> None:
        if not hosts:
            raise ValueError("aggregation tree needs at least one host")
        if any(f < 1 for f in fanout):
            raise ValueError("fan-out values must be positive")
        self.hosts = list(hosts)
        self.fanout = tuple(fanout)
        self.root = self._build()

    # ------------------------------------------------------------------ build
    def _build(self) -> TreeNode:
        """Assign hosts to tree positions level by level (breadth-first).

        Every tree node (except the controller root) is an end host that both
        executes the query locally and aggregates its children's results, so
        hosts are consumed by interior levels first and remaining hosts
        become leaves.
        """
        root = TreeNode(host=None, level=0)
        remaining = list(self.hosts)
        frontier = [root]
        level = 0
        while remaining:
            fanout = self.fanout[min(level, len(self.fanout) - 1)]
            next_frontier: List[TreeNode] = []
            for parent in frontier:
                for _ in range(fanout):
                    if not remaining:
                        break
                    node = TreeNode(host=remaining.pop(0), level=level + 1)
                    parent.children.append(node)
                    next_frontier.append(node)
            if not next_frontier:
                break
            frontier = next_frontier
            level += 1
        return root

    # ------------------------------------------------------------------ views
    def depth(self) -> int:
        """Number of host levels (excluding the controller root)."""
        return max(node.level for node in self.root.descend())

    def nodes(self) -> List[TreeNode]:
        """Every node including the root, pre-order."""
        return self.root.descend()

    def host_nodes(self) -> List[TreeNode]:
        """Every node that runs on an end host."""
        return [n for n in self.nodes() if n.host is not None]

    def levels(self) -> Dict[int, List[TreeNode]]:
        """Nodes grouped by level."""
        grouped: Dict[int, List[TreeNode]] = {}
        for node in self.nodes():
            grouped.setdefault(node.level, []).append(node)
        return grouped

    def parent_child_edges(self) -> List[Tuple[Optional[str], str]]:
        """(parent host, child host) pairs; parent ``None`` is the controller."""
        edges: List[Tuple[Optional[str], str]] = []
        for node in self.nodes():
            for child in node.children:
                edges.append((node.host, child.host))
        return edges

    def validate(self) -> None:
        """Sanity-check the construction (every host appears exactly once)."""
        assigned = [n.host for n in self.host_nodes()]
        if sorted(assigned) != sorted(self.hosts):
            raise RuntimeError("aggregation tree lost or duplicated hosts")
