"""Active TCP performance monitoring at the end host.

"Servers are a right vantage point to instantly sense the symptoms like TCP
timeouts, high retransmission rates, large RTT and low throughput"
(Section 3.2).  The original system samples ``tcpretrans`` periodically; this
module keeps the equivalent per-flow retransmission ledger, fed by the
transport models, and implements:

* ``getPoorTCPFlows(threshold)`` from the host API - flows whose consecutive
  retransmissions exceed a threshold;
* the periodic monitoring check (default period 200 ms, "default TCP timeout
  value") that raises ``POOR_PERF`` alarms towards the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.alarms import POOR_PERF, Alarm
from repro.network.packet import FlowId

#: Default monitoring period in seconds (the paper's 200 ms).
DEFAULT_MONITOR_PERIOD_S = 0.2

#: Default consecutive-retransmission threshold for "poor" TCP flows.
DEFAULT_POOR_THRESHOLD = 3


@dataclass
class TcpFlowStats:
    """Per-flow TCP health statistics maintained by the monitor."""

    flow_id: FlowId
    retransmissions: int = 0
    consecutive_retransmissions: int = 0
    max_consecutive_retransmissions: int = 0
    timeouts: int = 0
    bytes_sent: int = 0
    last_update: float = 0.0
    alerted: bool = False

    def record_retransmissions(self, count: int, consecutive: int,
                               when: float) -> None:
        """Fold a retransmission observation into the statistics."""
        self.retransmissions += count
        self.consecutive_retransmissions = consecutive
        self.max_consecutive_retransmissions = max(
            self.max_consecutive_retransmissions, consecutive)
        self.last_update = when


class ActiveMonitor:
    """The end host's TCP performance monitor.

    Args:
        host: the owning end host.
        alarm_sink: callback receiving :class:`Alarm` objects (the agent
            wires this to the controller's alarm bus).
        period: monitoring period in seconds.
        poor_threshold: consecutive-retransmission threshold used by the
            periodic check and ``getPoorTCPFlows``'s default.
    """

    def __init__(self, host: str,
                 alarm_sink: Optional[Callable[[Alarm], None]] = None,
                 period: float = DEFAULT_MONITOR_PERIOD_S,
                 poor_threshold: int = DEFAULT_POOR_THRESHOLD) -> None:
        self.host = host
        self.alarm_sink = alarm_sink
        self.period = period
        self.poor_threshold = poor_threshold
        self.flows: Dict[FlowId, TcpFlowStats] = {}
        self.alerts_raised = 0

    # ---------------------------------------------------------------- updates
    def observe_flow(self, flow_id: FlowId, *, retransmissions: int = 0,
                     consecutive: int = 0, timeouts: int = 0,
                     bytes_sent: int = 0, when: float = 0.0) -> TcpFlowStats:
        """Record TCP health observations for one locally-originated flow."""
        stats = self.flows.get(flow_id)
        if stats is None:
            stats = TcpFlowStats(flow_id=flow_id)
            self.flows[flow_id] = stats
        stats.record_retransmissions(retransmissions, consecutive, when)
        stats.timeouts += timeouts
        stats.bytes_sent += bytes_sent
        return stats

    def observe_transfer(self, result, when: Optional[float] = None) -> None:
        """Convenience hook for transport results.

        Accepts any object exposing ``flow_id``, ``retransmissions``,
        ``max_consecutive_retransmissions``, ``timeouts`` and either
        ``bytes_delivered`` or ``size`` (both transport models qualify).
        """
        bytes_sent = getattr(result, "bytes_delivered", None)
        if bytes_sent is None:
            bytes_sent = getattr(result, "size", 0)
        finish = when
        if finish is None:
            finish = getattr(result, "finish_time", None) or getattr(
                result, "completion_time", None) or 0.0
        self.observe_flow(result.flow_id,
                          retransmissions=result.retransmissions,
                          consecutive=result.max_consecutive_retransmissions,
                          timeouts=result.timeouts,
                          bytes_sent=bytes_sent, when=finish)

    # ---------------------------------------------------------------- queries
    def get_poor_tcp_flows(self, threshold: Optional[int] = None
                           ) -> List[FlowId]:
        """``getPoorTCPFlows(Threshold)`` from the host API."""
        limit = self.poor_threshold if threshold is None else threshold
        return [flow_id for flow_id, stats in self.flows.items()
                if stats.max_consecutive_retransmissions >= limit
                or stats.timeouts > 0]

    def stats_for(self, flow_id: FlowId) -> Optional[TcpFlowStats]:
        """Statistics for one flow (``None`` when unknown)."""
        return self.flows.get(flow_id)

    # ------------------------------------------------------------ periodic run
    def run_check(self, now: float,
                  threshold: Optional[int] = None) -> List[Alarm]:
        """Run one periodic monitoring check and raise POOR_PERF alarms.

        Each poor flow is alerted at most once (the controller pulls the
        paths afterwards; re-alerting the same flow adds nothing).
        """
        alarms: List[Alarm] = []
        for flow_id in self.get_poor_tcp_flows(threshold):
            stats = self.flows[flow_id]
            if stats.alerted:
                continue
            stats.alerted = True
            alarm = Alarm(flow_id=flow_id, reason=POOR_PERF, paths=[],
                          host=self.host, time=now,
                          detail=(f"retx={stats.retransmissions}, "
                                  f"streak={stats.max_consecutive_retransmissions}, "
                                  f"timeouts={stats.timeouts}"))
            alarms.append(alarm)
            self.alerts_raised += 1
            if self.alarm_sink is not None:
                self.alarm_sink(alarm)
        return alarms

    def reset(self) -> None:
        """Forget every flow (new measurement interval)."""
        self.flows.clear()
