"""Active TCP performance monitoring at the end host.

"Servers are a right vantage point to instantly sense the symptoms like TCP
timeouts, high retransmission rates, large RTT and low throughput"
(Section 3.2).  The original system samples ``tcpretrans`` periodically; this
module keeps the equivalent per-flow retransmission ledger, fed by the
transport models, and implements:

* ``getPoorTCPFlows(threshold)`` from the host API - flows whose consecutive
  retransmissions exceed a threshold;
* the periodic monitoring check (default period 200 ms, "default TCP timeout
  value") that raises ``POOR_PERF`` alarms towards the controller.

The monitor participates in the event plane: every ``observe_flow`` call is
normalised into a :class:`TransferObservation` and mirrored to an optional
``observation_sink`` (the cluster's process mode streams these to the
host's agent-server worker, exactly like TIB writes flow through
``record_sink``), and the full monitor state can be snapshotted/restored so
a freshly started worker begins from the same ledger - including the
per-flow ``alerted`` latches that make alerting at-most-once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.alarms import POOR_PERF, Alarm
from repro.network.packet import FlowId

#: Default monitoring period in seconds (the paper's 200 ms).
DEFAULT_MONITOR_PERIOD_S = 0.2

#: Default consecutive-retransmission threshold for "poor" TCP flows.
DEFAULT_POOR_THRESHOLD = 3


class TransferObservation(NamedTuple):
    """One normalised TCP health observation for a flow.

    This is the unit of the event-plane ingest stream: whatever shape the
    transport models hand to :meth:`ActiveMonitor.observe_flow` /
    :meth:`ActiveMonitor.observe_transfer`, the monitor folds it into its
    ledger *and* forwards this canonical tuple to its ``observation_sink``,
    so a mirrored monitor replaying the stream reaches byte-identical
    state.
    """

    flow_id: FlowId
    retransmissions: int
    consecutive: int
    timeouts: int
    bytes_sent: int
    when: float


@dataclass
class TcpFlowStats:
    """Per-flow TCP health statistics maintained by the monitor."""

    flow_id: FlowId
    retransmissions: int = 0
    consecutive_retransmissions: int = 0
    max_consecutive_retransmissions: int = 0
    timeouts: int = 0
    bytes_sent: int = 0
    last_update: float = 0.0
    alerted: bool = False

    def record_retransmissions(self, count: int, consecutive: int,
                               when: float) -> None:
        """Fold a retransmission observation into the statistics."""
        self.retransmissions += count
        self.consecutive_retransmissions = consecutive
        self.max_consecutive_retransmissions = max(
            self.max_consecutive_retransmissions, consecutive)
        self.last_update = when


class MonitorSnapshot(NamedTuple):
    """The full state of one :class:`ActiveMonitor`.

    Shipped over the wire (``MSG_MONITOR_STATE``) when agent-server workers
    start, so the worker's monitor begins exactly where the local one is -
    flows in insertion order (``getPoorTCPFlows`` payload identity depends
    on it) and ``alerted`` latches intact (at-most-once alerting must not
    restart when the monitor moves host-side).

    The same frame re-seeds a worker the supervisor restarts, and the
    latch semantics compose: the local mirror only latches a flow when
    the controller actually dispatches its alarm, so a worker that died
    with undelivered alarms is re-seeded *unlatched* for exactly those
    flows - it re-raises them on the next sweep and the controller's bus
    still sees every alert at most once.
    """

    host: str
    period: float
    poor_threshold: int
    alerts_raised: int
    flows: Tuple[TcpFlowStats, ...]


class ActiveMonitor:
    """The end host's TCP performance monitor.

    Args:
        host: the owning end host.
        alarm_sink: callback receiving :class:`Alarm` objects (the agent
            wires this to the controller's alarm bus; inside an agent-server
            worker it feeds the pending-alarm queue drained over the wire).
        period: monitoring period in seconds.
        poor_threshold: consecutive-retransmission threshold used by the
            periodic check and ``getPoorTCPFlows``'s default.
    """

    def __init__(self, host: str,
                 alarm_sink: Optional[Callable[[Alarm], None]] = None,
                 period: float = DEFAULT_MONITOR_PERIOD_S,
                 poor_threshold: int = DEFAULT_POOR_THRESHOLD) -> None:
        self.host = host
        self.alarm_sink = alarm_sink
        self.period = period
        self.poor_threshold = poor_threshold
        self.flows: Dict[FlowId, TcpFlowStats] = {}
        self.alerts_raised = 0
        #: Optional mirror for observations: every observation folded into
        #: this monitor is also handed to this callable as a (batched)
        #: sequence of :class:`TransferObservation`.  The cluster's process
        #: mode uses it to stream encoded observation batches to the host's
        #: agent-server worker, keeping the worker monitor in sync with
        #: every ingest path (flow outcomes, TCP results, direct
        #: ``observe_flow`` calls through the agent).
        self.observation_sink: Optional[
            Callable[[Sequence[TransferObservation]], None]] = None

    # ---------------------------------------------------------------- updates
    def observe_flow(self, flow_id: FlowId, *, retransmissions: int = 0,
                     consecutive: int = 0, timeouts: int = 0,
                     bytes_sent: int = 0, when: float = 0.0) -> TcpFlowStats:
        """Record TCP health observations for one locally-originated flow."""
        stats = self.flows.get(flow_id)
        if stats is None:
            stats = TcpFlowStats(flow_id=flow_id)
            self.flows[flow_id] = stats
        stats.record_retransmissions(retransmissions, consecutive, when)
        stats.timeouts += timeouts
        stats.bytes_sent += bytes_sent
        if self.observation_sink is not None:
            self.observation_sink((TransferObservation(
                flow_id, retransmissions, consecutive, timeouts, bytes_sent,
                when),))
        return stats

    def apply_observation(self, observation: TransferObservation
                          ) -> TcpFlowStats:
        """Fold one canonical observation into the ledger (mirror replay)."""
        return self.observe_flow(
            observation.flow_id,
            retransmissions=observation.retransmissions,
            consecutive=observation.consecutive,
            timeouts=observation.timeouts,
            bytes_sent=observation.bytes_sent,
            when=observation.when)

    def observe_transfer(self, result, when: Optional[float] = None) -> None:
        """Convenience hook for transport results.

        Accepts any object exposing ``flow_id``, ``retransmissions``,
        ``max_consecutive_retransmissions``, ``timeouts`` and either
        ``bytes_delivered`` or ``size`` (both transport models qualify).
        """
        bytes_sent = getattr(result, "bytes_delivered", None)
        if bytes_sent is None:
            bytes_sent = getattr(result, "size", 0)
        finish = when
        if finish is None:
            finish = getattr(result, "finish_time", None) or getattr(
                result, "completion_time", None) or 0.0
        self.observe_flow(result.flow_id,
                          retransmissions=result.retransmissions,
                          consecutive=result.max_consecutive_retransmissions,
                          timeouts=result.timeouts,
                          bytes_sent=bytes_sent, when=finish)

    # ---------------------------------------------------------------- queries
    def get_poor_tcp_flows(self, threshold: Optional[int] = None
                           ) -> List[FlowId]:
        """``getPoorTCPFlows(Threshold)`` from the host API."""
        limit = self.poor_threshold if threshold is None else threshold
        return [flow_id for flow_id, stats in self.flows.items()
                if stats.max_consecutive_retransmissions >= limit
                or stats.timeouts > 0]

    def stats_for(self, flow_id: FlowId) -> Optional[TcpFlowStats]:
        """Statistics for one flow (``None`` when unknown)."""
        return self.flows.get(flow_id)

    # ------------------------------------------------------------ periodic run
    def run_check(self, now: float,
                  threshold: Optional[int] = None) -> List[Alarm]:
        """Run one periodic monitoring check and raise POOR_PERF alarms.

        Each poor flow is alerted at most once (the controller pulls the
        paths afterwards; re-alerting the same flow adds nothing).
        """
        alarms: List[Alarm] = []
        for flow_id in self.get_poor_tcp_flows(threshold):
            stats = self.flows[flow_id]
            if stats.alerted:
                continue
            stats.alerted = True
            alarm = Alarm(flow_id=flow_id, reason=POOR_PERF, paths=[],
                          host=self.host, time=now,
                          detail=(f"retx={stats.retransmissions}, "
                                  f"streak={stats.max_consecutive_retransmissions}, "
                                  f"timeouts={stats.timeouts}"))
            alarms.append(alarm)
            self.alerts_raised += 1
            if self.alarm_sink is not None:
                self.alarm_sink(alarm)
        return alarms

    def mark_alerted(self, flow_id: FlowId) -> bool:
        """Latch a flow as already-alerted (and count the alert).

        Used when the alert was raised by this monitor's *mirror* - the
        agent-server worker whose tick produced the alarm - so the local
        ledger stays coherent: a later local check must not re-raise the
        alarm the controller already received over the wire.  Returns
        whether the latch was newly set.
        """
        stats = self.flows.get(flow_id)
        if stats is None or stats.alerted:
            return False
        stats.alerted = True
        self.alerts_raised += 1
        return True

    # ------------------------------------------------------- snapshot/restore
    def snapshot(self) -> MonitorSnapshot:
        """The monitor's full state (flows in insertion order)."""
        return MonitorSnapshot(host=self.host, period=self.period,
                               poor_threshold=self.poor_threshold,
                               alerts_raised=self.alerts_raised,
                               flows=tuple(self.flows.values()))

    def restore(self, snapshot: MonitorSnapshot) -> None:
        """Replace this monitor's state with ``snapshot``.

        Adopts the snapshot's :class:`TcpFlowStats` objects (callers hand
        over freshly decoded ones); flow insertion order is preserved so a
        restored monitor's ``getPoorTCPFlows`` payload is byte-identical to
        the original's.
        """
        self.period = snapshot.period
        self.poor_threshold = snapshot.poor_threshold
        self.alerts_raised = snapshot.alerts_raised
        self.flows = {stats.flow_id: stats for stats in snapshot.flows}

    # ------------------------------------------------------------ accounting
    def reset_stats(self) -> None:
        """Zero the per-experiment alert counters.

        Clears ``alerts_raised`` and every flow's ``alerted`` latch, so the
        next measurement interval re-alerts still-poor flows instead of
        inheriting the previous experiment's suppression.  Wired into
        ``cluster.reset_stats()`` alongside the RPC and storage counters.
        """
        self.alerts_raised = 0
        for stats in self.flows.values():
            stats.alerted = False

    def reset(self) -> None:
        """Forget every flow (new measurement interval)."""
        self.flows.clear()
        # The latches died with the flows; the alert counter must not
        # outlive them (it used to leak across resets).
        self.alerts_raised = 0
