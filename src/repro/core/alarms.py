"""Alarms and reason codes.

``Alarm(flowID, Reason, Paths)`` is part of the PathDump host API (Table 1):
an end host raises an alarm towards the controller with a reason code (e.g.
``POOR_PERF`` for a TCP performance alert) and the list of paths involved.
The controller's event-driven debugging applications subscribe to these
alarms (Figure 3).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.packet import FlowId

#: Reason codes used across the applications.
POOR_PERF = "POOR_PERF"              #: TCP performance alert
PC_FAIL = "PC_FAIL"                  #: path conformance violation
LOOP_DETECTED = "LOOP_DETECTED"      #: routing loop established
LONG_PATH = "LONG_PATH"              #: suspiciously long (but loop-free) path
BLACKHOLE_SUSPECTED = "BLACKHOLE_SUSPECTED"  #: subflow silently vanished
INVALID_TRAJECTORY = "INVALID_TRAJECTORY"    #: samples inconsistent w/ topo
LOAD_IMBALANCE = "LOAD_IMBALANCE"    #: subflow byte counts diverge

REASON_CODES = (POOR_PERF, PC_FAIL, LOOP_DETECTED, LONG_PATH,
                BLACKHOLE_SUSPECTED, INVALID_TRAJECTORY, LOAD_IMBALANCE)


@dataclass
class Alarm:
    """One alarm raised by a PathDump agent.

    Attributes:
        flow_id: the flow the alarm concerns.
        reason: one of the reason codes above (free-form values allowed for
            operator-defined invariants).
        paths: the path(s) relevant to the alarm (possibly empty).
        host: the end host that raised the alarm.
        time: simulated time at which the alarm was raised.
        detail: free-form supplementary information.
    """

    flow_id: FlowId
    reason: str
    paths: List[Tuple[str, ...]] = field(default_factory=list)
    host: str = ""
    time: float = 0.0
    detail: str = ""

    def short(self) -> str:
        """Compact log line."""
        return (f"[{self.time:.3f}s] {self.host}: {self.reason} "
                f"{self.flow_id.short()} ({len(self.paths)} paths)")


#: Signature of an alarm subscriber.
AlarmHandler = Callable[[Alarm], None]


class AlarmBus:
    """Collects alarms and dispatches them to subscribers.

    The bus stands in for the agent-to-controller alert channel.  Controller
    applications subscribe either to every alarm or to specific reasons.
    """

    def __init__(self) -> None:
        self.alarms: List[Alarm] = []
        self._handlers: Dict[Optional[str], List[AlarmHandler]] = defaultdict(
            list)
        self._counter = itertools.count()
        #: Per-reason index, maintained incrementally by :meth:`raise_alarm`
        #: (``by_reason``/``count`` used to scan every recorded alarm per
        #: call - O(all alarms) inside every event-driven app's hot path).
        self._by_reason: Dict[str, List[Alarm]] = {}

    def subscribe(self, handler: AlarmHandler,
                  reason: Optional[str] = None) -> None:
        """Subscribe ``handler`` to alarms (optionally only one reason).

        Handlers fire in subscription order: every any-reason subscriber
        first, then the reason-specific subscribers.
        """
        self._handlers[reason].append(handler)

    def raise_alarm(self, alarm: Alarm) -> None:
        """Record and dispatch one alarm."""
        self.alarms.append(alarm)
        self._by_reason.setdefault(alarm.reason, []).append(alarm)
        for handler in self._handlers.get(None, []):
            handler(alarm)
        for handler in self._handlers.get(alarm.reason, []):
            handler(alarm)

    # ---------------------------------------------------------------- access
    def by_reason(self, reason: str) -> List[Alarm]:
        """All alarms with the given reason, in arrival order (O(matches))."""
        return list(self._by_reason.get(reason, ()))

    def recompute_by_reason(self) -> Dict[str, List[Alarm]]:
        """Rebuild the per-reason index from scratch (cross-check only).

        The incremental index must always equal this recomputation; tests
        assert it, mirroring ``Collection.recompute_estimated_bytes()``.
        """
        rebuilt: Dict[str, List[Alarm]] = {}
        for alarm in self.alarms:
            rebuilt.setdefault(alarm.reason, []).append(alarm)
        return rebuilt

    def involving_destination(self, dst_host: str) -> List[Alarm]:
        """All alarms whose flow is destined to ``dst_host``."""
        return [a for a in self.alarms if a.flow_id.dst_ip == dst_host]

    def count(self, reason: Optional[str] = None) -> int:
        """Number of alarms (optionally filtered by reason); O(1)."""
        if reason is None:
            return len(self.alarms)
        return len(self._by_reason.get(reason, ()))

    def clear(self) -> None:
        """Forget all recorded alarms (subscribers stay)."""
        self.alarms.clear()
        self._by_reason.clear()
