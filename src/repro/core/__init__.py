"""PathDump core: edge stack (vswitch, trajectory memory, TIB, monitor),
agents, distributed query execution and the controller."""

from repro.core.alarms import (Alarm, AlarmBus, BLACKHOLE_SUSPECTED,
                               INVALID_TRAJECTORY, LOAD_IMBALANCE,
                               LONG_PATH, LOOP_DETECTED, PC_FAIL, POOR_PERF)
from repro.core.tib import Tib, WILDCARD
from repro.core.trajectory import (TrajectoryCache, TrajectoryConstructor,
                                   TrajectoryMemory)
from repro.core.vswitch import EdgeVSwitch
from repro.core.monitor import (ActiveMonitor, MonitorSnapshot,
                                TransferObservation)
from repro.core.agent import PathDumpAgent
from repro.core.plan import (Aggregate, Filter, Plan, PlanError, PlanWarning,
                             Project, TopK, compile_get_count,
                             compile_top_k_flows, reference_evaluate)
from repro.core.query import (Q_FLOW_SIZE_DISTRIBUTION, Q_GET_COUNT,
                              Q_GET_COUNT_LEGACY, Q_GET_DURATION,
                              Q_GET_FLOWS, Q_GET_PATHS, Q_PATH_CONFORMANCE,
                              Q_PLAN, Q_POOR_TCP_FLOWS, Q_SUBFLOW_IMBALANCE,
                              Q_TOP_K_FLOWS, Q_TOP_K_FLOWS_LEGACY,
                              Q_TRAFFIC_MATRIX, Query, QueryEngine,
                              QueryResult)
from repro.core.rpc import RpcChannel
from repro.core.executor import (ExecWarning, GatherResult, LoopbackTransport,
                                 MODE_CONCURRENT, MODE_SERIAL, ModelTransport,
                                 PlanNode, ScatterGatherExecutor, Transport,
                                 TransportError)
from repro.core import wire
from repro.core.agentserver import (AgentServerError, AgentServerPool,
                                    PoolStats, ProcessTransport)
from repro.core.groupserver import (GroupAgentPool, GroupPoolStats,
                                    SocketTransport, TRANSPORT_PIPE,
                                    TRANSPORT_TCP, TRANSPORT_UNIX,
                                    shard_hosts)
from repro.core.supervisor import (ChaosPolicy, GroupSeed, RestartEvent,
                                   RestartPolicy, Supervisor, WorkerSeed)
from repro.core.aggregation import AggregationTree
from repro.core.cluster import (DistributedQueryResult, MECHANISM_DIRECT,
                                MECHANISM_MULTILEVEL, MODE_PROCESS,
                                MODE_SOCKET, MonitorSweep, QueryCluster)
from repro.core.controller import PathDumpController

__all__ = [
    "Alarm", "AlarmBus", "BLACKHOLE_SUSPECTED", "INVALID_TRAJECTORY",
    "LOAD_IMBALANCE", "LONG_PATH", "LOOP_DETECTED", "PC_FAIL", "POOR_PERF",
    "Tib", "WILDCARD", "TrajectoryCache", "TrajectoryConstructor",
    "TrajectoryMemory", "EdgeVSwitch", "ActiveMonitor", "MonitorSnapshot",
    "MonitorSweep", "TransferObservation", "PathDumpAgent",
    "Q_FLOW_SIZE_DISTRIBUTION", "Q_GET_COUNT", "Q_GET_COUNT_LEGACY",
    "Q_GET_DURATION", "Q_GET_FLOWS", "Q_GET_PATHS", "Q_PATH_CONFORMANCE",
    "Q_PLAN", "Q_POOR_TCP_FLOWS", "Q_SUBFLOW_IMBALANCE", "Q_TOP_K_FLOWS",
    "Q_TOP_K_FLOWS_LEGACY", "Q_TRAFFIC_MATRIX", "Query",
    "QueryEngine", "QueryResult", "Aggregate", "Filter", "Plan",
    "PlanError", "PlanWarning", "Project", "TopK", "compile_get_count",
    "compile_top_k_flows", "reference_evaluate", "RpcChannel", "ExecWarning",
    "GatherResult", "LoopbackTransport", "MODE_CONCURRENT", "MODE_SERIAL",
    "MODE_PROCESS", "MODE_SOCKET", "ModelTransport", "PlanNode",
    "ScatterGatherExecutor", "Transport", "TransportError",
    "AgentServerError", "AgentServerPool", "PoolStats", "ProcessTransport",
    "GroupAgentPool", "GroupPoolStats", "SocketTransport", "TRANSPORT_PIPE",
    "TRANSPORT_TCP", "TRANSPORT_UNIX", "shard_hosts", "ChaosPolicy",
    "GroupSeed", "RestartEvent", "RestartPolicy", "Supervisor", "WorkerSeed",
    "wire", "AggregationTree", "DistributedQueryResult", "MECHANISM_DIRECT",
    "MECHANISM_MULTILEVEL", "QueryCluster", "PathDumpController",
]
