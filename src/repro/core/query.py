"""Query representation, per-host execution and aggregation semantics.

The controller API (Table 1) ships *queries* to end hosts: ``execute`` runs a
query once, ``install`` registers it for periodic (or event-driven)
execution, ``uninstall`` removes it.  A query is expressed in terms of the
host API - the examples in Section 2.3 are small Python programs over
``getFlows``/``getPaths``/``getCount``/... - and some queries additionally
define how partial results from many hosts are *aggregated*, which is what
the multi-level query mechanism exploits (Section 3.2).

This module defines:

* :class:`Query` - a named query plus its parameters and optional period;
* :class:`QueryResult` - a host's (or aggregation node's) partial result with
  its serialized size, so query traffic can be accounted;
* the built-in query handlers used by the paper's applications: flow records
  retrieval, flow-size distribution, top-k flows, poor TCP flows, traffic
  matrix, path conformance; and
* per-query ``merge`` functions implementing the aggregation-tree reduction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from functools import lru_cache
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.core import plan as planlib
from repro.core import wire
from repro.core.alarms import PC_FAIL, Alarm
from repro.core.tib import (LinkId, TimeRange, is_unconstrained_link,
                            normalise_time_range)
from repro.network.packet import PROTO_TCP, FlowId
from repro.storage.records import flow_key

#: Built-in query names.
Q_GET_FLOWS = "get_flows"
Q_GET_PATHS = "get_paths"
Q_GET_COUNT = "get_count"
Q_GET_DURATION = "get_duration"
Q_POOR_TCP_FLOWS = "poor_tcp_flows"
Q_FLOW_SIZE_DISTRIBUTION = "flow_size_distribution"
Q_TOP_K_FLOWS = "top_k_flows"
Q_TRAFFIC_MATRIX = "traffic_matrix"
Q_PATH_CONFORMANCE = "path_conformance"
Q_SUBFLOW_IMBALANCE = "subflow_imbalance"
#: The generic declarative-plan query: ``params["plan"]`` carries a
#: :class:`repro.core.plan.Plan`, executed with full pushdown and merged
#: by the generic operator the plan's terminal op selects.
Q_PLAN = planlib.PLAN_QUERY_NAME
#: The retained hand-written ancestors of the plan-rebased built-ins -
#: kept registered (under explicit ``*_legacy`` names) as the
#: byte-identity oracles the plan compilations are verified against.
Q_GET_COUNT_LEGACY = "get_count_legacy"
Q_TOP_K_FLOWS_LEGACY = "top_k_flows_legacy"

# Pre-codec size estimators.  Reported wire sizes are *measured* now
# (``len(encoded)`` of the :mod:`repro.core.wire` frames); the handlers still
# compute these cheap estimates, kept on ``QueryResult.estimated_wire_bytes``
# as a cross-check against the codec (see the wire tests).
#: Estimated serialized bytes of small scalar payloads.
_SCALAR_BYTES = 16
#: Estimated serialized bytes of one (key, value) pair in histograms / top-k.
_KV_BYTES = 24
#: Estimated serialized bytes of one path element.
_PATH_ELEMENT_BYTES = 2
#: Estimated serialized size of a query/install request message.
QUERY_REQUEST_BYTES = 128


# The compiled plans the rebased built-ins execute are frozen and their
# validation is memoized, so hashable parameter shapes share one plan per
# distinct (flow, window) / (k, link, window) - repeat queries skip the
# dataclass construction and validation entirely.
@lru_cache(maxsize=1024)
def _cached_get_count_plan(flow: Any, time_range: Any) -> "planlib.Plan":
    return planlib.compile_get_count(flow, time_range)


@lru_cache(maxsize=1024)
def _cached_top_k_plan(k: int, link: Any, time_range: Any) -> "planlib.Plan":
    return planlib.compile_top_k_flows(k, link, time_range)


def _compiled_get_count(flow: Any, time_range: Any) -> "planlib.Plan":
    if time_range is not None:
        time_range = tuple(time_range)
    try:
        return _cached_get_count_plan(flow, time_range)
    except TypeError:  # unhashable parameter shape (e.g. a list path)
        return planlib.compile_get_count(flow, time_range)


def _compiled_top_k(k: int, link: Any, time_range: Any) -> "planlib.Plan":
    if time_range is not None:
        time_range = tuple(time_range)
    try:
        return _cached_top_k_plan(k, link, time_range)
    except TypeError:  # unhashable parameter shape (e.g. a list link)
        return planlib.compile_top_k_flows(k, link, time_range)


@dataclass
class Query:
    """A query the controller ships to end hosts.

    Attributes:
        name: one of the ``Q_*`` built-ins (custom names allowed when an
            explicit handler is registered with the engine).
        params: keyword parameters interpreted by the handler.
        period: execution period in seconds for installed queries; ``None``
            means event-driven (run on packet arrival / alert).
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    period: Optional[float] = None

    def request_bytes(self) -> int:
        """Measured serialized size of the query request (codec frame)."""
        return len(wire.encode_query(self))

    def estimated_request_bytes(self) -> int:
        """The pre-codec size estimate (cross-check only)."""
        return QUERY_REQUEST_BYTES + 8 * len(self.params)


@dataclass
class QueryResult:
    """A partial (per-host or per-subtree) query result.

    Attributes:
        query: the query this result answers.
        payload: handler-specific result value.
        wire_bytes: *measured* serialized size of the result message (the
            :mod:`repro.core.wire` frame length - in process mode, the
            frame that actually crossed the pipe); this is what the traffic
            accounting of the query-performance experiments sums.
        records_scanned: number of TIB records touched while producing the
            payload (the compute-cost proxy).
        estimated_wire_bytes: the handler's pre-codec size estimate, kept
            as a cross-check against the measured size.
        host: the host (or aggregation node) that produced the result.
        partial: ``True`` when one or more hosts' partial results are
            missing from ``payload`` (dead agent, timeout, lost response) -
            debug apps must treat "no anomaly" in a partial result as
            "couldn't ask everyone", not as a clean bill of health.
        warnings: structured :class:`~repro.core.executor.ExecWarning`
            entries describing what went wrong (and what was hedged or
            retried) while gathering.
        alarms: alarms raised at the host while producing this result,
            piggybacked on the encoded reply frame (an agent-server worker
            has no channel of its own to the controller's alarm bus).  The
            cluster drains them into the bus on receipt; in-process
            executions leave this empty because their agents raise straight
            into the bus.
        scan_stats: per-plan pushdown counters (hot-index routing + cold
            pruning work, see ``Tib.scan_stat_snapshot``), populated only
            by plan queries; rides the ``MSG_PLAN_RESULT`` frame tail and
            is summed key-wise when partials merge.
    """

    query: Query
    payload: Any
    wire_bytes: int
    records_scanned: int = 0
    estimated_wire_bytes: int = 0
    host: str = ""
    partial: bool = False
    warnings: Tuple[Any, ...] = ()
    alarms: Tuple[Any, ...] = ()
    scan_stats: Dict[str, int] = field(default_factory=dict)


def measured_result_wire_bytes(result: "QueryResult") -> int:
    """Measured frame size of a result, estimate-backed for exotic payloads.

    Built-in query payloads always encode; a *custom* handler may return a
    payload outside the codec's tagged-value set, which must not kill the
    query (custom handlers predate the codec) - its handler-supplied size
    estimate stands in, exactly as before the codec existed.
    """
    try:
        return wire.result_wire_bytes(result)
    except wire.WireError:
        return result.estimated_wire_bytes


# --------------------------------------------------------------------------
# Per-host execution
# --------------------------------------------------------------------------
class QueryEngine:
    """Executes queries against a PathDump agent and merges partial results."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Callable] = {
            Q_GET_FLOWS: self._run_get_flows,
            Q_GET_PATHS: self._run_get_paths,
            Q_GET_COUNT: self._run_get_count,
            Q_GET_DURATION: self._run_get_duration,
            Q_POOR_TCP_FLOWS: self._run_poor_tcp_flows,
            Q_FLOW_SIZE_DISTRIBUTION: self._run_flow_size_distribution,
            Q_TOP_K_FLOWS: self._run_top_k_flows,
            Q_TRAFFIC_MATRIX: self._run_traffic_matrix,
            Q_PATH_CONFORMANCE: self._run_path_conformance,
            Q_SUBFLOW_IMBALANCE: self._run_subflow_imbalance,
            Q_PLAN: self._run_plan,
            Q_GET_COUNT_LEGACY: self._run_get_count_legacy,
            Q_TOP_K_FLOWS_LEGACY: self._run_top_k_flows_legacy,
        }
        self._mergers: Dict[str, Callable] = {
            Q_GET_FLOWS: _merge_concat,
            Q_GET_PATHS: _merge_concat,
            Q_POOR_TCP_FLOWS: _merge_concat,
            Q_FLOW_SIZE_DISTRIBUTION: _merge_histograms,
            Q_TOP_K_FLOWS: _merge_top_k,
            Q_TRAFFIC_MATRIX: _merge_histograms,
            Q_PATH_CONFORMANCE: _merge_concat,
            Q_SUBFLOW_IMBALANCE: _merge_concat,
            Q_PLAN: _merge_plan,
            Q_TOP_K_FLOWS_LEGACY: _merge_top_k,
        }

    def register(self, name: str, handler: Callable,
                 merger: Optional[Callable] = None) -> None:
        """Register a custom query handler (and optionally a merger)."""
        self._handlers[name] = handler
        if merger is not None:
            self._mergers[name] = merger

    # ------------------------------------------------------------------ exec
    def execute(self, agent, query: Query,
                measure_wire: bool = True) -> QueryResult:
        """Run ``query`` on ``agent`` and return its partial result.

        ``wire_bytes`` is the *measured* encoded size of the result frame
        (identical to what an agent-server worker would put on the pipe);
        the handler's size estimate is kept on ``estimated_wire_bytes``.
        ``measure_wire=False`` leaves ``wire_bytes`` at 0 for callers that
        encode the frame themselves anyway (the agent-server worker) - the
        decoded side reconstructs the same value from the frame length.
        """
        handler = self._handlers.get(query.name)
        if handler is None:
            raise KeyError(f"unknown query {query.name!r}")
        output = handler(agent, query.params)
        # Handlers return (payload, estimate, scanned); plan handlers add
        # their per-plan pushdown counters as a fourth element.
        if len(output) == 4:
            payload, estimated, scanned, scan_stats = output
        else:
            payload, estimated, scanned = output
            scan_stats = {}
        result = QueryResult(query=query, payload=payload, wire_bytes=0,
                             records_scanned=scanned,
                             estimated_wire_bytes=estimated,
                             host=agent.host, scan_stats=scan_stats)
        if measure_wire:
            result.wire_bytes = measured_result_wire_bytes(result)
        return result

    def merge(self, query: Query, results: Sequence[QueryResult],
              measure_wire: bool = True) -> QueryResult:
        """Merge partial results into one (aggregation-tree reduction).

        ``measure_wire=False`` skips sizing the merged payload - the
        streaming gather merges pairwise, and only a node's *final*
        accumulator ever travels, so intermediate merge results are sized
        lazily at the point they are actually sent (re-encoding a growing
        payload after every pairwise merge would be quadratic).
        """
        merger = self._mergers.get(query.name, _merge_concat)
        payload, estimated = merger(query, [r.payload for r in results])
        scan_stats: Dict[str, int] = {}
        for partial in results:
            for key, value in partial.scan_stats.items():
                scan_stats[key] = scan_stats.get(key, 0) + value
        result = QueryResult(
            query=query, payload=payload, wire_bytes=0,
            records_scanned=sum(r.records_scanned for r in results),
            estimated_wire_bytes=estimated, host="aggregate",
            scan_stats=scan_stats)
        if measure_wire:
            result.wire_bytes = measured_result_wire_bytes(result)
        return result

    # -------------------------------------------------------------- handlers
    @staticmethod
    def _run_get_flows(agent, params):
        link: Optional[LinkId] = params.get("link")
        time_range: Optional[TimeRange] = params.get("time_range")
        flows = agent.get_flows(link, time_range)
        wire = sum(13 + _PATH_ELEMENT_BYTES * len(path) for _, path in flows)
        # Both tiers are scanned candidates (and the total is invariant
        # under the hot/cold split, keeping result frames byte-identical
        # between capped local agents and their workers).
        return flows, wire, agent.tib.total_record_count()

    @staticmethod
    def _run_get_paths(agent, params):
        flow_id: FlowId = params["flow_id"]
        link = params.get("link")
        time_range = params.get("time_range")
        paths = agent.get_paths(flow_id, link, time_range)
        wire = sum(_PATH_ELEMENT_BYTES * len(p) + 4 for p in paths)
        return paths, wire, len(paths)

    @staticmethod
    def _run_plan(agent, params):
        """The generic declarative-plan handler: execute the shipped plan
        against this host's TIB with full pushdown, reporting the per-plan
        scan counters alongside the payload."""
        execution = planlib.execute_plan(agent.tib, params["plan"])
        return (execution.payload, execution.estimated_wire_bytes,
                execution.records_scanned, execution.scan_stats)

    @staticmethod
    def _run_get_count(agent, params):
        """``getCount`` as a thin plan compilation.

        The accounting stays pinned to the hand-written ancestor's
        (scalar estimate, one aggregate row scanned) so result frames are
        byte-identical to what :meth:`_run_get_count_legacy` produces.
        """
        plan = _compiled_get_count(params["flow"], params.get("time_range"))
        execution = planlib.execute_plan(agent.tib, plan)
        return execution.payload, _SCALAR_BYTES, 1

    @staticmethod
    def _run_get_count_legacy(agent, params):
        """The hand-written ``getCount`` ancestor, retained verbatim as the
        byte-identity oracle for :meth:`_run_get_count`'s compilation."""
        flow = params["flow"]
        time_range = params.get("time_range")
        counts = agent.get_count(flow, time_range)
        return counts, _SCALAR_BYTES, 1

    @staticmethod
    def _run_get_duration(agent, params):
        flow = params["flow"]
        time_range = params.get("time_range")
        duration = agent.get_duration(flow, time_range)
        return duration, _SCALAR_BYTES, 1

    @staticmethod
    def _run_poor_tcp_flows(agent, params):
        threshold = params.get("threshold")
        flows = agent.get_poor_tcp_flows(threshold)
        return flows, 13 * max(1, len(flows)), len(agent.monitor.flows)

    @staticmethod
    def _run_flow_size_distribution(agent, params):
        """Histogram of flow sizes on a link (the Section 2.3 example).

        One pass over the link-indexed records: bytes are grouped per
        (flow, path) pair - exactly what ``getFlows`` + per-flow
        ``getCount`` produced, without re-querying the TIB per flow.
        """
        links = params.get("links")
        if links is None:
            links = [params.get("link")]
        time_range = params.get("time_range")
        binsize = params.get("binsize", 10_000)
        histogram: Dict[Tuple[str, int], int] = {}
        scanned = 0
        for link in links:
            label = _link_label(link)
            # The TIB keeps exactly one record per (flow, path), so each
            # record's byte count already is the pair's ``getCount`` total.
            for record in agent.records(link=link, time_range=time_range):
                key = (label, record.bytes // binsize)
                histogram[key] = histogram.get(key, 0) + 1
                scanned += 1
        return histogram, _KV_BYTES * max(1, len(histogram)), scanned

    @staticmethod
    def _run_top_k_flows(agent, params):
        """Top-k flows by byte count, as a thin plan compilation.

        The estimate formula and scanned count stay the ancestor's
        (``execute_plan`` counts the same records: the identical
        unconstrained fast path, or the identical index-routed scan), so
        result frames are byte-identical to
        :meth:`_run_top_k_flows_legacy`'s.
        """
        plan = _compiled_top_k(params.get("k", 1000), params.get("link"),
                               params.get("time_range"))
        execution = planlib.execute_plan(agent.tib, plan)
        payload = execution.payload
        return (payload, _KV_BYTES * max(1, len(payload)),
                execution.records_scanned)

    @staticmethod
    def _run_top_k_flows_legacy(agent, params):
        """The hand-written top-k ancestor (the Section 2.3 example),
        retained verbatim as the byte-identity oracle for
        :meth:`_run_top_k_flows`'s compilation.

        Single pass over the (link/time) indexed records; per-path byte
        counts are grouped by flow key without one ``getCount`` query per
        flow.
        """
        k = params.get("k", 1000)
        link = params.get("link")
        time_range = params.get("time_range")
        if is_unconstrained_link(link) and \
                normalise_time_range(time_range) == (None, None):
            # Unconstrained: rank the incrementally maintained per-flow
            # aggregates (they span both tiers) - no record is touched at
            # all, hot or cold.
            totals = agent.tib.flow_byte_totals()
            scanned = agent.tib.total_record_count()
        else:
            totals = {}
            scanned = 0
            for record in agent.records(link=link, time_range=time_range):
                key = flow_key(record.flow_id)
                totals[key] = totals.get(key, 0) + record.bytes
                scanned += 1
        result = top_k_select(
            ((nbytes, key) for key, nbytes in totals.items()), k)
        return result, _KV_BYTES * max(1, len(result)), scanned

    @staticmethod
    def _run_traffic_matrix(agent, params):
        """Bytes between (source ToR, destination ToR) pairs seen locally."""
        time_range = params.get("time_range")
        matrix: Dict[Tuple[str, str], int] = {}
        records = agent.tib.records(time_range=time_range)
        for record in records:
            if len(record.path) < 3:
                continue
            src_tor, dst_tor = record.path[1], record.path[-2]
            key = (src_tor, dst_tor)
            matrix[key] = matrix.get(key, 0) + record.bytes
        return matrix, _KV_BYTES * max(1, len(matrix)), len(records)

    @staticmethod
    def _run_path_conformance(agent, params):
        """The Section 2.3 path-conformance check, run at the end host.

        Parameters: ``max_hops`` (maximum switch-path length), ``forbidden``
        (switches packets must avoid), optional ``flow_id`` to restrict the
        check, optional ``time_range``.  Violations raise PC_FAIL alarms via
        the agent and are returned as (flow, offending paths) pairs.
        """
        max_hops = params.get("max_hops")
        forbidden = set(params.get("forbidden", ()))
        flow_filter = params.get("flow_id")
        time_range = params.get("time_range")
        violations: List[Tuple[FlowId, List[Tuple[str, ...]]]] = []
        flows = agent.get_flows(None, time_range)
        scanned = len(flows)
        by_flow: Dict[FlowId, List[Tuple[str, ...]]] = {}
        for flow_id, path in flows:
            if flow_filter is not None and flow_id != flow_filter:
                continue
            by_flow.setdefault(flow_id, []).append(path)
        for flow_id, paths in by_flow.items():
            offending = []
            for path in paths:
                switch_hops = len(path) - 2 if len(path) >= 2 else len(path)
                too_long = max_hops is not None and switch_hops >= max_hops
                bad_switch = bool(forbidden.intersection(path))
                if too_long or bad_switch:
                    offending.append(path)
            if offending:
                violations.append((flow_id, offending))
                agent.alarm(flow_id, PC_FAIL, offending)
        wire = sum(13 + sum(_PATH_ELEMENT_BYTES * len(p) for p in paths)
                   for _, paths in violations)
        return violations, max(wire, 1), scanned

    @staticmethod
    def _run_subflow_imbalance(agent, params):
        """Check per-path byte balance of sprayed flows (Section 4.2).

        Parameters: ``ratio`` - maximum allowed ratio between the largest and
        smallest per-path byte counts of a flow before it is reported.
        """
        ratio_limit = params.get("ratio", 2.0)
        time_range = params.get("time_range")
        flows = agent.get_flows(None, time_range)
        per_flow: Dict[FlowId, List[Tuple[Tuple[str, ...], int]]] = {}
        for flow_id, path in flows:
            nbytes, _ = agent.get_count((flow_id, path), time_range)
            per_flow.setdefault(flow_id, []).append((path, nbytes))
        offenders = []
        for flow_id, entries in per_flow.items():
            if len(entries) < 2:
                continue
            values = [v for _, v in entries if v > 0]
            if not values:
                continue
            if max(values) / max(1, min(values)) > ratio_limit:
                offenders.append((flow_id, entries))
        wire = _KV_BYTES * max(1, sum(len(e) for _, e in offenders))
        return offenders, wire, len(flows)


# --------------------------------------------------------------------------
# Merge functions (aggregation-tree reduction)
# --------------------------------------------------------------------------
def top_k_select(items: Iterable[Tuple[int, str]], k: int
                 ) -> List[Tuple[int, str]]:
    """The k largest ``(nbytes, key)`` pairs, descending.

    Full-tuple comparison keeps the selection a total order, so the result
    is a well-defined *set* regardless of input order - which makes per-host
    selection and the partial-result merge commutative and associative, the
    property the streaming/concurrent aggregation's payload determinism
    rests on.  Shared by the per-host handler and the merge function so the
    tie-break can never diverge between them.
    """
    heap: List[Tuple[int, str]] = []
    for item in items:
        if len(heap) < k:
            heapq.heappush(heap, item)
        elif item > heap[0]:
            heapq.heapreplace(heap, item)
    return sorted(heap, reverse=True)


def _merge_concat(query: Query, payloads: Sequence[Any]) -> Tuple[Any, int]:
    """Concatenate list-like partial results."""
    merged: List[Any] = []
    for payload in payloads:
        merged.extend(payload)
    return merged, _KV_BYTES * max(1, len(merged))


def _merge_histograms(query: Query, payloads: Sequence[Dict]) -> Tuple[Dict, int]:
    """Sum histograms / matrices keyed by arbitrary hashable keys."""
    merged: Dict[Any, int] = {}
    for payload in payloads:
        for key, value in payload.items():
            merged[key] = merged.get(key, 0) + value
    return merged, _KV_BYTES * max(1, len(merged))


def _merge_top_k(query: Query, payloads: Sequence[List[Tuple[int, str]]]
                 ) -> Tuple[List[Tuple[int, str]], int]:
    """Keep only the global top-k across partial top-k lists.

    This is the reduction that makes the multi-level top-k query efficient:
    ``(n_i - 1) * k`` key-value pairs are discarded at every aggregation
    level (Section 5.2).
    """
    k = query.params.get("k", 1000)
    merged = top_k_select(
        (item for payload in payloads for item in payload), k)
    return merged, _KV_BYTES * max(1, len(merged))


def _merge_plan(query: Query, payloads: Sequence[Any]) -> Tuple[Any, int]:
    """Merge partial plan payloads with the generic operator the plan's
    terminal op selects (concat / histogram-merge / top-k-merge)."""
    plan = query.params["plan"]
    merged = planlib.merge_payloads(plan, payloads)
    return merged, planlib.estimate_payload_bytes(merged)


def _link_label(link: Optional[LinkId]) -> str:
    """Readable label for a link parameter (used as histogram key prefix)."""
    if link is None:
        return "*-*"
    a, b = link
    return f"{a or '*'}-{b or '*'}"
