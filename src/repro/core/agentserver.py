"""Process-parallel agent servers: each host's TIB in its own worker process.

PathDump's central claim is that trajectory queries run *on the end hosts
themselves*.  The thread-pool executor already overlaps transport waits, but
pure-Python per-host query work is GIL-bound: a CPU-heavy 8-host scatter on
threads runs no faster than serially.  This module moves the per-host state
out of the controller process entirely:

* :func:`agent_server_main` - the worker process.  It owns one host's
  :class:`~repro.core.tib.Tib`, a :class:`~repro.core.query.QueryEngine`
  *and* the host's :class:`~repro.core.monitor.ActiveMonitor`, and speaks
  the :mod:`~repro.core.wire` binary protocol over a pipe: the simulator
  streams encoded record batches and transfer-observation batches in, the
  executor sends encoded query(+subtree-spec) requests and receives encoded
  results, and the controller's monitor sweep sends tick commands answered
  with alarm batches.  No pickle crosses the pipe on the query path.
* The **event plane**: the worker's monitor is the authoritative one in
  process mode.  Alarms it raises (periodic checks, alarm-raising query
  handlers like ``path_conformance``) are queued host-side and travel to
  the controller either as the reply to a monitor tick or piggybacked on
  the next query reply - the strict request/reply pipe's rendering of the
  asynchronous agent -> controller alert channel.
* :class:`AgentServerPool` - the controller-side handle: spawns one worker
  per host, streams ingest (records and observations), runs queries and
  monitor ticks, and exposes ``kill``/``alive`` for failure testing.  A
  killed worker surfaces as :class:`AgentServerError` on the next
  exchange, which the scatter-gather executor turns into the same
  ``partial=True`` / ``hosts_failed`` / ``W_HOST_FAILED`` outcome as a
  dead in-thread agent.  With a
  :class:`~repro.core.supervisor.Supervisor` attached the pool becomes
  self-healing: every failure path (send error, EOF, reply timeout,
  undecodable reply) hands the host to the supervisor, which respawns the
  worker and re-seeds it from the local mirrors before the error
  surfaces - so the next exchange (or an executor retry) lands on a
  healthy, state-identical worker.  A
  :class:`~repro.core.supervisor.ChaosPolicy` hooks the same paths for
  deterministic gray-failure injection.
* :class:`ProcessTransport` - a :class:`~repro.core.executor.ModelTransport`
  bound to a pool.  Request/response *sizes* are the real encoded frame
  lengths (the cluster builds plans from ``len(encoded)``), the channel
  model still prices the legs, and the measured wall clock shows the real
  process-level overlap.

Because workers block in ``recv`` (releasing nothing - they are separate
processes), a CPU-bound scatter's per-host work runs genuinely in parallel
across cores while the executor threads merely wait on pipes.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import wire
from repro.core.alarms import Alarm
from repro.core.executor import ModelTransport
from repro.core.monitor import (ActiveMonitor, MonitorSnapshot,
                                TransferObservation)
from repro.core.query import QueryEngine, QueryResult
from repro.core.rpc import RpcChannel
from repro.core.tib import Tib
from repro.storage.records import PathFlowRecord

#: Queries an agent-server worker can answer: every built-in, including the
#: monitor-backed (``poor_tcp_flows``) and alarm-raising
#: (``path_conformance``) ones - the worker owns the host's monitor and its
#: alarms travel back over the wire.  Only *custom* handlers registered on
#: individual in-process agents fall back local (the worker cannot know
#: them).
SERVED_QUERIES = frozenset(QueryEngine()._handlers)


class AgentServerError(RuntimeError):
    """An agent-server worker failed or became unreachable."""


class _WorkerAgent:
    """The slice of the agent API the query handlers and event plane need.

    Lives inside the worker process; serves everything in
    :data:`SERVED_QUERIES` from the worker-owned :class:`Tib` and
    :class:`ActiveMonitor`.  Alarms raised host-side (periodic checks,
    ``Alarm(...)`` calls from query handlers) are queued on
    ``pending_alarms`` until a reply frame carries them to the controller.
    """

    def __init__(self, host: str) -> None:
        self.host = host
        self.tib = Tib(host)
        self.pending_alarms: List[Alarm] = []
        self.monitor = ActiveMonitor(host,
                                     alarm_sink=self.pending_alarms.append)
        self.alarms_raised: List[Alarm] = []

    # Host API subset (mirrors PathDumpAgent over the TIB + monitor).
    def records(self, flow_id=None, link=None, time_range=None,
                include_live: bool = False) -> List[PathFlowRecord]:
        return self.tib.records(flow_id=flow_id, link=link,
                                time_range=time_range)

    def get_flows(self, link=None, time_range=None,
                  include_live: bool = False):
        return self.tib.get_flows(link, time_range)

    def get_paths(self, flow_id, link=None, time_range=None,
                  include_live: bool = False):
        return self.tib.get_paths(flow_id, link, time_range)

    def get_count(self, flow, time_range=None, include_live: bool = False):
        return self.tib.get_count(flow, time_range)

    def get_duration(self, flow, time_range=None,
                     include_live: bool = False):
        return self.tib.get_duration(flow, time_range)

    def get_poor_tcp_flows(self, threshold=None):
        return self.monitor.get_poor_tcp_flows(threshold)

    def alarm(self, flow_id, reason, paths, detail: str = "",
              when: float = 0.0) -> Alarm:
        """``Alarm(flowID, Reason, Paths)`` - queued for the next reply."""
        alarm = Alarm(flow_id=flow_id, reason=reason,
                      paths=[tuple(p) for p in paths], host=self.host,
                      time=when, detail=detail)
        self.alarms_raised.append(alarm)
        self.pending_alarms.append(alarm)
        return alarm

    def drain_alarms(self) -> Tuple[Alarm, ...]:
        """Take every pending alarm (they leave on the reply being built)."""
        drained = tuple(self.pending_alarms)
        self.pending_alarms.clear()
        return drained


class _HostServer:
    """One host's worker-side frame switch: state + ``frame -> reply``.

    The protocol logic shared by the single-host pipe worker
    (:func:`agent_server_main`) and the group workers
    (:func:`~repro.core.groupserver.group_server_main`, which owns one of
    these per host and routes ``MSG_GROUP_BATCH`` entries to them).
    Record/observation batches and monitor-state seeds are fire-and-forget
    (the channel's FIFO ordering guarantees they are applied before any
    later query or tick); an ingest failure is latched on
    ``pending_error`` and reported as the reply to the next request
    instead of being lost.  Alarms raised host-side are queued and leave
    on the next reply that can carry them: a monitor tick's alarm batch,
    or piggybacked on a query result.
    """

    def __init__(self, host: str) -> None:
        self.host = host
        self.agent = _WorkerAgent(host)
        self.engine = QueryEngine()
        self.pending_error: Optional[str] = None

    def note_error(self, detail: str) -> None:
        """Latch an out-of-band failure (reported on the next request)."""
        self.pending_error = detail

    def serve(self, frame: bytes) -> Optional[bytes]:
        """Serve one frame; returns the reply bytes, or ``None`` for
        fire-and-forget frames (lifecycle frames - shutdown - are the
        caller's business and produce ``None`` here too)."""
        agent = self.agent
        try:
            kind, _reader = wire.open_frame(frame)
        except wire.WireError as error:
            self.pending_error = f"undecodable frame: {error}"
            return None
        if kind == wire.MSG_RECORD_BATCH:
            try:
                agent.tib.add_records(wire.decode_record_batch(frame),
                                      adopt=True)
            except Exception as error:
                self.pending_error = (f"record batch failed: "
                                      f"{type(error).__name__}: {error}")
        elif kind == wire.MSG_OBSERVATION_BATCH:
            try:
                for obs in wire.decode_observation_batch(frame):
                    agent.monitor.apply_observation(obs)
            except Exception as error:
                self.pending_error = (f"observation batch failed: "
                                      f"{type(error).__name__}: {error}")
        elif kind == wire.MSG_MONITOR_STATE:
            try:
                agent.monitor.restore(wire.decode_monitor_state(frame))
            except Exception as error:
                self.pending_error = (f"monitor state failed: "
                                      f"{type(error).__name__}: {error}")
        elif kind == wire.MSG_RETENTION:
            # Fire-and-forget, like ingest: the channel's FIFO ordering
            # guarantees the cap is in force before any later record
            # batch, so the worker ages records host-side exactly as
            # the controller's local TIB does.
            try:
                max_records, max_bytes = wire.decode_retention(frame)
                agent.tib.configure_retention(max_records=max_records,
                                              max_bytes=max_bytes)
            except Exception as error:
                self.pending_error = (f"retention config failed: "
                                      f"{type(error).__name__}: {error}")
        elif kind in (wire.MSG_QUERY_REQUEST, wire.MSG_PLAN_REQUEST):
            if self.pending_error is not None:
                reply = wire.encode_error(self.pending_error)
                self.pending_error = None
                return reply
            try:
                # decode_query_request accepts both frame kinds, and
                # encode_result routes plan results to the generic
                # MSG_PLAN_RESULT frame - so plans ride every worker
                # transport (pipe, socket, group batches) through the
                # exact same request/reply path as legacy queries.
                query, _spec = wire.decode_query_request(frame)
                # measure_wire=False: the frame we are about to send IS
                # the measurement (encoding twice would double the
                # serialization cost on the hot path); the client sets
                # wire_bytes = len(frame) on decode.
                result = self.engine.execute(agent, query,
                                             measure_wire=False)
                # Drain *after* executing: alarms the handler raised
                # ride this reply to the controller's bus.
                result.alarms = agent.drain_alarms()
                return wire.encode_result(result)
            except Exception as error:
                return wire.encode_error(f"{type(error).__name__}: {error}")
        elif kind == wire.MSG_MONITOR_TICK:
            if self.pending_error is not None:
                reply = wire.encode_error(self.pending_error)
                self.pending_error = None
                return reply
            try:
                now, threshold = wire.decode_monitor_tick(frame)
                agent.monitor.run_check(now, threshold)
                # The check's alarms landed on the pending queue via
                # the monitor's sink; the reply drains everything
                # pending (including alarms from earlier activity).
                return wire.encode_alarm_batch(agent.drain_alarms())
            except Exception as error:
                return wire.encode_error(f"{type(error).__name__}: {error}")
        elif kind == wire.MSG_MONITOR_PULL:
            if self.pending_error is not None:
                # The snapshot is the mirror's ground truth; serving it
                # while an observation/seed batch silently failed would
                # report state the worker never reached.
                reply = wire.encode_error(self.pending_error)
                self.pending_error = None
                return reply
            return wire.encode_monitor_state(agent.monitor.snapshot())
        elif kind == wire.MSG_PING:
            # A pong doubles as the worker-side flush barrier: any
            # write-behind records staged by earlier ingest frames are
            # forced into the archive log before the tier counters are
            # read, so the reply never describes a torn cold tier.
            agent.tib.flush_archive()
            tiers = agent.tib.tier_stats()
            return wire.encode_pong(
                agent.tib.total_record_count(),
                len(agent.monitor.flows),
                hot_records=tiers["hot_records"],
                hot_bytes=tiers["hot_bytes"],
                cold_records=tiers["cold_records"],
                cold_bytes=tiers["cold_bytes"])
        elif kind == wire.MSG_RESET:
            agent.tib.clear()
            agent.monitor.reset()
            agent.pending_alarms.clear()
            agent.alarms_raised.clear()
            self.pending_error = None  # a reset wipes latched ingest errors
        elif kind == wire.MSG_SLEEP:
            time.sleep(wire.decode_sleep(frame))
        elif kind == wire.MSG_SHUTDOWN:
            pass  # lifecycle frame; handled by the worker's main loop
        else:
            self.pending_error = f"unknown message type {kind}"
        return None


def agent_server_main(conn, host: str) -> None:
    """Worker process main loop: serve wire frames until shutdown/EOF.

    The frame switch itself lives in :class:`_HostServer` (shared with the
    group workers); this loop only owns the pipe lifecycle.
    """
    server = _HostServer(host)
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                kind = wire.frame_type(frame)
            except wire.WireError as error:
                server.note_error(f"undecodable frame: {error}")
                continue
            if kind == wire.MSG_SHUTDOWN:
                break
            reply = server.serve(frame)
            if reply is not None:
                conn.send_bytes(reply)
    finally:
        conn.close()


@dataclass
class PoolStats:
    """Frame/byte counters and self-healing telemetry of one pool.

    The supervision counters let callers tell "healthy" from "degraded"
    at a glance: ``restarts``/``reseed_ms`` say how often (and how
    expensively) workers were recovered, ``circuit_open`` how many hosts
    exhausted their restart budget and fell back to dead-agent
    semantics, ``mirror_detaches`` how many ingest mirrors gave up on an
    unrecoverable worker, and ``decode_errors`` how many reply frames
    were corrupt (each one also counts as a worker failure).
    """

    frames_sent: int = 0
    bytes_sent: int = 0
    frames_received: int = 0
    bytes_received: int = 0
    #: Supervised restarts that completed (respawn + re-seed + barrier).
    restarts: int = 0
    #: Total milliseconds spent respawning and re-seeding workers.
    reseed_ms: float = 0.0
    #: Hosts whose restart budget was exhausted (circuit opened).
    circuit_open: int = 0
    #: Record/observation mirrors that detached after delivery failed
    #: with no (further) recovery possible.
    mirror_detaches: int = 0
    #: Reply frames that failed to decode (protocol desync; the worker
    #: is killed and, when supervised, restarted).
    decode_errors: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.bytes_received = 0
        self.restarts = 0
        self.reseed_ms = 0.0
        self.circuit_open = 0
        self.mirror_detaches = 0
        self.decode_errors = 0


#: Distinguishes "use the pool's reply timeout" from an explicit ``None``.
_UNSET = object()


class AgentServerPool:
    """One agent-server worker process per host, plus the client protocol.

    Args:
        hosts: hosts to spawn workers for.
        context: a :mod:`multiprocessing` context or start-method name
            (defaults to the platform default - ``fork`` on Linux, which
            keeps worker start cheap).
        reply_timeout_s: optional deadline for a worker's reply; ``None``
            blocks until the worker answers or dies (a killed worker's pipe
            raises immediately, so failure tests never hang).
        supervisor: optional :class:`~repro.core.supervisor.Supervisor`;
            when attached, worker failures trigger restart-with-recovery
            instead of being permanent (see the module docstring).
        chaos: optional :class:`~repro.core.supervisor.ChaosPolicy` for
            deterministic gray-failure injection on the send/receive
            paths (fault frames it injects are not counted in ``stats``).
    """

    def __init__(self, hosts: Sequence[str], context=None,
                 reply_timeout_s: Optional[float] = None,
                 supervisor=None, chaos=None) -> None:
        if isinstance(context, str) or context is None:
            context = multiprocessing.get_context(context)
        self._context = context
        self.reply_timeout_s = reply_timeout_s
        self.supervisor = supervisor
        self.chaos = chaos
        self.stats = PoolStats()  # guarded-by: _stats_lock
        self._stats_lock = threading.Lock()
        self._closed = False
        # The per-host exchange lock (``_lock_for``) guards the pipe pair:
        # the protocol is strict request/reply, so two threads exchanging
        # on one worker unlocked would interleave frames and desynchronise
        # the connection forever.
        self._conns = {}  # guarded-by: _lock_for
        self._procs = {}  # guarded-by: _lock_for
        self._locks: Dict[str, threading.Lock] = {}
        for host in hosts:
            self._locks[host] = threading.Lock()
            self._spawn(host)

    def _spawn(self, host: str) -> None:  # holds: _lock_for
        """(Re)create ``host``'s worker process and pipe (called from
        ``__init__`` before any concurrency, or under the host lock)."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=agent_server_main, args=(child_conn, host),
            name=f"pathdump-agent-{host}", daemon=True)
        process.start()
        child_conn.close()
        self._conns[host] = parent_conn
        self._procs[host] = process

    # ------------------------------------------------------------------- API
    @property
    def hosts(self) -> List[str]:
        """Hosts this pool runs workers for."""
        # Keys are fixed at construction (only values are respawned), so
        # an unlocked snapshot of the key set is stable.
        return list(self._procs)  # lint: disable=R3 -- key set is construction-time constant

    #: Records per ingest frame: large batches are split so no single frame
    #: monopolises the pipe (the worker interleaves consuming them with
    #: serving queries queued behind).
    INGEST_CHUNK_RECORDS = 4096

    def add_records(self, host: str,
                    records: Sequence[PathFlowRecord]) -> int:
        """Stream a record batch to ``host``'s worker; returns frame bytes.

        Fire-and-forget: the pipe's ordering guarantees the batches land
        before any later query on the same connection.  Use :meth:`ping`
        afterwards to barrier on the ingest having been applied.
        """
        if not records:
            return 0
        total = 0
        chunk = self.INGEST_CHUNK_RECORDS
        with self._lock_for(host):
            for start in range(0, len(records), chunk):
                frame = wire.encode_record_batch(records[start:start + chunk])
                self._send(host, frame)
                total += len(frame)
        return total

    def add_observations(self, host: str,
                         observations: Sequence[TransferObservation]) -> int:
        """Stream a transfer-observation batch to ``host``'s worker.

        Fire-and-forget, like :meth:`add_records`: pipe ordering guarantees
        the observations land before any later tick or query.  Returns the
        frame bytes sent.
        """
        if not observations:
            return 0
        total = 0
        chunk = self.INGEST_CHUNK_RECORDS
        with self._lock_for(host):
            for start in range(0, len(observations), chunk):
                frame = wire.encode_observation_batch(
                    observations[start:start + chunk])
                self._send(host, frame)
                total += len(frame)
        return total

    def set_retention(self, host: str, max_records: Optional[int],
                      max_bytes: Optional[int]) -> int:
        """Configure ``host``'s worker hot-tier bounds (two-tier TIB).

        Fire-and-forget: pipe FIFO ordering puts the cap in force before
        any later ingest on the same connection.  Returns the frame bytes
        sent.
        """
        frame = wire.encode_retention(max_records, max_bytes)
        with self._lock_for(host):
            self._send(host, frame)
        return len(frame)

    def tier_stats(self, host: str) -> Dict[str, int]:
        """Pull ``host``'s worker two-tier stats off a liveness probe."""
        with self._lock_for(host):
            self._send(host, wire.encode_ping())
            reply = self._recv(host)
            (total, monitor_flows, hot_records, hot_bytes, cold_records,
             cold_bytes) = self._checked_decode(host, reply,
                                                wire.decode_pong_tiers)
        return {"total_records": total, "monitor_flows": monitor_flows,
                "hot_records": hot_records, "hot_bytes": hot_bytes,
                "cold_records": cold_records, "cold_bytes": cold_bytes}

    def seed_monitor(self, host: str, snapshot: MonitorSnapshot) -> int:
        """Replace ``host``'s worker monitor state with ``snapshot``.

        Fire-and-forget (the startup sync barrier is the later ping).
        Returns the frame bytes sent.
        """
        frame = wire.encode_monitor_state(snapshot)
        with self._lock_for(host):
            self._send(host, frame)
        return len(frame)

    def query(self, host: str, query,
              spec: Optional[wire.SubtreeSpec] = None) -> QueryResult:
        """Run ``query`` on ``host``'s worker; returns its partial result.

        The request is the batched query+spec frame; the reply's measured
        frame length becomes the result's ``wire_bytes``.  Alarms the
        worker had pending ride the reply on ``result.alarms`` - the
        caller is responsible for dispatching them to the alarm bus.
        """
        frame = wire.encode_query_request(query, spec)
        with self._lock_for(host):
            self._send(host, frame)
            reply = self._recv(host)
            kind = self._checked_decode(host, reply, wire.frame_type)
            if kind == wire.MSG_ERROR:
                detail = self._checked_decode(host, reply, wire.decode_error)
                raise AgentServerError(f"agent server on {host}: {detail}")
            return self._checked_decode(host, reply, wire.decode_result,
                                        query)

    def monitor_tick(self, host: str, now: float,
                     threshold: Optional[int] = None
                     ) -> Tuple[List[Alarm], int]:
        """Run one periodic monitor check on ``host``'s worker.

        Returns ``(alarms, reply_bytes)``: the alarms the check raised
        (plus any the worker had pending) and the measured length of the
        alarm-batch reply frame that carried them.
        """
        frame = wire.encode_monitor_tick(now, threshold)
        with self._lock_for(host):
            self._send(host, frame)
            reply = self._recv(host)
            kind = self._checked_decode(host, reply, wire.frame_type)
            if kind == wire.MSG_ERROR:
                detail = self._checked_decode(host, reply, wire.decode_error)
                raise AgentServerError(f"agent server on {host}: {detail}")
            return (self._checked_decode(host, reply,
                                         wire.decode_alarm_batch),
                    len(reply))

    def monitor_state(self, host: str) -> MonitorSnapshot:
        """Pull ``host``'s worker monitor-state snapshot."""
        with self._lock_for(host):
            self._send(host, wire.encode_monitor_pull())
            reply = self._recv(host)
            kind = self._checked_decode(host, reply, wire.frame_type)
            if kind == wire.MSG_ERROR:
                detail = self._checked_decode(host, reply, wire.decode_error)
                raise AgentServerError(f"agent server on {host}: {detail}")
            return self._checked_decode(host, reply,
                                        wire.decode_monitor_state)

    def ping(self, host: str) -> int:
        """Probe ``host``'s worker; returns its TIB record count."""
        return self.ping_state(host)[0]

    def ping_state(self, host: str) -> Tuple[int, int]:
        """Probe ``host``'s worker: ``(TIB records, monitor flows)``."""
        with self._lock_for(host):
            self._send(host, wire.encode_ping())
            reply = self._recv(host)
            return self._checked_decode(host, reply, wire.decode_pong_state)

    def reset(self, host: str) -> None:
        """Clear ``host``'s worker state (TIB, monitor, pending alarms)."""
        with self._lock_for(host):
            self._send(host, wire.encode_reset())

    def stall(self, host: str, seconds: float) -> None:
        """Make ``host``'s worker sleep before its next frame (debug/test)."""
        with self._lock_for(host):
            self._send(host, wire.encode_sleep(seconds))

    def kill(self, host: str) -> None:
        """Hard-kill ``host``'s worker (failure injection)."""
        self._lock_for(host)  # raises for unknown hosts
        self._procs[host].kill()  # lint: disable=R3 -- failure injection must not queue behind an in-flight exchange

    def alive(self, host: str) -> bool:
        """Whether ``host``'s worker process is running."""
        self._lock_for(host)  # raises for unknown hosts
        return self._procs[host].is_alive()  # lint: disable=R3 -- liveness probe is racy by contract

    def healthy(self, host: str) -> bool:
        """Whether ``host``'s worker is serving: process alive and (when
        supervised) its restart circuit still closed."""
        if self.supervisor is not None and self.supervisor.circuit_open(host):
            return False
        process = self._procs.get(host)  # lint: disable=R3 -- health probe is racy by contract
        return process is not None and process.is_alive()

    def note_restart(self, reseed_ms: float) -> None:
        """Supervisor hook: one worker restart completed."""
        with self._stats_lock:
            self.stats.restarts += 1
            self.stats.reseed_ms += reseed_ms

    def note_circuit_open(self) -> None:
        """Supervisor hook: one host's restart budget was exhausted."""
        with self._stats_lock:
            self.stats.circuit_open += 1

    def note_mirror_detach(self, host: str) -> None:
        """Cluster hook: an ingest mirror for ``host`` detached."""
        with self._stats_lock:
            self.stats.mirror_detaches += 1

    def _lock_for(self, host: str) -> threading.Lock:
        lock = self._locks.get(host)
        if lock is None:
            raise AgentServerError(f"no agent server for {host}")
        return lock

    def reset_stats(self) -> None:
        """Zero the pool's frame/byte counters."""
        with self._stats_lock:
            self.stats.reset()

    def shutdown(self, join_timeout_s: float = 2.0) -> None:
        """Stop every worker (politely, then by force) and close the pipes.

        Idempotent: calling it again is a no-op (closed pipes swallow the
        polite shutdown, dead processes join immediately).  Marks the
        pool closed *first* so a concurrent failure cannot trigger a
        supervised restart of a worker that is being torn down.
        """
        self._closed = True
        # _closed (set above) keeps supervision from respawning workers
        # underneath the teardown, so the unlocked iteration is safe.
        for host, conn in self._conns.items():  # lint: disable=R3 -- teardown runs after _closed is latched
            try:
                conn.send_bytes(wire.encode_shutdown())
            except (OSError, ValueError):
                pass
        for host, process in self._procs.items():  # lint: disable=R3 -- teardown runs after _closed is latched
            process.join(join_timeout_s)
            if process.is_alive():
                process.kill()
                process.join(join_timeout_s)
        for conn in self._conns.values():  # lint: disable=R3 -- teardown runs after _closed is latched
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "AgentServerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------- internals
    def _send(self, host: str, frame: bytes, supervise: bool = True,
              reseed: bool = False) -> None:  # holds: _lock_for
        conn = self._conns.get(host)
        if conn is None:
            raise AgentServerError(f"no agent server for {host}")
        if self.chaos is not None:
            for extra in self.chaos.before_send(self, host, frame,
                                                reseed=reseed):
                try:
                    conn.send_bytes(extra)
                except (OSError, ValueError, BrokenPipeError):
                    pass  # injected fault frames are best-effort
        try:
            conn.send_bytes(frame)
        except (OSError, ValueError, BrokenPipeError) as error:
            raise self._worker_failed(
                host,
                f"agent server on {host} unreachable: "
                f"{type(error).__name__}: {error}",
                supervise=supervise) from error
        with self._stats_lock:
            self.stats.frames_sent += 1
            self.stats.bytes_sent += len(frame)

    def _recv(self, host: str, supervise: bool = True,
              timeout_s=_UNSET) -> bytes:  # holds: _lock_for
        conn = self._conns[host]
        timeout = self.reply_timeout_s if timeout_s is _UNSET else timeout_s
        try:
            if timeout is not None and not conn.poll(timeout):
                # The reply will still arrive *eventually* and would sit in
                # the pipe, answering the wrong request forever after (the
                # protocol is strict request/reply).  A timed-out worker is
                # declared dead: kill it and close the pipe so every later
                # exchange fails loudly instead of desynchronising.
                self._procs[host].kill()
                try:
                    conn.close()
                except OSError:
                    pass
                raise self._worker_failed(
                    host,
                    f"agent server on {host} did not reply within "
                    f"{timeout}s; worker killed", supervise=supervise)
            reply = conn.recv_bytes()
        except AgentServerError:
            raise
        except (EOFError, OSError) as error:
            raise self._worker_failed(
                host,
                f"agent server on {host} died mid-exchange: "
                f"{type(error).__name__}: {error}",
                supervise=supervise) from error
        with self._stats_lock:
            self.stats.frames_received += 1
            self.stats.bytes_received += len(reply)
        if self.chaos is not None:
            reply = self.chaos.on_reply(host, reply)
        return reply

    def _worker_failed(self, host: str, detail: str,
                       supervise: bool = True) -> AgentServerError:
        """Handle a failed exchange: hand the host to the supervisor (if
        any) and return the error for the caller to raise.

        The in-flight exchange is lost either way - its request died with
        the worker and a fresh worker must never answer it - but with a
        supervisor the restart-with-recovery completes *before* the error
        surfaces, so the next exchange (or an executor retry) lands on a
        healthy worker.  Without one, the error text and side effects are
        exactly the pre-supervision dead-agent behaviour.
        """
        if supervise and self.supervisor is not None and not self._closed:
            self.supervisor.handle_failure(self, host, detail)
        return AgentServerError(detail)

    def _checked_decode(self, host: str, reply: bytes,  # holds: _lock_for
                        decoder, *args):
        """Decode a reply frame, treating corruption as worker failure.

        An undecodable reply means the strict request/reply protocol is
        desynchronised - nothing later on this pipe can be trusted - so
        the worker is killed like a timed-out one (and, when supervised,
        restarted and re-seeded).  Called with the host's exchange lock
        held.
        """
        try:
            return decoder(reply, *args)
        except wire.WireError as error:
            with self._stats_lock:
                self.stats.decode_errors += 1
            process = self._procs.get(host)
            if process is not None and process.is_alive():
                process.kill()
            conn = self._conns.get(host)
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
            raise self._worker_failed(
                host,
                f"agent server on {host} sent an undecodable reply; "
                f"worker killed: {error}") from error

    def _respawn(self, host: str) -> None:
        """Supervisor hook: replace ``host``'s worker with a fresh process
        and pipe (the old ones, dead or wedged, are discarded)."""
        self._discard(host)
        self._spawn(host)

    def _discard(self, host: str) -> None:  # holds: _lock_for
        """Kill ``host``'s worker and close its pipe (no replacement).

        Also the supervisor's cleanup for a *failed* restart attempt: a
        respawned worker whose re-seed failed must not stay up serving
        empty state - a half-seeded worker answering queries would break
        payload identity silently, where a dead one degrades loudly."""
        conn = self._conns.get(host)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        process = self._procs.get(host)
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join(5.0)

    def _reseed(self, host: str, seed, timeout_s: float = 30.0) -> None:
        """Supervisor hook: replay ``seed`` into ``host``'s fresh worker
        and barrier on it before the worker serves anything.

        The replay order matches the startup sync exactly: retention cap
        first (pipe FIFO puts it in force before the snapshot streams
        in, so the worker ages records into its own cold archive), then
        the TIB snapshot as record batches, then the monitor state with
        its alerted latches, then a ping whose reply must confirm the
        worker holds the state - a short count is a **ping-barrier
        miss** and fails the restart attempt.  Failures here do not
        recurse into supervision (``supervise=False``); the supervisor
        counts them against the restart budget.
        """
        if self.chaos is not None:
            self.chaos.begin_reseed(host)
        records = seed.records or ()
        if seed.retention is not None:
            self._send(host, wire.encode_retention(*seed.retention),
                       supervise=False, reseed=True)
        chunk = self.INGEST_CHUNK_RECORDS
        for start in range(0, len(records), chunk):
            self._send(host,
                       wire.encode_record_batch(records[start:start + chunk]),
                       supervise=False, reseed=True)
        expected_flows = 0
        if seed.monitor is not None:
            self._send(host, wire.encode_monitor_state(seed.monitor),
                       supervise=False, reseed=True)
            expected_flows = len(seed.monitor.flows)
        self._send(host, wire.encode_ping(), supervise=False, reseed=True)
        reply = self._recv(host, supervise=False, timeout_s=timeout_s)
        applied, monitor_flows = wire.decode_pong_state(reply)
        if applied < len(records) or monitor_flows < expected_flows:
            raise AgentServerError(
                f"agent server on {host} re-seed barrier miss: holds "
                f"{applied}/{len(records)} records and "
                f"{monitor_flows}/{expected_flows} monitor flows")


class ProcessTransport(ModelTransport):
    """The model transport bound to an agent-server pool.

    The executor's request/response legs are priced by the same
    :class:`~repro.core.rpc.RpcChannel` model as :class:`ModelTransport`
    (so modelled response times stay comparable across modes), but the
    *sizes* flowing through it are the real encoded frame lengths the
    cluster measured, and the per-host work itself is the real pipe
    exchange with the worker - its cost shows up in the measured
    ``exec_s``/``wall_s``, not the model.
    """

    def __init__(self, pool: AgentServerPool,
                 channel: Optional[RpcChannel] = None) -> None:
        super().__init__(channel)
        self.pool = pool

    def reset_stats(self) -> None:
        """Zero the channel counters and the pool's frame counters."""
        self.channel.reset()
        self.pool.reset_stats()
