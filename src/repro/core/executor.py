"""Concurrent scatter-gather execution for distributed queries.

The TIB is "maintained in a distributed fashion across all servers", so a
distributed query is a scatter-gather: ship the query to many hosts, run it
against each local TIB, and reduce the partial results.  Until now
:class:`~repro.core.cluster.QueryCluster` walked hosts in a Python loop and
*modelled* parallelism arithmetically.  This module supplies the real
engine, generic over the work performed per host:

* :class:`Transport` - the pluggable delivery protocol.  An implementation
  decides what "sending" means: :class:`ModelTransport` wraps the
  latency/bandwidth :class:`~repro.core.rpc.RpcChannel` model (nothing
  actually moves; latencies are computed and traffic is accounted), while
  :class:`LoopbackTransport` is an in-process transport with injectable
  *real* delays (``time.sleep`` releases the GIL, so concurrent runs
  genuinely overlap waits) and injectable message drops for failure
  testing.
* :class:`PlanNode` - the scatter plan, a tree.  A flat (direct) scatter is
  a one-level tree; a multi-level aggregation query maps its tree onto the
  plan one to one.  All logical payloads of a parent->child edge (query,
  subtree description) are *batched* into a single request message.
* :class:`ScatterGatherExecutor` - runs a plan.  ``mode="concurrent"``
  fans host work out over a worker pool with per-host timeouts, bounded
  retries and straggler hedging; ``mode="serial"`` executes the same plan
  on the calling thread in a deterministic order (reproducible figures).

Streaming partial merges: every node owns an accumulator and merges
results *as they arrive* instead of waiting for a full level barrier - a
fast child's partial result is folded in while its siblings are still
running.  Merges advance in a canonical slot order (children in tree
order, then the node's local result), so as long as the merge function is
associative the merged payload is **identical** across serial and
concurrent modes - the property the figure benchmarks rely on.
Declarative plan queries (:mod:`repro.core.plan`) reuse these slot-ordered
accumulators unchanged: their generic merge operators (concat /
histogram-merge / top-k-merge, selected by the plan's terminal op) are
associative by construction, so one executor serves hand-written and
plan-compiled queries alike.

Partial-failure semantics: a host that cannot be reached, exhausts its
retry budget, times out, or whose local work raises is recorded as a
structured :class:`ExecWarning` and the gather continues without it.  The
final :class:`GatherResult` carries ``partial=True`` plus ``hosts_failed``
so debugging applications can distinguish "no anomaly" from "couldn't
ask" (cf. the ``ExecuteResponse``/``Warning`` pattern of DCL-style
executors).  A failed interior node loses only its *local* partial result;
its subtree still aggregates (the node's process is assumed alive even
when its TIB query fails).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Protocol, Sequence,
                    Tuple)

from repro.core.rpc import RpcChannel

#: Execution modes.
MODE_SERIAL = "serial"
MODE_CONCURRENT = "concurrent"

#: Structured warning codes.
W_HOST_FAILED = "host_failed"
W_HOST_TIMEOUT = "host_timeout"
W_RESPONSE_LOST = "response_lost"
W_HEDGED = "straggler_hedged"
W_RETRIED = "retried"
#: Worker-plane health codes (raised by the cluster, not the executor,
#: but part of the same structured-warning namespace): a supervised
#: agent-server worker was restarted and re-seeded, a host's restart
#: budget ran out (degraded to dead-agent semantics), an ingest mirror
#: detached after an unrecoverable delivery failure.
W_WORKER_RESTARTED = "worker_restarted"
W_CIRCUIT_OPEN = "circuit_open"
W_MIRROR_DETACHED = "mirror_detached"

#: Default worker-pool size cap for concurrent runs.
DEFAULT_MAX_WORKERS = 32

#: Sentinel marking an unfilled merge slot (``None`` is a valid value).
_EMPTY = object()


class TransportError(RuntimeError):
    """A request or response message could not be delivered."""


@dataclass(frozen=True)
class ExecWarning:
    """A structured warning attached to a partially failed query.

    Attributes:
        code: one of the ``W_*`` constants.
        host: the host the warning concerns.
        detail: human-readable context (exception text, timeout value, ...).
        attempts: delivery attempts made for this host.
    """

    code: str
    host: str
    detail: str = ""
    attempts: int = 1


@dataclass(frozen=True)
class TransportLeg:
    """Outcome of one delivered message.

    Attributes:
        latency_s: the leg's (modelled or real) one-way latency.
        payload_bytes: logical payload bytes moved (excluding protocol
            overhead; this is what query traffic accounting sums).
    """

    latency_s: float
    payload_bytes: int


class Transport(Protocol):
    """The pluggable delivery protocol of the executor.

    ``request`` delivers a batched request (several logical payload sizes in
    one message) to ``host``; ``respond`` delivers a result of
    ``payload_bytes`` from ``host`` back to its parent.  Implementations
    raise :class:`TransportError` for lost messages and may block (sleep)
    to emulate latency for real-concurrency experiments.
    """

    def request(self, host: str, parts: Sequence[int]) -> TransportLeg: ...

    def respond(self, host: str, payload_bytes: int) -> TransportLeg: ...


class ModelTransport:
    """The latency/bandwidth :class:`RpcChannel` model as a transport.

    Nothing is delivered anywhere: latencies are computed from the channel
    model and the channel's message/byte counters are updated.  Thread-safe
    (the underlying counters are guarded by a lock).
    """

    def __init__(self, channel: Optional[RpcChannel] = None) -> None:
        self.channel = channel or RpcChannel()
        self._lock = threading.Lock()

    def request(self, host: str, parts: Sequence[int]) -> TransportLeg:
        with self._lock:
            latency = self.channel.send_batch(parts)
        return TransportLeg(latency, sum(parts))

    def respond(self, host: str, payload_bytes: int) -> TransportLeg:
        with self._lock:
            latency = self.channel.send(payload_bytes)
        return TransportLeg(latency, payload_bytes)


class LoopbackTransport:
    """In-process transport with injectable delays and drops.

    Args:
        delay: request delivery delay in seconds, or a callable
            ``(host, attempt) -> seconds`` (attempt numbering starts at 1,
            counted per host - hedged and retried deliveries see higher
            attempt numbers, which lets tests make only the first attempt
            slow).  Delays are *really slept*, releasing the GIL, so
            concurrent scatters overlap them.
        respond_delay: same for response delivery (``(host, attempt)``
            callable or constant).
        drop_requests: ``{host: n}`` - drop (raise) the first ``n`` request
            deliveries to ``host``.
        drop_responses: ``{host: n}`` - same for responses from ``host``.
        dead_hosts: hosts whose messages are always dropped.
    """

    def __init__(self, delay: Any = 0.0, respond_delay: Any = 0.0,
                 drop_requests: Optional[Dict[str, int]] = None,
                 drop_responses: Optional[Dict[str, int]] = None,
                 dead_hosts: Sequence[str] = ()) -> None:
        self._delay = delay if callable(delay) else (lambda h, a: delay)
        self._respond_delay = (respond_delay if callable(respond_delay)
                               else (lambda h, a: respond_delay))
        self._drop_requests = dict(drop_requests or {})
        self._drop_responses = dict(drop_responses or {})
        self.dead_hosts = set(dead_hosts)
        self.messages = 0
        self.dropped = 0
        self._request_attempts: Dict[str, int] = {}
        self._respond_attempts: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _attempt_number(self, counts: Dict[str, int], host: str) -> int:
        with self._lock:
            counts[host] = attempt = counts.get(host, 0) + 1
            self.messages += 1
        return attempt

    def request(self, host: str, parts: Sequence[int]) -> TransportLeg:
        attempt = self._attempt_number(self._request_attempts, host)
        if host in self.dead_hosts or attempt <= self._drop_requests.get(host, 0):
            with self._lock:
                self.dropped += 1
            raise TransportError(f"request to {host} lost (attempt {attempt})")
        wait = float(self._delay(host, attempt))
        if wait > 0:
            time.sleep(wait)
        return TransportLeg(wait, sum(parts))

    def respond(self, host: str, payload_bytes: int) -> TransportLeg:
        attempt = self._attempt_number(self._respond_attempts, host)
        if host in self.dead_hosts or attempt <= self._drop_responses.get(host, 0):
            with self._lock:
                self.dropped += 1
            raise TransportError(f"response from {host} lost (attempt {attempt})")
        wait = float(self._respond_delay(host, attempt))
        if wait > 0:
            time.sleep(wait)
        return TransportLeg(wait, payload_bytes)

    def reset_stats(self) -> None:
        """Zero the message/drop counters and per-host attempt numbering."""
        with self._lock:
            self.messages = 0
            self.dropped = 0
            self._request_attempts.clear()
            self._respond_attempts.clear()


# --------------------------------------------------------------------------
# Plans and results
# --------------------------------------------------------------------------
@dataclass
class PlanNode:
    """One node of a scatter plan.

    Attributes:
        host: the host executing work at this node (``None`` for the
            controller root, which only merges).
        request_parts: logical payload sizes of the parent->node request,
            batched into one message (empty for the root, which originates
            the query).
        children: child plan nodes, in canonical merge order.
    """

    host: Optional[str]
    request_parts: Tuple[int, ...] = ()
    children: List["PlanNode"] = field(default_factory=list)


@dataclass
class HostReport:
    """Per-host outcome of a scatter."""

    host: str
    ok: bool = False
    attempts: int = 0
    hedged: bool = False
    exec_s: float = 0.0
    request_latency_s: float = 0.0
    respond_latency_s: float = 0.0
    error: str = ""


@dataclass
class GatherResult:
    """Outcome of one scatter-gather run.

    Attributes:
        value: the root accumulator (``None`` when every host failed).
        hosts_failed: hosts whose work never produced a merged result.
        warnings: structured warnings (failures, timeouts, hedges, retries).
        partial: whether any host's partial result is missing.
        wall_s: measured wall-clock duration of the run.
        model_time_s: modelled end-to-end response time (transport
            latencies + measured per-node execution and merge times,
            combined over the plan tree).
        traffic_bytes: logical payload bytes moved by the transport legs
            that produced the gathered result - one winning request leg
            per host plus the delivered responses.  Bytes moved by
            duplicate attempts (lost hedge races, retries whose work
            failed, deliveries voided by a timeout) are **not** included
            here; they are tallied separately so hedging can never inflate
            the traffic attributed to the query itself.
        duplicate_traffic_bytes: payload bytes moved by those non-winning
            attempts (the overhead cost of hedging/retrying).  Attempts
            still sleeping in the transport when the gather completes are
            not observed at all.
        root_merge_s: cumulative merge time spent at the root node.
        merge_s_total: cumulative merge time over every node.
        root_merges: number of pairwise merges performed at the root.
        max_exec_s: slowest successful per-host execution.
        reports: per-host :class:`HostReport` entries.
    """

    value: Any
    hosts_failed: List[str]
    warnings: List[ExecWarning]
    partial: bool
    wall_s: float
    model_time_s: float
    traffic_bytes: int
    duplicate_traffic_bytes: int
    root_merge_s: float
    merge_s_total: float
    root_merges: int
    max_exec_s: float
    reports: Dict[str, HostReport]


# --------------------------------------------------------------------------
# Internal run state
# --------------------------------------------------------------------------
class _NodeState:
    """Merge accumulator and completion tracking for one plan node."""

    __slots__ = ("plan", "parent", "slot", "n_slots", "next_slot", "slots",
                 "acc", "merges", "merge_s", "contrib_max", "lock",
                 "respond_latency", "host_state")

    def __init__(self, plan: PlanNode, parent: Optional["_NodeState"],
                 slot: int) -> None:
        self.plan = plan
        self.parent = parent
        self.slot = slot
        # Children occupy slots 0..len-1 in tree order; the node's local
        # result (when it has a host) occupies the final slot.
        self.n_slots = len(plan.children) + (1 if plan.host is not None else 0)
        self.next_slot = 0
        self.slots: List[Any] = [_EMPTY] * self.n_slots
        self.acc: Any = _EMPTY
        self.merges = 0
        self.merge_s = 0.0
        self.contrib_max = 0.0      # max over completed slots' model times
        self.lock = threading.Lock()
        self.respond_latency = 0.0
        self.host_state: Optional["_HostState"] = None


class _HostState:
    """Attempt bookkeeping for one host's request+work unit."""

    __slots__ = ("node", "host", "lock", "work_lock", "done", "attempts",
                 "budget", "inflight", "hedged", "started_at", "report")

    def __init__(self, node: _NodeState) -> None:
        self.node = node
        self.host: str = node.plan.host  # type: ignore[assignment]
        self.lock = threading.Lock()
        # Serialises the work() callback across duplicate attempts: hedge
        # twins overlap each other's *transport* legs (where stragglers
        # live) but never run the host's local work - typically a query
        # against a thread-unsafe agent - concurrently.
        self.work_lock = threading.Lock()
        self.done = False
        self.attempts = 0
        self.budget = 1
        self.inflight = 0
        self.hedged = False
        self.started_at: Optional[float] = None
        self.report = HostReport(host=self.host)


class ScatterGatherExecutor:
    """Runs scatter plans over a transport.

    Args:
        transport: the delivery protocol (defaults to a fresh
            :class:`ModelTransport`).
        mode: ``"concurrent"`` (worker pool) or ``"serial"`` (deterministic
            in-order execution on the calling thread).
        max_workers: worker-pool size cap for concurrent runs (defaults to
            ``min(32, number of hosts)``).
        timeout_s: per-host deadline; a host still running past it is
            declared failed (its partial result is dropped even if the
            worker later finishes).  In serial mode the deadline is applied
            to the host's measured request+execution time after the fact.
        hedge_after_s: straggler hedging - a host still running past this
            point gets a duplicate attempt launched; whichever finishes
            first wins.  Concurrent mode only.
        retries: bounded retry budget per host for transport errors and
            work exceptions.
    """

    def __init__(self, transport: Optional[Transport] = None,
                 mode: str = MODE_CONCURRENT,
                 max_workers: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 hedge_after_s: Optional[float] = None,
                 retries: int = 0) -> None:
        if mode not in (MODE_SERIAL, MODE_CONCURRENT):
            raise ValueError(f"unknown executor mode {mode!r}")
        if retries < 0:
            raise ValueError("retry budget cannot be negative")
        self.transport: Transport = transport or ModelTransport()
        self.mode = mode
        self.max_workers = max_workers
        self.timeout_s = timeout_s
        self.hedge_after_s = hedge_after_s
        self.retries = retries

    # ------------------------------------------------------------------- API
    def run(self, plan: PlanNode, work: Callable[[str], Any],
            merge: Callable[[Any, Any], Any],
            response_bytes: Callable[[Any], int] = lambda value: 0
            ) -> GatherResult:
        """Execute ``plan``: run ``work(host)`` at every host node, merge
        results upward with ``merge(acc, value)``, and return the gathered
        outcome.  ``response_bytes(value)`` sizes response messages for the
        transport."""
        run = _Run(self, plan, work, merge, response_bytes)
        return run.execute()

    def map_local(self, labels: Sequence[str],
                  work: Callable[[str], Any]) -> List[Any]:
        """Run independent local work units as one flat scatter; returns
        their results in label order.

        A convenience for compute-only fan-out - e.g. the cold archive's
        segment-parallel scans: each label becomes a leaf of a flat plan
        with no request payload (no transport request leg is modelled),
        ``work(label)`` runs under the executor's normal scheduling, and
        the merged value is the list of per-label results in canonical
        slot order - identical across serial and concurrent modes by
        construction.  Partial results would silently drop data, so any
        failed unit fails the whole map.
        """
        if not labels:
            return []
        plan = PlanNode(host=None,
                        children=[PlanNode(host=label) for label in labels])
        gather = self.run(plan, lambda label: [work(label)],
                          lambda acc, value: acc + value)
        if gather.partial or gather.value is None \
                or len(gather.value) != len(labels):
            failed = ", ".join(gather.hosts_failed) or "unknown unit"
            raise TransportError(f"local map lost work units: {failed}")
        return gather.value


class _Run:
    """One scatter-gather execution (state shared by all worker threads)."""

    def __init__(self, executor: ScatterGatherExecutor, plan: PlanNode,
                 work: Callable[[str], Any], merge: Callable[[Any, Any], Any],
                 response_bytes: Callable[[Any], int]) -> None:
        self.executor = executor
        self.transport = executor.transport
        self.work = work
        self.merge = merge
        self.response_bytes = response_bytes
        self.serial = executor.mode == MODE_SERIAL
        self.root = _NodeState(plan, parent=None, slot=-1)
        self.host_states: List[_HostState] = []
        self.node_states: List[_NodeState] = [self.root]
        self._build(plan, self.root)
        self.lock = threading.Lock()
        self.traffic_bytes = 0
        self.duplicate_bytes = 0
        self.warnings: List[ExecWarning] = []
        self.finished = threading.Event()
        self.model_time_s = 0.0
        self.pool: Optional[ThreadPoolExecutor] = None
        #: First fatal error (a merge/response_bytes callback raising) -
        #: recorded on whatever thread hit it, re-raised to the caller.
        self.error: Optional[BaseException] = None

    def _build(self, plan: PlanNode, state: _NodeState) -> None:
        """Create node/host states depth-first (canonical dispatch order)."""
        if plan.host is not None:
            state.host_state = _HostState(state)
            self.host_states.append(state.host_state)
        for index, child in enumerate(plan.children):
            child_state = _NodeState(child, parent=state, slot=index)
            self.node_states.append(child_state)
            self._build(child, child_state)

    # ------------------------------------------------------------ execution
    def execute(self) -> GatherResult:
        budget = self.executor.retries + 1
        for hstate in self.host_states:
            hstate.budget = budget
        started = time.perf_counter()
        if not self.host_states:
            # Scattering to nobody is a valid degenerate query (e.g. a host
            # filter that matched nothing): an empty, non-partial gather.
            return self._result(0.0)
        if self.serial:
            for hstate in self.host_states:
                if self.error is not None:
                    break
                self._submit(hstate)
        else:
            workers = self.executor.max_workers or min(DEFAULT_MAX_WORKERS,
                                                       len(self.host_states))
            self.pool = ThreadPoolExecutor(
                max_workers=max(1, workers),
                thread_name_prefix="scatter-gather")
            watchdog = None
            if self.executor.timeout_s is not None or \
                    self.executor.hedge_after_s is not None:
                watchdog = threading.Thread(target=self._watchdog,
                                            daemon=True)
                watchdog.start()
            for hstate in self.host_states:
                self._submit(hstate)
            self.finished.wait()
            # Stragglers that lost a hedge race (or timed out) may still be
            # sleeping in the transport; don't wait for them.
            self.pool.shutdown(wait=False, cancel_futures=True)
        if self.error is not None:
            raise self.error
        wall = time.perf_counter() - started
        return self._result(wall)

    def _submit(self, hstate: _HostState) -> None:
        """Launch one attempt for ``hstate`` (inline in serial mode)."""
        with hstate.lock:
            hstate.attempts += 1
            hstate.inflight += 1
            hstate.report.attempts = hstate.attempts
        if self.serial or self.pool is None:
            self._attempt(hstate)
        else:
            self.pool.submit(self._attempt, hstate)

    def _attempt(self, hstate: _HostState) -> None:
        host = hstate.host
        with hstate.lock:
            if hstate.done:
                hstate.inflight -= 1
                return
            if hstate.started_at is None:
                hstate.started_at = time.perf_counter()
        request_latency = 0.0
        # Bytes this attempt's delivered request leg moved: accounted as
        # real traffic up front, reclassified as duplicate overhead if the
        # attempt turns out not to be the one that produced the host's
        # result (hedge race lost, work failed, deadline voided it).
        leg_bytes = 0
        try:
            parts = hstate.node.plan.request_parts
            if parts:
                leg = self.transport.request(host, parts)
                request_latency = leg.latency_s
                leg_bytes = leg.payload_bytes
                self._account(leg)
            with hstate.work_lock:
                with hstate.lock:
                    already_done = hstate.done
                if already_done:  # a hedge twin won while we waited
                    self._reclassify_duplicate(leg_bytes)
                    with hstate.lock:
                        hstate.inflight -= 1
                    return
                exec_started = time.perf_counter()
                value = self.work(host)
                exec_s = time.perf_counter() - exec_started
        except Exception as error:  # TransportError or broken agent/work
            self._reclassify_duplicate(leg_bytes)
            self._attempt_failed(hstate, error)
            return
        if self.serial and self.executor.timeout_s is not None and \
                request_latency + exec_s > self.executor.timeout_s:
            # The deadline was blown by the (modelled) delivery plus the
            # execution, so that is what the slot contributes to the model.
            self._reclassify_duplicate(leg_bytes)
            self._host_failed(hstate, W_HOST_TIMEOUT,
                              f"exceeded per-host timeout of "
                              f"{self.executor.timeout_s}s",
                              model_s=request_latency + exec_s)
            return
        with hstate.lock:
            hstate.inflight -= 1
            if hstate.done:
                # A hedge twin won, or the watchdog timed us out: this
                # attempt's delivered request was overhead, not query
                # traffic.
                self._reclassify_duplicate(leg_bytes)
                return
            hstate.done = True
            hstate.report.ok = True
            hstate.report.exec_s = exec_s
            hstate.report.request_latency_s = request_latency
        if hstate.hedged:
            self._warn(W_HEDGED, host, "straggler hedged; fastest attempt "
                       "won", hstate.attempts)
        elif hstate.attempts > 1:
            self._warn(W_RETRIED, host, "delivered after retry",
                       hstate.attempts)
        # The local slot models execution only; the request leg prefixes
        # the node's *whole* subtree completion (children cannot start
        # before the node received the query) and is added when the merged
        # result travels upward - see _respond_upward.
        self._deliver(hstate.node, hstate.node.n_slots - 1, value,
                      exec_s, ok=True)

    def _attempt_failed(self, hstate: _HostState, error: Exception) -> None:
        with hstate.lock:
            hstate.inflight -= 1
            if hstate.done:
                return
            exhausted = hstate.attempts >= hstate.budget
            inflight = hstate.inflight
        if not exhausted:
            self._submit(hstate)
            return
        if inflight == 0:
            self._host_failed(hstate, W_HOST_FAILED,
                              f"{type(error).__name__}: {error}")

    def _host_failed(self, hstate: _HostState, code: str, detail: str,
                     model_s: Optional[float] = None) -> None:
        with hstate.lock:
            if hstate.done:
                return
            hstate.done = True
            hstate.report.ok = False
            hstate.report.error = detail
            if model_s is None:
                # No modelled duration available (dropped messages, real
                # watchdog timeouts): the measured wait stands in.
                model_s = 0.0
                if hstate.started_at is not None:
                    model_s = time.perf_counter() - hstate.started_at
        self._warn(code, hstate.host, detail, hstate.attempts)
        self._deliver(hstate.node, hstate.node.n_slots - 1, None,
                      model_s, ok=False)

    # -------------------------------------------------------------- watchdog
    def _watchdog(self) -> None:
        timeout = self.executor.timeout_s
        hedge = self.executor.hedge_after_s
        ticks = [v for v in (timeout, hedge) if v is not None]
        tick = min(0.05, max(0.001, min(ticks) / 4)) if ticks else 0.01
        while not self.finished.wait(tick):
            now = time.perf_counter()
            for hstate in self.host_states:
                with hstate.lock:
                    if hstate.done or hstate.started_at is None:
                        continue
                    elapsed = now - hstate.started_at
                    fire_timeout = timeout is not None and elapsed > timeout
                    fire_hedge = (not fire_timeout and hedge is not None
                                  and elapsed > hedge and not hstate.hedged)
                    if fire_hedge:
                        hstate.hedged = True
                        hstate.budget += 1
                        hstate.report.hedged = True
                if fire_timeout:
                    self._host_failed(hstate, W_HOST_TIMEOUT,
                                      f"exceeded per-host timeout of "
                                      f"{timeout}s")
                elif fire_hedge:
                    self._submit(hstate)

    # ------------------------------------------------------------- gathering
    def _deliver(self, node: _NodeState, slot: int, value: Any,
                 model_s: float, ok: bool) -> None:
        """Fill a merge slot; advance the node's streaming merge; propagate
        completion upward.  Merges run on the delivering thread, in
        canonical slot order (which makes the merged payload independent of
        arrival order)."""
        with node.lock:
            node.slots[slot] = (value, model_s, ok)
            while node.next_slot < node.n_slots and \
                    node.slots[node.next_slot] is not _EMPTY:
                slot_value, slot_model, slot_ok = node.slots[node.next_slot]
                node.slots[node.next_slot] = None  # release the reference
                node.next_slot += 1
                node.contrib_max = max(node.contrib_max, slot_model)
                if not slot_ok:
                    continue
                if node.acc is _EMPTY:
                    node.acc = slot_value
                else:
                    merge_started = time.perf_counter()
                    try:
                        node.acc = self.merge(node.acc, slot_value)
                    except BaseException as error:
                        # A broken merge callback must fail the run, not
                        # strand finished.wait() forever (the slot is
                        # consumed; no other thread can complete the node).
                        self._abort(error)
                        return
                    node.merge_s += time.perf_counter() - merge_started
                    node.merges += 1
            complete = node.next_slot == node.n_slots
            if complete:
                acc = node.acc
                completion_model = node.contrib_max + node.merge_s
        if not complete:
            return
        if node.parent is None:
            self.model_time_s = completion_model
            self.finished.set()
            return
        self._respond_upward(node, acc, completion_model)

    def _respond_upward(self, node: _NodeState, acc: Any,
                        completion_model: float) -> None:
        """Send a completed node's merged result to its parent."""
        host = node.plan.host
        try:
            payload = 0 if acc is _EMPTY else self.response_bytes(acc)
        except BaseException as error:
            self._abort(error)
            return
        latency = 0.0
        delivered = False
        detail = ""
        for _ in range(self.executor.retries + 1):
            try:
                leg = self.transport.respond(host, payload)
                latency = leg.latency_s
                self._account(leg)
                delivered = True
                break
            except TransportError as error:
                detail = str(error)
            except BaseException as error:
                # A transport bug (not a modelled delivery failure) must
                # fail the whole run, not strand the parent's merge slot.
                self._abort(error)
                return
        if not delivered and acc is not _EMPTY:
            # Only actual merged data going missing is worth a warning; an
            # empty response from an already-failed subtree is not news.
            self._warn(W_RESPONSE_LOST, host, detail)
        node.respond_latency = latency
        request_latency = 0.0
        if node.host_state is not None:
            node.host_state.report.respond_latency_s = latency
            request_latency = node.host_state.report.request_latency_s
        # Chain the model through the tree exactly as the recursion of the
        # old arithmetic executor did: this subtree's contribution to its
        # parent is request leg + subtree completion + response leg (the
        # children could not start before this node received the query).
        contribution = request_latency + completion_model + latency
        if acc is _EMPTY or not delivered:
            if acc is not _EMPTY:  # merged data lost on the way up
                self._fail_subtree_hosts(node)
            self._deliver(node.parent, node.slot, None, contribution,
                          ok=False)
        else:
            self._deliver(node.parent, node.slot, acc, contribution,
                          ok=True)

    def _fail_subtree_hosts(self, node: _NodeState) -> None:
        """Mark every ok host under ``node`` as lost (their merged partials
        never reached the parent)."""
        hosts = {h.host: h for h in self.host_states}
        stack = [node.plan]
        while stack:
            plan = stack.pop()
            stack.extend(plan.children)
            hstate = hosts.get(plan.host) if plan.host is not None else None
            if hstate is not None and hstate.report.ok:
                hstate.report.ok = False
                hstate.report.error = "subtree response lost"

    # ------------------------------------------------------------- plumbing
    def _abort(self, error: BaseException) -> None:
        """Record a fatal callback error and wake the orchestrator."""
        with self.lock:
            if self.error is None:
                self.error = error
        self.finished.set()

    def _account(self, leg: TransportLeg) -> None:
        with self.lock:
            self.traffic_bytes += leg.payload_bytes

    def _reclassify_duplicate(self, payload_bytes: int) -> None:
        """Move a delivered-but-useless request leg's bytes from the query's
        traffic total to the duplicate-attempt overhead stat."""
        if not payload_bytes:
            return
        with self.lock:
            self.traffic_bytes -= payload_bytes
            self.duplicate_bytes += payload_bytes

    def _warn(self, code: str, host: str, detail: str,
              attempts: int = 1) -> None:
        with self.lock:
            self.warnings.append(ExecWarning(code=code, host=host,
                                             detail=detail,
                                             attempts=attempts))

    def _result(self, wall: float) -> GatherResult:
        reports = {h.host: h.report for h in self.host_states}
        hosts_failed = [h.host for h in self.host_states if not h.report.ok]
        warnings = sorted(self.warnings, key=lambda w: (w.host, w.code))
        merge_total = sum(node.merge_s for node in self.node_states)
        max_exec = max((h.report.exec_s for h in self.host_states
                        if h.report.ok), default=0.0)
        value = None if self.root.acc is _EMPTY else self.root.acc
        return GatherResult(
            value=value, hosts_failed=hosts_failed, warnings=warnings,
            partial=bool(hosts_failed), wall_s=wall,
            model_time_s=self.model_time_s,
            traffic_bytes=self.traffic_bytes,
            duplicate_traffic_bytes=self.duplicate_bytes,
            root_merge_s=self.root.merge_s, merge_s_total=merge_total,
            root_merges=self.root.merges, max_exec_s=max_exec,
            reports=reports)
