"""Declarative query plans: one frozen IR from the wire to both tiers.

Every built-in question used to cost a hand-written ``QueryEngine``
handler plus bespoke wire plumbing (a ``Q_*`` constant, a per-query merge
function, sometimes a new frame).  This module replaces that treadmill
with a small declarative plan IR::

    Filter(time / link / flow-key / path predicates)
        -> Project(fields)
        -> Aggregate(sum / count / histogram, by key)
        -> TopK(k, key, order)

A :class:`Plan` is an ordered tuple of frozen op dataclasses.  The module
provides, in one place:

* a **validator** (:func:`validate`) raising :class:`PlanError` with
  structured :class:`PlanIssue` entries, plus structured per-plan
  :class:`PlanWarning` analysis (full scans, residual predicates,
  wildcard-link routing);
* a **reference brute-force evaluator** (:func:`reference_evaluate`) -
  the semantics oracle the property fuzz compares every execution tier
  mix against;
* the **pushdown executor** (:func:`execute_plan`): ``Filter`` compiles
  to a :class:`~repro.storage.records.ScanSpec` (:func:`scan_spec`), so
  the hot tier's flow/link/time index routing and the cold tier's
  zone-map/bloom pruning both apply, and the pruning work saved is
  reported per plan via ``scan_stats`` snapshots;
* the **merge operators** (concat / histogram-merge / top-k-merge)
  selected by the plan's *terminal* op (:func:`merge_operator`,
  :func:`merge_payloads`) - the generic reductions the slot-ordered
  streaming accumulators run;
* **built-in compilations** (:func:`compile_get_count`,
  :func:`compile_top_k_flows`): the proofs that the IR is expressive
  enough, payload-byte-identical to their hand-written ancestors.

Registries (``_EXEC_BY_OP``, ``_MERGE_BY_TERMINAL``) are lint-gated:
repro-lint rule R9 (``plan-op-completeness``) fails the build when an
``OP_*`` op is declared without its wire codec leg, executor leg and
merge operator.

Import discipline: this module sits *below* :mod:`repro.core.wire`
(which encodes plans into ``MSG_PLAN_REQUEST`` / ``MSG_PLAN_RESULT``
frames) and therefore imports only the record/ScanSpec layer - never
``wire``, ``query`` or ``tib``.  The executor takes the TIB duck-typed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from operator import attrgetter
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Tuple,
                    Union)

from repro.network.packet import FlowId
from repro.storage.records import (RECORD_FIELDS, PathFlowRecord, ScanSpec,
                                   flow_key, is_wild, record_field)

#: The query name plan queries travel under (``Query(name=PLAN_QUERY_NAME,
#: params={"plan": <Plan>})``); re-exported as ``Q_PLAN`` by
#: :mod:`repro.core.query`.  Defined here so the wire codec can route plan
#: queries without importing the query layer.
PLAN_QUERY_NAME = "plan"

#: Plan op codes - also the op tags of the wire encoding, and the keys of
#: the executor / merge registries (lint rule R9 cross-checks all three).
OP_FILTER = 1
OP_PROJECT = 2
OP_AGGREGATE = 3
OP_TOPK = 4

#: Aggregate functions.
AGG_SUM = "sum"
AGG_COUNT = "count"
AGG_HISTOGRAM = "histogram"
AGG_FUNCS = (AGG_SUM, AGG_COUNT, AGG_HISTOGRAM)

#: Record fields a sum/histogram may aggregate over.
NUMERIC_FIELDS = ("stime", "etime", "bytes", "pkts")

#: TopK rank dimension: rank by the aggregated value (pairs are
#: ``(value, group)``, the legacy top-k shape) or by the group key
#: (pairs are ``(group, value)``).
RANK_VALUE = "value"
RANK_GROUP = "group"

#: TopK order.
ORDER_DESC = "desc"
ORDER_ASC = "asc"

#: Generic merge operators, selected by the plan's terminal op.
MERGE_CONCAT = "concat"
MERGE_HISTOGRAM = "histogram-merge"
MERGE_TOP_K = "top-k-merge"

#: Structured issue / warning codes.
PE_EMPTY = "empty-plan"
PE_ORDER = "op-order"
PE_DUPLICATE = "duplicate-op"
PE_WINDOW = "bad-window"
PE_LINK = "bad-link"
PE_FLOW_KEY = "bad-flow-key"
PE_FIELD = "unknown-field"
PE_FUNC = "bad-aggregate"
PE_PROJECTION = "field-not-projected"
PE_TOPK = "bad-topk"
PW_FULL_SCAN = "full-scan"
PW_RESIDUAL_PATH = "residual-path"
PW_WILDCARD_LINK = "wildcard-link"

#: Pre-codec payload size estimates (cross-checks, mirroring the query
#: layer's historical estimators; reported sizes are measured frames).
_SCALAR_ESTIMATE = 16
_KV_ESTIMATE = 24


@dataclass(frozen=True)
class PlanIssue:
    """One structured validation failure."""

    code: str
    op_index: int
    detail: str


@dataclass(frozen=True)
class PlanWarning:
    """One structured per-plan warning (the plan is valid but a predicate
    could not be pushed down, or the plan scans everything)."""

    code: str
    op_index: int
    detail: str


class PlanError(ValueError):
    """A plan failed validation; ``issues`` carries the structured list."""

    def __init__(self, issues: Sequence[PlanIssue]) -> None:
        self.issues: Tuple[PlanIssue, ...] = tuple(issues)
        super().__init__("; ".join(
            f"[{issue.code}@op{issue.op_index}] {issue.detail}"
            for issue in self.issues) or "invalid plan")


def _window_bound(value: Any) -> Optional[float]:
    """Normalise one time bound (wildcards -> ``None``), like the TIB's
    ``normalise_time_range`` does for legacy keyword constraints."""
    return None if is_wild(value) else float(value)


@dataclass(frozen=True)
class Filter:
    """Record predicates.  Time window, link conjunction and flow-key
    disjunction push down into the tiers' indexes via :func:`scan_spec`;
    the exact-path predicate is residual (evaluated on the candidates,
    reported as a :data:`PW_RESIDUAL_PATH` warning).

    Construction normalises exactly like :class:`ScanSpec`: wildcard
    bounds/endpoints become ``None``, fully-wild links are dropped, flow
    keys are deduplicated and sorted (so equal filters encode to equal
    wire bytes).
    """

    start: Optional[float] = None
    end: Optional[float] = None
    links: Tuple[Tuple[Optional[str], Optional[str]], ...] = ()
    flow_keys: Tuple[str, ...] = ()
    path: Optional[Tuple[str, ...]] = None

    code = OP_FILTER

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", _window_bound(self.start))
        object.__setattr__(self, "end", _window_bound(self.end))
        links = []
        for pair in self.links:
            a, b = pair
            a = None if is_wild(a) else a
            b = None if is_wild(b) else b
            if a is None and b is None:
                continue
            links.append((a, b))
        object.__setattr__(self, "links", tuple(links))
        object.__setattr__(self, "flow_keys",
                           tuple(sorted(set(self.flow_keys))))
        if self.path is not None:
            object.__setattr__(self, "path", tuple(self.path))

    @property
    def unconstrained(self) -> bool:
        """True when every record matches."""
        return (self.start is None and self.end is None and not self.links
                and not self.flow_keys and self.path is None)


@dataclass(frozen=True)
class Project:
    """Schema narrowing.  For a record-listing plan (no ``Aggregate``)
    this selects the emitted columns; before an ``Aggregate`` it gates
    which fields downstream ops may reference (validator-enforced)."""

    fields: Tuple[str, ...] = RECORD_FIELDS

    code = OP_PROJECT

    def __post_init__(self) -> None:
        deduped = tuple(dict.fromkeys(self.fields))
        object.__setattr__(self, "fields", deduped)


@dataclass(frozen=True)
class Aggregate:
    """Reduction over the filtered records.

    ``func``: :data:`AGG_SUM` (sum ``fields``; scalar plans may sum
    several fields, keyed plans exactly one), :data:`AGG_COUNT` (record
    count, no fields), or :data:`AGG_HISTOGRAM` (count of records per
    ``binsize``-wide bin of one numeric field).  ``by`` groups: empty
    means a scalar payload (a tuple, one slot per func output); one field
    keys the payload dict by that field's bare value; several key it by
    the value tuple.  A histogram appends the bin to the group key.
    """

    func: str = AGG_COUNT
    fields: Tuple[str, ...] = ()
    by: Tuple[str, ...] = ()
    binsize: int = 1

    code = OP_AGGREGATE

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", tuple(self.fields))
        object.__setattr__(self, "by", tuple(self.by))


@dataclass(frozen=True)
class TopK:
    """Keep the k extreme groups of a keyed aggregate.

    ``key`` picks the rank dimension (:data:`RANK_VALUE` emits
    ``(value, group)`` pairs - the legacy top-k shape - and
    :data:`RANK_GROUP` emits ``(group, value)``); full-tuple comparison
    keeps the selection a total order, so per-host selection and the
    partial-result merge stay commutative and associative (the payload
    determinism the streaming aggregation rests on).
    """

    k: int = 1000
    key: str = RANK_VALUE
    order: str = ORDER_DESC

    code = OP_TOPK


PlanOp = Union[Filter, Project, Aggregate, TopK]

#: Validation order of the op kinds in a plan.
_OP_SEQUENCE = {OP_FILTER: 0, OP_PROJECT: 1, OP_AGGREGATE: 2, OP_TOPK: 3}


@dataclass(frozen=True)
class Plan:
    """An ordered pipeline of plan ops (at least one)."""

    ops: Tuple[PlanOp, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))

    def _op(self, code: int) -> Optional[PlanOp]:
        for op in self.ops:
            if op.code == code:
                return op
        return None

    @property
    def filter(self) -> Optional[Filter]:
        op = self._op(OP_FILTER)
        return op if isinstance(op, Filter) else None

    @property
    def project(self) -> Optional[Project]:
        op = self._op(OP_PROJECT)
        return op if isinstance(op, Project) else None

    @property
    def aggregate(self) -> Optional[Aggregate]:
        op = self._op(OP_AGGREGATE)
        return op if isinstance(op, Aggregate) else None

    @property
    def topk(self) -> Optional[TopK]:
        op = self._op(OP_TOPK)
        return op if isinstance(op, TopK) else None

    def warnings(self) -> Tuple[PlanWarning, ...]:
        """Validate and return the structured per-plan warnings."""
        return validate(self)


# --------------------------------------------------------------------------
# Validation and per-plan warnings
# --------------------------------------------------------------------------
def validate(plan: Plan) -> Tuple[PlanWarning, ...]:
    """Check a plan's shape; raises :class:`PlanError` (with structured
    :class:`PlanIssue` entries) when invalid, returns the structured
    :class:`PlanWarning` analysis when valid.

    Successful validation is memoized on the (frozen) plan instance, so
    re-validating on every execution - the executor always validates -
    costs one dict read after the first pass.
    """
    cached = plan.__dict__.get("_validated_warnings")
    if cached is not None:
        return cached
    issues: List[PlanIssue] = []
    if not plan.ops:
        raise PlanError([PlanIssue(PE_EMPTY, 0, "a plan needs at least "
                                   "one op (use Filter() for 'everything')")])
    last_rank = -1
    seen_codes = set()
    for index, op in enumerate(plan.ops):
        rank = _OP_SEQUENCE.get(getattr(op, "code", -1))
        if rank is None:
            issues.append(PlanIssue(PE_ORDER, index,
                                    f"unknown plan op {type(op).__name__}"))
            continue
        if op.code in seen_codes:
            issues.append(PlanIssue(
                PE_DUPLICATE, index,
                f"duplicate {type(op).__name__} op"))
        elif rank <= last_rank:
            issues.append(PlanIssue(
                PE_ORDER, index,
                f"{type(op).__name__} must precede later pipeline stages "
                "(order: Filter -> Project -> Aggregate -> TopK)"))
        seen_codes.add(op.code)
        last_rank = max(last_rank, rank)
        issues.extend(_validate_op(plan, index, op))
    if issues:
        raise PlanError(issues)
    warnings = _warnings(plan)
    object.__setattr__(plan, "_validated_warnings", warnings)
    return warnings


def _validate_op(plan: Plan, index: int, op: PlanOp) -> List[PlanIssue]:
    issues: List[PlanIssue] = []
    if isinstance(op, Filter):
        if (op.start is not None and op.end is not None
                and op.end < op.start):
            issues.append(PlanIssue(
                PE_WINDOW, index,
                f"window end ({op.end}) precedes start ({op.start})"))
        for pair in op.links:
            if len(pair) != 2:
                issues.append(PlanIssue(PE_LINK, index,
                                        f"link must be a pair, got {pair!r}"))
        for fkey in op.flow_keys:
            if not isinstance(fkey, str) or fkey.count("|") != 2:
                issues.append(PlanIssue(
                    PE_FLOW_KEY, index,
                    f"not a canonical flow key: {fkey!r}"))
    elif isinstance(op, Project):
        if not op.fields:
            issues.append(PlanIssue(PE_FIELD, index,
                                    "projection selects no fields"))
        for name in op.fields:
            if name not in RECORD_FIELDS:
                issues.append(PlanIssue(PE_FIELD, index,
                                        f"unknown record field {name!r}"))
    elif isinstance(op, Aggregate):
        issues.extend(_validate_aggregate(plan, index, op))
    elif isinstance(op, TopK):
        aggregate = plan.aggregate
        if aggregate is None or not aggregate.by:
            issues.append(PlanIssue(
                PE_TOPK, index,
                "TopK needs a preceding keyed Aggregate to rank"))
        if op.k < 1:
            issues.append(PlanIssue(PE_TOPK, index, f"k must be >= 1, "
                                    f"got {op.k}"))
        if op.key not in (RANK_VALUE, RANK_GROUP):
            issues.append(PlanIssue(PE_TOPK, index,
                                    f"unknown rank key {op.key!r}"))
        if op.order not in (ORDER_DESC, ORDER_ASC):
            issues.append(PlanIssue(PE_TOPK, index,
                                    f"unknown order {op.order!r}"))
    return issues


def _validate_aggregate(plan: Plan, index: int,
                        op: Aggregate) -> List[PlanIssue]:
    issues: List[PlanIssue] = []
    if op.func not in AGG_FUNCS:
        issues.append(PlanIssue(PE_FUNC, index,
                                f"unknown aggregate func {op.func!r}"))
        return issues
    for name in op.fields + op.by:
        if name not in RECORD_FIELDS:
            issues.append(PlanIssue(PE_FIELD, index,
                                    f"unknown record field {name!r}"))
    if op.func == AGG_SUM:
        if not op.fields:
            issues.append(PlanIssue(PE_FUNC, index, "sum needs fields"))
        if op.by and len(op.fields) != 1:
            issues.append(PlanIssue(
                PE_FUNC, index, "a keyed sum aggregates exactly one field"))
        bad = [f for f in op.fields if f in RECORD_FIELDS
               and f not in NUMERIC_FIELDS]
        if bad:
            issues.append(PlanIssue(PE_FUNC, index,
                                    f"sum over non-numeric field(s) {bad}"))
    elif op.func == AGG_COUNT:
        if op.fields:
            issues.append(PlanIssue(PE_FUNC, index,
                                    "count takes no value fields"))
    elif op.func == AGG_HISTOGRAM:
        if len(op.fields) != 1:
            issues.append(PlanIssue(
                PE_FUNC, index, "histogram bins exactly one numeric field"))
        elif op.fields[0] in RECORD_FIELDS and \
                op.fields[0] not in NUMERIC_FIELDS:
            issues.append(PlanIssue(
                PE_FUNC, index,
                f"histogram over non-numeric field {op.fields[0]!r}"))
        if op.binsize < 1:
            issues.append(PlanIssue(PE_FUNC, index,
                                    f"binsize must be >= 1, got {op.binsize}"))
    project = plan.project
    if project is not None:
        missing = [f for f in op.fields + op.by if f not in project.fields]
        if missing:
            issues.append(PlanIssue(
                PE_PROJECTION, index,
                f"aggregate reads field(s) {missing} the projection drops"))
    return issues


def _warnings(plan: Plan) -> Tuple[PlanWarning, ...]:
    warnings: List[PlanWarning] = []
    filter_op = plan.filter
    filter_index = plan.ops.index(filter_op) if filter_op is not None else 0
    if filter_op is None or filter_op.unconstrained:
        warnings.append(PlanWarning(
            PW_FULL_SCAN, filter_index,
            "no pushdown predicate: the plan scans every record of both "
            "tiers on every host"))
    else:
        if filter_op.path is not None:
            warnings.append(PlanWarning(
                PW_RESIDUAL_PATH, filter_index,
                "exact-path predicate is residual (evaluated on scan "
                "candidates, not pushed into an index)"))
        for a, b in filter_op.links:
            if a is None or b is None:
                warnings.append(PlanWarning(
                    PW_WILDCARD_LINK, filter_index,
                    f"wildcard link endpoint ({a!r}, {b!r}) routes on the "
                    "endpoint index, not the link index"))
    return tuple(warnings)


# --------------------------------------------------------------------------
# Pushdown compilation
# --------------------------------------------------------------------------
def scan_spec(filter_op: Optional[Filter]) -> ScanSpec:
    """Compile a plan ``Filter`` to the tiers' shared :class:`ScanSpec`.

    This is the pushdown seam: the hot tier routes the spec through its
    flow/link/time indexes, the cold tier prunes segments with zone maps
    and blooms - exactly the machinery the legacy keyword reads use.  The
    exact-path predicate does not push down (no tier indexes paths); the
    executor applies it residually.
    """
    if filter_op is None:
        return ScanSpec()
    return ScanSpec(
        start=filter_op.start, end=filter_op.end, links=filter_op.links,
        flow_keys=(frozenset(filter_op.flow_keys)
                   if filter_op.flow_keys else None))


# --------------------------------------------------------------------------
# Per-op executor legs (shared by the reference evaluator and the
# pushdown executor's residual tail; R9 gates this registry)
# --------------------------------------------------------------------------
def _exec_filter(op: Filter, state: Any, plan: Plan) -> Any:
    """Brute-force predicate: the reference semantics of ``Filter`` (the
    pushdown executor replaces this leg with an index-routed scan and
    keeps only the residual path check)."""
    spec = scan_spec(op)
    return [record for record in state
            if spec.matches(record)
            and (op.path is None or record.path == op.path)]


def _exec_project(op: Project, state: Any, plan: Plan) -> Any:
    """Terminal projection materialises the emitted rows; before an
    ``Aggregate`` the projection is a validator-enforced schema gate and
    the records pass through unchanged."""
    if plan.aggregate is not None:
        return state
    return _emit_rows(state, op.fields)


def _field_reader(name: str) -> Any:
    """Per-field accessor with the name dispatch hoisted out of scan
    loops; same semantics as :func:`record_field` field by field."""
    if name == "flow":
        return lambda record: flow_key(record.flow_id)
    return attrgetter(name)


def _exec_aggregate(op: Aggregate, state: Any, plan: Plan) -> Any:
    records: Sequence[PathFlowRecord] = state
    if not op.by and op.func != AGG_HISTOGRAM:
        if op.func == AGG_COUNT:
            return (len(records),)
        sums = [0] * len(op.fields)
        for record in records:
            for slot, name in enumerate(op.fields):
                sums[slot] += record_field(record, name)
        return tuple(sums)
    grouped: Dict[Any, Any] = {}
    if op.func == AGG_SUM and len(op.by) == 1:
        # The top-k input shape (sum one field by one key) is the hot
        # loop of every ranked query - hoist the field dispatch out.
        key_of = _field_reader(op.by[0])
        value_of = _field_reader(op.fields[0])
        for record in records:
            key = key_of(record)
            grouped[key] = grouped.get(key, 0) + value_of(record)
        return grouped
    for record in records:
        key = _group_key(op, record)
        if op.func == AGG_SUM:
            grouped[key] = grouped.get(key, 0) + \
                record_field(record, op.fields[0])
        else:  # count / histogram both count members per group key
            grouped[key] = grouped.get(key, 0) + 1
    return grouped


def _exec_topk(op: TopK, state: Any, plan: Plan) -> Any:
    grouped: Dict[Any, Any] = state
    if op.key == RANK_GROUP:
        pairs: Iterable[Tuple[Any, Any]] = (
            (group, value) for group, value in grouped.items())
    else:
        pairs = ((value, group) for group, value in grouped.items())
    return rank_select(pairs, op.k, op.order)


#: Host-side executor leg per op (R9: every OP_* must be a key here).
_EXEC_BY_OP = {
    OP_FILTER: _exec_filter,
    OP_PROJECT: _exec_project,
    OP_AGGREGATE: _exec_aggregate,
    OP_TOPK: _exec_topk,
}


def _group_key(op: Aggregate, record: PathFlowRecord) -> Any:
    """The payload-dict key one record lands under: a bare value for a
    single ``by`` field, a tuple for several; a histogram appends the
    bin (and bins bare when not grouped at all)."""
    parts = tuple(record_field(record, name) for name in op.by)
    if op.func == AGG_HISTOGRAM:
        bin_ = int(record_field(record, op.fields[0]) // op.binsize)
        if not parts:
            return bin_
        return parts + (bin_,)
    return parts[0] if len(parts) == 1 else parts


def _emit_rows(records: Sequence[PathFlowRecord],
               fields: Tuple[str, ...]) -> List[Tuple[Any, ...]]:
    """Materialise a record listing: one tuple per record, sorted - the
    canonical order that keeps listing payloads deterministic under any
    scan/merge order."""
    return sorted(tuple(record_field(record, name) for name in fields)
                  for record in records)


def rank_select(pairs: Iterable[Tuple[Any, ...]], k: int,
                order: str = ORDER_DESC) -> List[Tuple[Any, ...]]:
    """The k extreme pairs under full-tuple comparison, sorted.

    A total order over the emitted tuples makes the selection a
    well-defined *set* regardless of input order, so per-host selection
    and the partial-result merge are commutative and associative -
    identical in spirit (and, for descending value-ranked pairs, in
    output bytes) to the legacy ``top_k_select`` - including its manual
    bounded-heap loop, which beats ``heapq.nlargest`` by skipping the
    per-item order decoration (losers fall out on one C-level tuple
    comparison).
    """
    if order == ORDER_ASC:
        return heapq.nsmallest(k, pairs)
    heap: List[Tuple[Any, ...]] = []
    for item in pairs:
        if len(heap) < k:
            heapq.heappush(heap, item)
        elif item > heap[0]:
            heapq.heapreplace(heap, item)
    return sorted(heap, reverse=True)


def _run_pipeline(plan: Plan, records: Sequence[PathFlowRecord],
                  skip_filter: bool) -> Any:
    """Apply the plan's ops to ``records`` via the executor registry.

    ``skip_filter=True`` is the pushdown executor's residual tail: the
    scan already applied the (index-routed) filter, so only the
    downstream ops run.
    """
    state: Any = records
    for op in plan.ops:
        if skip_filter and op.code == OP_FILTER:
            continue
        state = _EXEC_BY_OP[op.code](op, state, plan)
    if plan.aggregate is None and plan.project is None:
        state = _emit_rows(state, RECORD_FIELDS)
    return state


def reference_evaluate(records: Sequence[PathFlowRecord],
                       plan: Plan) -> Any:
    """Brute-force oracle: evaluate ``plan`` over an explicit record set
    with no index routing, no pruning and no fast paths.  Every execution
    path (any tier mix, any mode) must produce exactly this payload."""
    validate(plan)
    return _run_pipeline(plan, list(records), skip_filter=False)


# --------------------------------------------------------------------------
# Pushdown execution against a TIB
# --------------------------------------------------------------------------
@dataclass
class PlanExecution:
    """One host's plan execution: the payload plus its accounting."""

    payload: Any
    records_scanned: int
    estimated_wire_bytes: int
    scan_stats: Dict[str, int]


def _scalar_flow_sum(plan: Plan) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Detect the getCount shape: scalar sum over bytes/pkts of exactly
    one flow key, no other predicate - servable from the incrementally
    maintained per-flow aggregates without touching a record."""
    aggregate = plan.aggregate
    filter_op = plan.filter
    if (aggregate is None or filter_op is None or aggregate.by
            or aggregate.func != AGG_SUM
            or not set(aggregate.fields) <= {"bytes", "pkts"}):
        return None
    if (len(filter_op.flow_keys) != 1 or filter_op.start is not None
            or filter_op.end is not None or filter_op.links
            or filter_op.path is not None):
        return None
    if plan.topk is not None:
        return None
    return filter_op.flow_keys[0], aggregate.fields


def _keyed_flow_byte_sum(plan: Plan) -> bool:
    """Detect the unconstrained top-k-flows shape: sum of ``bytes`` keyed
    by ``flow`` with no predicate - servable from the per-flow aggregates
    (they span both tiers), no record touched at all."""
    aggregate = plan.aggregate
    filter_op = plan.filter
    if (aggregate is None or aggregate.func != AGG_SUM
            or aggregate.fields != ("bytes",) or aggregate.by != ("flow",)):
        return False
    return filter_op is None or filter_op.unconstrained


def execute_plan(tib: Any, plan: Plan) -> PlanExecution:
    """Execute a plan against one host's TIB with full pushdown.

    The ``Filter`` compiles to a :class:`ScanSpec` served by both tiers
    (hot index routing + cold zone-map/bloom pruning); two aggregate
    shapes short-circuit onto the maintained per-flow totals exactly like
    their hand-written ancestors.  ``scan_stats`` is the difference of
    the TIB's scan-stat snapshots around the execution: how the hot tier
    routed, and how much decode work cold pruning avoided, for *this*
    plan.
    """
    validate(plan)
    # The pushdown classification (which fast path, the compiled
    # ScanSpec, the residual predicate) is a pure function of the frozen
    # plan - memoized on the instance so repeat executions of a cached
    # plan jump straight to the storage calls.
    shape = plan.__dict__.get("_pushdown_shape")
    if shape is None:
        scalar_shape = _scalar_flow_sum(plan)
        if scalar_shape is not None:
            shape = ("scalar",) + scalar_shape
        elif _keyed_flow_byte_sum(plan):
            aggregate = plan.aggregate
            tail_from = plan.ops.index(aggregate) + 1 \
                if aggregate is not None else 0
            shape = ("keyed", plan.ops[tail_from:])
        else:
            filter_op = plan.filter
            shape = ("general", scan_spec(filter_op),
                     filter_op.path if filter_op is not None else None)
        object.__setattr__(plan, "_pushdown_shape", shape)
    if shape[0] == "scalar":
        # Served from the maintained per-flow totals - no scan on either
        # tier, so the per-plan stats are zero by construction (one
        # snapshot supplies the stable key shape without a diff).
        fkey, fields = shape[1], shape[2]
        totals = tib.flow_totals(fkey)
        by_name = {"bytes": totals[0], "pkts": totals[1]}
        payload: Any = tuple(by_name[name] for name in fields)
        scanned = 1  # one maintained aggregate row, like getCount
        scan_stats = dict.fromkeys(tib.scan_stat_snapshot(), 0)
    elif shape[0] == "keyed":
        payload = tib.flow_byte_totals()
        scanned = tib.total_record_count()
        for op in shape[1]:
            payload = _EXEC_BY_OP[op.code](op, payload, plan)
        scan_stats = dict.fromkeys(tib.scan_stat_snapshot(), 0)
    else:
        before = tib.scan_stat_snapshot()
        spec, residual_path = shape[1], shape[2]
        rows = tib.spec_records(spec)
        scanned = len(rows)
        if residual_path is not None:
            rows = [record for record in rows
                    if record.path == residual_path]
        payload = _run_pipeline(plan, rows, skip_filter=True)
        after = tib.scan_stat_snapshot()
        scan_stats = {key: after[key] - before[key] for key in after}
    return PlanExecution(payload=payload, records_scanned=scanned,
                         estimated_wire_bytes=estimate_payload_bytes(payload),
                         scan_stats=scan_stats)


def estimate_payload_bytes(payload: Any) -> int:
    """Pre-codec size estimate of a plan payload (cross-check only;
    reported sizes are measured ``MSG_PLAN_RESULT`` frame lengths)."""
    if isinstance(payload, dict) or isinstance(payload, list):
        return _KV_ESTIMATE * max(1, len(payload))
    return _SCALAR_ESTIMATE


# --------------------------------------------------------------------------
# Merge operators (the aggregation-tree reduction, selected by terminal op)
# --------------------------------------------------------------------------
def _merge_concat(plan: Plan, payloads: Sequence[Any]) -> Any:
    """Concatenate listing rows / scalar tuples (the legacy un-merged
    reduction: per-host scalar tuples flatten into one list, exactly as
    ``getCount`` partials always have)."""
    merged: List[Any] = []
    for payload in payloads:
        merged.extend(payload)
    return merged


def _merge_histograms(plan: Plan, payloads: Sequence[Any]) -> Any:
    """Sum keyed-aggregate dicts key-wise."""
    merged: Dict[Any, Any] = {}
    for payload in payloads:
        for key, value in payload.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _merge_top_k(plan: Plan, payloads: Sequence[Any]) -> Any:
    """Re-select the global extremes across partial top-k lists -
    ``(n - 1) * k`` pairs die at every aggregation level."""
    op = plan.topk
    assert op is not None  # validator: MERGE_TOP_K only with a TopK op
    return rank_select((pair for payload in payloads for pair in payload),
                       op.k, op.order)


#: Merge operator per *terminal* op (R9: every OP_* must be a key here).
#: A scalar Aggregate (no group key) concat-merges - see merge_operator.
_MERGE_BY_TERMINAL = {
    OP_FILTER: MERGE_CONCAT,
    OP_PROJECT: MERGE_CONCAT,
    OP_AGGREGATE: MERGE_HISTOGRAM,
    OP_TOPK: MERGE_TOP_K,
}

_MERGE_FUNCTIONS = {
    MERGE_CONCAT: _merge_concat,
    MERGE_HISTOGRAM: _merge_histograms,
    MERGE_TOP_K: _merge_top_k,
}


def merge_operator(plan: Plan) -> str:
    """The generic merge operator the plan's terminal op selects."""
    terminal = plan.ops[-1]
    if terminal.code == OP_AGGREGATE and isinstance(terminal, Aggregate) \
            and not terminal.by and terminal.func != AGG_HISTOGRAM:
        return MERGE_CONCAT
    return _MERGE_BY_TERMINAL[terminal.code]


def merge_payloads(plan: Plan, payloads: Sequence[Any]) -> Any:
    """Merge partial plan payloads (one aggregation-tree reduction)."""
    return _MERGE_FUNCTIONS[merge_operator(plan)](plan, payloads)


# --------------------------------------------------------------------------
# Built-in compilations: the expressiveness proofs
# --------------------------------------------------------------------------
def compile_get_count(flow: Any,
                      time_range: Optional[Tuple[Any, Any]] = None) -> Plan:
    """``getCount(Flow, timeRange)`` as a plan.

    ``flow`` is a bare :class:`FlowId` or a ``(flowID, Path)`` pair, like
    the hand-written handler takes; the path half becomes the residual
    exact-path predicate.  Payload: the ``(bytes, pkts)`` tuple,
    byte-identical to the ancestor's.
    """
    if isinstance(flow, FlowId):
        flow_id, path = flow, None
    else:
        flow_id, path = flow
        path = tuple(path) if path is not None else None
    start, end = time_range if time_range is not None else (None, None)
    return Plan(ops=(
        Filter(start=start, end=end, flow_keys=(flow_key(flow_id),),
               path=path),
        Aggregate(func=AGG_SUM, fields=("bytes", "pkts")),
    ))


def compile_top_k_flows(k: int = 1000, link: Any = None,
                        time_range: Optional[Tuple[Any, Any]] = None) -> Plan:
    """``top_k_flows(k, link, timeRange)`` as a plan.

    Payload: the descending ``(bytes, flow key)`` list, byte-identical to
    the ancestor's (same total-order selection, same fast path onto the
    maintained per-flow totals when unconstrained).
    """
    start, end = time_range if time_range is not None else (None, None)
    links: Tuple[Tuple[Optional[str], Optional[str]], ...] = ()
    if link is not None:
        links = (tuple(link),)  # Filter normalisation drops a fully-wild pair
    return Plan(ops=(
        Filter(start=start, end=end, links=links),
        Aggregate(func=AGG_SUM, fields=("bytes",), by=("flow",)),
        TopK(k=k, key=RANK_VALUE, order=ORDER_DESC),
    ))
