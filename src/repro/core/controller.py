"""The PathDump controller.

Section 3.3: the controller (i) installs the static trajectory-tracing rules
on the switches when it starts, and (ii) hosts the debugging applications,
which run either *on demand* (the operator issues queries) or *event-driven*
(agents raise alarms, trapped packets arrive from switches).  Queries and
results travel over the controller API (``execute``/``install``/``uninstall``
of Table 1), using the direct or multi-level mechanism.

:class:`PathDumpController` ties those roles together on top of a
:class:`~repro.core.cluster.QueryCluster` and (optionally) a simulated
:class:`~repro.network.simulator.Fabric`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.alarms import Alarm, AlarmBus, LOOP_DETECTED, LONG_PATH
from repro.core.cluster import (MECHANISM_DIRECT, MECHANISM_MULTILEVEL,
                                DistributedQueryResult, QueryCluster)
from repro.core.query import Query, QueryResult
from repro.network.packet import FlowId, Packet
from repro.network.simulator import Fabric
from repro.tracing.cherrypick import make_tagger
from repro.tracing.rules import CompiledRules, compile_rules
from repro.tracing.trap import LongPathTrap, TrapVerdict


@dataclass
class ControllerStats:
    """Counters describing controller activity."""

    queries_executed: int = 0
    queries_installed: int = 0
    alarms_received: int = 0
    packets_trapped: int = 0
    loops_detected: int = 0


class PathDumpController:
    """The central controller.

    Args:
        cluster: the agent cluster (provides the distributed query executor
            and the alarm bus).
        fabric: the simulated fabric; when given, trajectory-tracing rules
            are installed on its switches and trapped packets are handled.
        install_rules: install the static tagging rules at construction time
            (the paper's one-time initialization task).
    """

    def __init__(self, cluster: QueryCluster, fabric: Optional[Fabric] = None,
                 install_rules: bool = True) -> None:
        self.cluster = cluster
        self.fabric = fabric
        self.alarm_bus: AlarmBus = cluster.alarm_bus
        self.stats = ControllerStats()
        self.compiled_rules: Optional[CompiledRules] = None
        self.trap: Optional[LongPathTrap] = None
        self.trap_verdicts: List[TrapVerdict] = []
        self._alarm_handlers: List[Callable[[Alarm], None]] = []
        self.alarm_bus.subscribe(self._on_alarm)
        if fabric is not None:
            self.trap = LongPathTrap(fabric)
            if install_rules:
                self.install_tracing_rules()

    # ----------------------------------------------------------- rule install
    def install_tracing_rules(self) -> CompiledRules:
        """Compile and install the static CherryPick rules on every switch.

        This is the controller's one-time initialization task; the rules are
        never modified afterwards.  The fast-path tagger implementing the
        same policy is installed alongside so the simulator applies the
        sampling on every forwarded packet.
        """
        if self.fabric is None:
            raise RuntimeError("no fabric attached to install rules on")
        topo = self.cluster.topo
        assignment = self.cluster.assignment
        self.compiled_rules = compile_rules(topo, assignment,
                                            self.fabric.switches)
        self.fabric.install_tagger(make_tagger(topo, assignment))
        return self.compiled_rules

    def switch_rule_counts(self) -> Dict[str, int]:
        """Number of tagging rules installed per switch."""
        if self.compiled_rules is None:
            return {}
        return {switch: len(rules)
                for switch, rules in self.compiled_rules.per_switch.items()}

    # ------------------------------------------------------------ controller API
    def execute(self, hosts: Optional[Sequence[str]], query: Query,
                mechanism: str = MECHANISM_DIRECT) -> DistributedQueryResult:
        """``execute(List<HostID>, Query)`` from Table 1."""
        self.stats.queries_executed += 1
        return self.cluster.execute(query, hosts, mechanism)

    def execute_at(self, host: str, query: Query) -> QueryResult:
        """Run a query at a single host (direct query to one TIB)."""
        self.stats.queries_executed += 1
        self.cluster.rpc.round_trip(query.request_bytes(), 0)
        return self.cluster.agent(host).execute_query(query)

    def install(self, hosts: Optional[Sequence[str]], query: Query,
                period: Optional[float] = None) -> None:
        """``install(List<HostID>, Query, Period)`` from Table 1."""
        from repro.core import wire
        targets = hosts if hosts is not None else self.cluster.hosts
        frame = wire.encode_query(query)  # encoded once, shipped per host
        for host in targets:
            self.cluster.agent(host).install_query(query, period)
            self.cluster.rpc.send_encoded(frame)
        self.stats.queries_installed += 1

    def uninstall(self, hosts: Optional[Sequence[str]], query_name: str) -> int:
        """``uninstall(List<HostID>, Query)``; returns removal count."""
        targets = hosts if hosts is not None else self.cluster.hosts
        removed = 0
        for host in targets:
            if self.cluster.agent(host).uninstall_query(query_name):
                removed += 1
        return removed

    # -------------------------------------------------------------- alarms
    def on_alarm(self, handler: Callable[[Alarm], None],
                 reason: Optional[str] = None) -> None:
        """Register an event-driven debugging application."""
        self.alarm_bus.subscribe(handler, reason)

    def _on_alarm(self, alarm: Alarm) -> None:
        self.stats.alarms_received += 1

    def alarms(self, reason: Optional[str] = None) -> List[Alarm]:
        """Alarms received so far (optionally filtered by reason)."""
        if reason is None:
            return list(self.alarm_bus.alarms)
        return self.alarm_bus.by_reason(reason)

    # -------------------------------------------------------- trapped packets
    def handle_trapped_packet(self, switch: str, packet: Packet,
                              when: float) -> TrapVerdict:
        """Handle a packet punted by a switch (suspiciously long path).

        Loops raise a ``LOOP_DETECTED`` alarm; non-loop long paths raise a
        ``LONG_PATH`` alarm carrying the observed link IDs so the operator
        (or the path-conformance application) can inspect them.
        """
        if self.trap is None:
            raise RuntimeError("no fabric attached; cannot chase packets")
        self.stats.packets_trapped += 1
        verdict = self.trap.handle_punt(switch, packet, when)
        self.trap_verdicts.append(verdict)
        if verdict.is_loop:
            self.stats.loops_detected += 1
            reason = LOOP_DETECTED
            detail = (f"repeated link id {verdict.repeated_link_id} "
                      f"after {verdict.rounds} round(s)")
        else:
            reason = LONG_PATH
            detail = f"observed link ids {verdict.loop_links}"
        self.alarm_bus.raise_alarm(Alarm(
            flow_id=packet.flow, reason=reason, paths=[], host="controller",
            time=verdict.detection_time, detail=detail))
        return verdict

    def attach_trap_handler(self) -> None:
        """Route fabric punts straight into :meth:`handle_trapped_packet`."""
        if self.fabric is None:
            raise RuntimeError("no fabric attached")
        self.fabric.punt_handler = self.handle_trapped_packet

    # ------------------------------------------------------------ accounting
    #: Sections of the consolidated :meth:`report`, in canonical order.
    REPORT_SECTIONS = ("storage", "tier", "recovery")

    def configure_retention(self, max_records: Optional[int] = None,
                            max_bytes: Optional[int] = None) -> None:
        """Operator knob: bound every host TIB's hot tier (see
        :meth:`repro.core.cluster.QueryCluster.configure_retention`)."""
        self.cluster.configure_retention(max_records=max_records,
                                         max_bytes=max_bytes)

    def configure_cold_scan(self, mode: str = "serial",
                            max_workers: Optional[int] = None) -> None:
        """Operator knob: the cold tier's spanning-scan strategy (see
        :meth:`repro.core.cluster.QueryCluster.configure_cold_scan`)."""
        self.cluster.configure_cold_scan(mode, max_workers)

    def report(self, sections: Optional[Sequence[str]] = None,
               from_workers: bool = False) -> Dict[str, Dict]:
        """The operator's one consolidated deployment report.

        Returns a nested dict with one entry per requested section (every
        section when ``sections`` is omitted, in :attr:`REPORT_SECTIONS`
        order):

        * ``"storage"`` - aggregate memory footprint per subsystem
          (:meth:`repro.core.cluster.QueryCluster.storage_report`);
        * ``"tier"`` - two-tier TIB stats, including the cold scan's
          pruning and write-behind counters (``from_workers=True`` reads
          the agent-server workers instead of the local mirrors);
        * ``"recovery"`` - self-healing worker-plane health
          (:meth:`repro.core.cluster.QueryCluster.recovery_report`).

        The single-section accessors (:meth:`storage_report`,
        :meth:`tier_report`, :meth:`recovery_report`) delegate here, so
        new counters land in one place instead of a fourth ad-hoc method.
        """
        if sections is None:
            sections = self.REPORT_SECTIONS
        unknown = [s for s in sections if s not in self.REPORT_SECTIONS]
        if unknown:
            raise ValueError(
                f"unknown report section(s) {unknown!r}; "
                f"expected a subset of {list(self.REPORT_SECTIONS)!r}")
        report: Dict[str, Dict] = {}
        for section in self.REPORT_SECTIONS:
            if section not in sections:
                continue
            if section == "storage":
                report[section] = self.cluster.storage_report()
            elif section == "tier":
                report[section] = self.cluster.tier_report(
                    from_workers=from_workers)
            else:
                report[section] = self.cluster.recovery_report()
        return report

    def storage_report(self) -> Dict[str, int]:
        """Aggregate storage footprint across the deployment (the
        ``"storage"`` section of :meth:`report`)."""
        return self.report(sections=("storage",))["storage"]

    def tier_report(self, from_workers: bool = False) -> Dict[str, int]:
        """Aggregate two-tier TIB stats across the deployment (the
        ``"tier"`` section of :meth:`report`).

        (``from_workers=True`` reads the agent-server workers; a worker
        the supervisor restarted answers with its re-seeded - identical -
        state.  Worker-plane health itself is in
        :meth:`recovery_report`.)
        """
        return self.report(sections=("tier",),
                           from_workers=from_workers)["tier"]

    def recovery_report(self):
        """Operator view of the self-healing agent plane (the
        ``"recovery"`` section of :meth:`report`): worker restarts,
        re-seed cost, open circuits, mirror detaches and decode errors."""
        return self.report(sections=("recovery",))["recovery"]

    def reset_stats(self) -> None:
        """Zero per-experiment counters: controller activity, the RPC
        channel, and every agent's storage-engine instrumentation
        (including the two-tier eviction/promotion and archive counters)."""
        self.stats = ControllerStats()
        self.cluster.reset_stats()

    # ------------------------------------------------------------- simulation
    def tick(self, now: float) -> List[Alarm]:
        """Advance periodic work: installed queries and TCP monitors.

        Returns the alarms the monitor sweep raised (a
        :class:`~repro.core.cluster.MonitorSweep`; in process mode the
        sweep is a scatter of tick frames to the agent-server workers and
        carries ``partial``/``hosts_failed`` when a worker died mid-tick).
        """
        alarms = self.cluster.run_monitors(now)
        for agent in self.cluster.agents.values():
            agent.run_installed(now)
        return alarms
