"""Controller <-> end-host communication channel model.

The original implementation exchanges query/response messages over a Flask
RESTful service on a dedicated 1 GbE management network.  For the
query-performance experiments (Figures 11 and 12) what matters is the
per-message latency and the bytes moved, so this module models the channel
as:

* a fixed per-message round-trip component (request dispatch, HTTP/TCP
  overheads, Flask handling), plus
* a serialization component proportional to the payload size over the
  management-link bandwidth.

Every message is also counted so experiments can report the total network
traffic a query generated, which is the second metric of Figures 11/12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Default one-way message latency (seconds): LAN RTT plus web-stack
#: (Flask/HTTP) processing.  Calibrated so that a direct query's floor and a
#: 3-4 level aggregation tree land in the same ~0.1-0.2 s range as Fig. 11(a).
DEFAULT_MESSAGE_LATENCY_S = 0.02

#: Default management network bandwidth (1 GbE).
DEFAULT_BANDWIDTH_BPS = 1e9

#: Fixed protocol overhead added to every message (HTTP + TCP + IP headers).
MESSAGE_OVERHEAD_BYTES = 350


@dataclass
class RpcStats:
    """Aggregate channel statistics."""

    messages: int = 0
    bytes: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.messages = 0
        self.bytes = 0


@dataclass
class RpcChannel:
    """A latency/bandwidth model of the management channel.

    Attributes:
        message_latency_s: fixed one-way latency per message.
        bandwidth_bps: serialization bandwidth.
        stats: message/byte counters (shared across all sends on the channel).
    """

    message_latency_s: float = DEFAULT_MESSAGE_LATENCY_S
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    stats: RpcStats = field(default_factory=RpcStats)

    def send(self, payload_bytes: int) -> float:
        """Account for one message and return its one-way latency (seconds)."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        total_bytes = payload_bytes + MESSAGE_OVERHEAD_BYTES
        self.stats.messages += 1
        self.stats.bytes += total_bytes
        return self.message_latency_s + total_bytes * 8.0 / self.bandwidth_bps

    def send_batch(self, parts) -> float:
        """Account for one message carrying several logical payloads.

        Request batching: a query and its aggregation-subtree description
        travel to a child in a single message, paying the fixed per-message
        overhead (and latency floor) once instead of once per part.
        """
        total = 0
        for part in parts:
            if part < 0:
                raise ValueError("payload size cannot be negative")
            total += part
        return self.send(total)

    def send_encoded(self, frame: bytes) -> float:
        """Account for one message whose payload is a real codec frame.

        The measured-accounting entry point: the payload size is the actual
        length of the :mod:`repro.core.wire` frame, not an estimate.
        """
        return self.send(len(frame))

    def round_trip(self, request_bytes: int, response_bytes: int) -> float:
        """Latency of a request/response exchange."""
        return self.send(request_bytes) + self.send(response_bytes)

    @property
    def total_traffic_bytes(self) -> int:
        """Total bytes moved over the channel so far."""
        return self.stats.bytes

    def reset(self) -> None:
        """Reset the traffic counters."""
        self.stats.reset()
