"""The Trajectory Information Base (TIB) and the host query API.

Each end host keeps a TIB: the repository of per-path flow records extracted
from the trajectories embedded in arriving packets.  The host API of Table 1
is implemented directly on top of it:

* ``getFlows(linkID, timeRange)`` - flows that traversed a link;
* ``getPaths(flowID, linkID, timeRange)`` - paths taken by a flow;
* ``getCount(Flow, timeRange)`` - packet and byte counts of a flow;
* ``getDuration(Flow, timeRange)`` - duration of a flow.

``linkID`` is a pair of adjacent switch IDs, ``timeRange`` a pair of
timestamps; both support wildcards (``None`` or ``"*"`` / ``"?"``), exactly
as described in Section 2.1.

Storage engine
--------------

The TIB answers those queries from a set of always-maintained indexes over a
cached-record layer, so no query deserialises documents and no write
rescans the collection:

* a **primary keyed index** ``(flow key, path) -> record id`` makes
  :meth:`Tib.add_record` an O(1) in-place upsert - consecutive records of
  the same (flow, path) are merged by mutating the stored record, never by
  delete + reinsert;
* a **per-flow index** ``flow key -> record ids`` serves ``getPaths`` /
  ``getCount`` / ``getDuration``;
* an **inverted link index** ``(u, v) -> record ids`` plus per-endpoint
  postings serve ``getFlows(linkID)`` including wildcard endpoints;
* a **sorted time index** (bisect over ``stime`` / ``etime``) narrows
  ``records(time_range=...)`` to the records whose interval can overlap
  the window.  Writes never re-sort it: new entries land in a *batched
  insertion buffer* that the first time-constrained read sorts
  (O(k log k) for k buffered entries) and merges into the sorted runs
  (galloping merge, O(n) compares).  Merges that move a record's
  ``stime``/``etime`` leave the old entry behind as a *stale* entry -
  detected at read time because ``stime`` only ever decreases and
  ``etime`` only ever increases - and a full rebuild runs only when the
  stale fraction grows past a threshold;
* the **cached-record layer** keeps one :class:`PathFlowRecord` per row, so
  queries return memoized objects instead of re-running ``from_document``;
* incrementally maintained **per-flow aggregates** (bytes/packets per flow
  key) answer unconstrained ``getCount`` and whole-TIB byte rankings
  without touching any record.

The backing :class:`~repro.storage.docstore.Collection` holds the document
form of every record (for the Section 5.3 storage accounting and external
document-level consumers) and is kept in sync incrementally.  Callers must
treat records returned by queries as read-only; all mutation goes through
:meth:`Tib.add_record`, which copies on insert by default (``adopt=True``
transfers ownership instead) so a caller's record object is never mutated
behind its back.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import (Dict, FrozenSet, Iterable, List, Optional, Set, Tuple,
                    Union)

from repro.network.packet import FlowId
from repro.storage.docstore import Collection, DocumentStore
from repro.storage.records import PathFlowRecord, flow_key

#: Wildcard marker accepted in link IDs and time ranges.
WILDCARD = "*"

#: A link ID as used by the query API: a pair of switch names, either of
#: which may be a wildcard.
LinkId = Tuple[Optional[str], Optional[str]]

#: A time range: (start, end), either bound may be a wildcard.
TimeRange = Tuple[Optional[float], Optional[float]]

#: A "Flow" in the paper's sense: a (flowID, Path) pair.
Flow = Tuple[FlowId, Tuple[str, ...]]

#: Upper sentinel for bisecting past all entries with an exact time value.
_POS_INF = float("inf")

_EMPTY_IDS: FrozenSet[int] = frozenset()


def _is_wild(value) -> bool:
    """Whether a link/time component is a wildcard."""
    return value is None or value in (WILDCARD, "?")


def is_unconstrained_link(link: Optional[LinkId]) -> bool:
    """Whether ``link`` constrains nothing (absent or fully wildcarded)."""
    return link is None or (_is_wild(link[0]) and _is_wild(link[1]))


def normalise_time_range(time_range: Optional[TimeRange]
                         ) -> Tuple[Optional[float], Optional[float]]:
    """Normalise a time range, mapping wildcards to ``None`` bounds."""
    if time_range is None:
        return (None, None)
    start, end = time_range
    start = None if _is_wild(start) else float(start)
    end = None if _is_wild(end) else float(end)
    if start is not None and end is not None and end < start:
        raise ValueError("time range end precedes start")
    return (start, end)


def record_in_range(record: PathFlowRecord,
                    time_range: Tuple[Optional[float], Optional[float]]
                    ) -> bool:
    """Whether a record's [stime, etime] interval overlaps the range."""
    start, end = time_range
    if start is not None and record.etime < start:
        return False
    if end is not None and record.stime > end:
        return False
    return True


def link_matches(record: PathFlowRecord, link: Optional[LinkId]) -> bool:
    """Whether a record's path traverses ``link`` (with wildcard support)."""
    if link is None:
        return True
    a, b = link
    wild_a = _is_wild(a)
    wild_b = _is_wild(b)
    if wild_a and wild_b:
        return True
    if wild_a or wild_b:
        # One concrete endpoint: it matches when it is an endpoint of any
        # link on the path, i.e. when it appears anywhere on a path that has
        # at least one link.  (The path's nodes *are* the set of link
        # endpoints, so no per-link double scan is needed.)
        node = a if wild_b else b
        path = record.path
        return len(path) >= 2 and node in path
    return record.traverses_link(a, b)


class Tib:
    """One end host's Trajectory Information Base.

    Args:
        host: the owning end host's name.
        store: optional shared :class:`DocumentStore`; a private one is
            created when omitted.
    """

    COLLECTION = "tib_records"

    def __init__(self, host: str, store: Optional[DocumentStore] = None) -> None:
        self.host = host
        self.store = store or DocumentStore()
        self._collection: Collection = self.store.collection(self.COLLECTION)
        self._collection.create_index("flow_key")
        self._collection.create_index("dst_ip")
        # Engine state (see the module docstring).  All postings hold record
        # ids; ids are assigned in insertion order, so id order doubles as
        # the deterministic result order.
        self._primary: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._cache: Dict[int, PathFlowRecord] = {}
        self._flow_ids: Dict[str, List[int]] = {}
        self._flow_totals: Dict[str, List[int]] = {}
        self._link_ids: Dict[Tuple[str, str], Set[int]] = {}
        self._endpoint_ids: Dict[str, Set[int]] = {}
        # Sorted time index + batched insertion buffers (see docstring).
        self._by_stime: List[Tuple[float, int]] = []
        self._by_etime: List[Tuple[float, int]] = []
        self._pending_stime: List[Tuple[float, int]] = []
        self._pending_etime: List[Tuple[float, int]] = []
        self._stale_time_entries = 0
        # Serialises the fold of the insertion buffers: read-only queries
        # may run concurrently (the scatter-gather executor's worker pool,
        # hedged duplicate attempts), and the fold is the one place a read
        # mutates index state.  Writes must still not race with queries.
        self._time_index_lock = threading.Lock()

    # ----------------------------------------------------------------- writes
    def add_record(self, record: PathFlowRecord, adopt: bool = False) -> None:
        """Insert a finished per-path flow record.

        Consecutive records for the same (flow, path) are merged in place,
        mirroring the per-path aggregation the trajectory memory performs.

        The caller's record is **never mutated**: by default the TIB stores
        a private copy on first insert (copy-on-insert), so the caller may
        keep, reuse or mutate its object freely - earlier, the TIB both
        rewrote ``record.path`` in place and folded later merges into the
        caller's retained object.  Producers that hand over freshly built,
        never-again-touched records (the trajectory constructor's eviction
        path) pass ``adopt=True`` to transfer ownership and skip the copy.
        """
        path = record.path
        if type(path) is not tuple:
            path = tuple(path)
        key = (flow_key(record.flow_id), path)
        record_id = self._primary.get(key)
        if record_id is None:
            if adopt:
                if record.path is not path:
                    record.path = path
                stored = record
            else:
                stored = PathFlowRecord(
                    flow_id=record.flow_id, path=path, stime=record.stime,
                    etime=record.etime, bytes=record.bytes, pkts=record.pkts)
            self._insert_new(key, stored)
        else:
            self._merge_into(record_id, key[0], record)

    def add_records(self, records: Iterable[PathFlowRecord],
                    adopt: bool = False) -> int:
        """Insert many records (bulk upsert); returns the number processed.

        ``adopt=True`` transfers ownership of the record objects to the TIB
        (no copy-on-insert; the caller must not touch them again).
        """
        count = 0
        add = self.add_record
        for record in records:
            add(record, adopt)
            count += 1
        return count

    def clear(self) -> None:
        """Drop every record."""
        self._collection.clear()
        self._primary.clear()
        self._cache.clear()
        self._flow_ids.clear()
        self._flow_totals.clear()
        self._link_ids.clear()
        self._endpoint_ids.clear()
        self._by_stime = []
        self._by_etime = []
        self._pending_stime = []
        self._pending_etime = []
        self._stale_time_entries = 0

    def _insert_new(self, key: Tuple[str, Tuple[str, ...]],
                    record: PathFlowRecord) -> None:
        record_id = self._collection.insert(record.to_document())
        self._primary[key] = record_id
        self._cache[record_id] = record
        self._flow_ids.setdefault(key[0], []).append(record_id)
        totals = self._flow_totals.get(key[0])
        if totals is None:
            self._flow_totals[key[0]] = [record.bytes, record.pkts]
        else:
            totals[0] += record.bytes
            totals[1] += record.pkts
        path = record.path
        if len(path) >= 2:
            for pair in zip(path, path[1:]):
                self._link_ids.setdefault(pair, set()).add(record_id)
            for node in set(path):
                self._endpoint_ids.setdefault(node, set()).add(record_id)
        self._pending_stime.append((record.stime, record_id))
        self._pending_etime.append((record.etime, record_id))

    def _merge_into(self, record_id: int, fkey: str,
                    record: PathFlowRecord) -> None:
        cached = self._cache[record_id]
        cached.bytes += record.bytes
        cached.pkts += record.pkts
        totals = self._flow_totals[fkey]
        totals[0] += record.bytes
        totals[1] += record.pkts
        changes = {"bytes": cached.bytes, "pkts": cached.pkts}
        # A moved bound strands the old index entry; since ``stime`` only
        # ever decreases and ``etime`` only ever increases, the live entry
        # is the one whose time equals the record's current bound, and
        # reads skip the stale ones (compacted once they pile up).
        if record.stime < cached.stime:
            cached.stime = record.stime
            changes["stime"] = cached.stime
            self._pending_stime.append((cached.stime, record_id))
            self._stale_time_entries += 1
        if record.etime > cached.etime:
            cached.etime = record.etime
            changes["etime"] = cached.etime
            self._pending_etime.append((cached.etime, record_id))
            self._stale_time_entries += 1
        self._collection.update(record_id, changes)

    # ------------------------------------------------------------------ reads
    def records(self, flow_id: Optional[FlowId] = None,
                link: Optional[LinkId] = None,
                time_range: Optional[TimeRange] = None
                ) -> List[PathFlowRecord]:
        """All records matching the given constraints.

        The returned :class:`PathFlowRecord` objects are the TIB's own
        memoized instances - treat them as read-only.
        """
        start, end = normalise_time_range(time_range)
        cache = self._cache

        if flow_id is not None:
            # Per-flow index; posting lists are already in id (insertion)
            # order.
            results = []
            for record_id in self._flow_ids.get(flow_key(flow_id), ()):
                record = cache[record_id]
                if start is not None and record.etime < start:
                    continue
                if end is not None and record.stime > end:
                    continue
                if link is not None and not link_matches(record, link):
                    continue
                results.append(record)
            return results

        if link is not None:
            a, b = link
            wild_a = _is_wild(a)
            wild_b = _is_wild(b)
            if not (wild_a and wild_b):
                if wild_a or wild_b:
                    candidates: Iterable[int] = self._endpoint_ids.get(
                        a if wild_b else b, _EMPTY_IDS)
                else:
                    forward = self._link_ids.get((a, b), _EMPTY_IDS)
                    backward = self._link_ids.get((b, a), _EMPTY_IDS)
                    candidates = forward | backward if backward else forward
                results = []
                for record_id in sorted(candidates):
                    record = cache[record_id]
                    if start is not None and record.etime < start:
                        continue
                    if end is not None and record.stime > end:
                        continue
                    results.append(record)
                return results
            # A fully wild link constrains nothing; fall through.

        if start is None and end is None:
            return list(cache.values())
        return [cache[record_id]
                for record_id in self._ids_in_window(start, end)]

    def _ids_in_window(self, start: Optional[float],
                       end: Optional[float]) -> List[int]:
        """Record ids whose [stime, etime] overlaps the window, id-ordered.

        Overlap means ``etime >= start`` and ``stime <= end``; each bound is
        a bisection over the corresponding sorted time index.  With both
        bounds present the smaller candidate side is enumerated and the
        other bound verified per record.  When merges have stranded stale
        entries, each candidate is additionally checked against the
        record's current bound (``stime`` strictly decreases and ``etime``
        strictly increases on change, so exactly one entry per record
        matches).
        """
        self._refresh_time_index()
        cache = self._cache
        stale = self._stale_time_entries > 0
        if start is None:
            cut = bisect_right(self._by_stime, (end, _POS_INF))
            ids = [record_id for stime, record_id in self._by_stime[:cut]
                   if not stale or cache[record_id].stime == stime]
        elif end is None:
            lo = bisect_left(self._by_etime, (start,))
            ids = [record_id for etime, record_id in self._by_etime[lo:]
                   if not stale or cache[record_id].etime == etime]
        else:
            lo = bisect_left(self._by_etime, (start,))
            cut = bisect_right(self._by_stime, (end, _POS_INF))
            if len(self._by_etime) - lo <= cut:
                ids = [record_id for etime, record_id in self._by_etime[lo:]
                       if cache[record_id].stime <= end
                       and (not stale or cache[record_id].etime == etime)]
            else:
                ids = [record_id for stime, record_id in self._by_stime[:cut]
                       if cache[record_id].etime >= start
                       and (not stale or cache[record_id].stime == stime)]
        ids.sort()
        return ids

    #: Rebuild the time index outright once stale entries exceed this
    #: fraction of it (and this many entries in absolute terms).
    TIME_INDEX_STALE_RATIO = 0.5
    TIME_INDEX_STALE_MIN = 64

    def _refresh_time_index(self) -> None:
        """Fold the insertion buffers into the sorted time index.

        Writes only append to the pending buffers; the first
        time-constrained query after a write burst sorts the buffer
        (O(k log k) for k buffered entries) and concatenates it onto the
        sorted run - Timsort's galloping merge then combines the two runs
        in O(n) comparisons, replacing the old O(n log n) full re-sort.
        When merges have stranded enough stale entries, the index is
        rebuilt from the record cache instead, which also drops them.

        Thread-safe against concurrent *queries* (the fold runs under a
        lock, so duplicate hedged attempts can't fold the same buffer
        twice); writes must not race with queries.
        """
        if not self._pending_stime and not self._pending_etime:
            stale = self._stale_time_entries
            if stale < self.TIME_INDEX_STALE_MIN or \
                    stale <= len(self._by_stime) * self.TIME_INDEX_STALE_RATIO:
                # Steady-state read path: everything already folded and no
                # compaction due - skip the lock entirely.
                return
        with self._time_index_lock:
            size = len(self._by_stime) + len(self._pending_stime)
            if self._stale_time_entries >= self.TIME_INDEX_STALE_MIN and \
                    self._stale_time_entries > \
                    size * self.TIME_INDEX_STALE_RATIO:
                self._rebuild_time_index()
                return
            # Fold into fresh lists (not in place) so a reader still
            # enumerating the previous run keeps a stable snapshot.
            if self._pending_stime:
                self._pending_stime.sort()
                merged = self._by_stime + self._pending_stime
                merged.sort()
                self._by_stime = merged
                self._pending_stime = []
            if self._pending_etime:
                self._pending_etime.sort()
                merged = self._by_etime + self._pending_etime
                merged.sort()
                self._by_etime = merged
                self._pending_etime = []

    def _rebuild_time_index(self) -> None:
        """Full rebuild from the record cache (drops stale entries)."""
        by_stime = []
        by_etime = []
        for record_id, record in self._cache.items():
            by_stime.append((record.stime, record_id))
            by_etime.append((record.etime, record_id))
        by_stime.sort()
        by_etime.sort()
        self._by_stime = by_stime
        self._by_etime = by_etime
        self._pending_stime = []
        self._pending_etime = []
        self._stale_time_entries = 0

    def record_count(self) -> int:
        """Number of stored records."""
        return len(self._cache)

    def flow_byte_totals(self) -> Dict[str, int]:
        """Total bytes per flow key over the whole TIB.

        Served from the incrementally maintained per-flow aggregates (no
        record scan); flows appear in first-record order.  This is the fast
        path behind unconstrained top-k / heavy-hitter style queries.
        """
        return {key: totals[0]
                for key, totals in self._flow_totals.items()}

    def estimated_bytes(self) -> int:
        """Approximate storage footprint (Section 5.3 accounting)."""
        return self._collection.estimated_bytes()

    def reset_stats(self) -> None:
        """Zero the backing collection's instrumentation counters."""
        self._collection.reset_stats()

    # ----------------------------------------------------------- Table 1 API
    def get_flows(self, link: Optional[LinkId] = None,
                  time_range: Optional[TimeRange] = None) -> List[Flow]:
        """``getFlows(linkID, timeRange)``: flows traversing ``link``."""
        flows: List[Flow] = []
        seen = set()
        for record in self.records(link=link, time_range=time_range):
            key = (record.flow_id, record.path)
            if key in seen:
                continue
            seen.add(key)
            flows.append((record.flow_id, record.path))
        return flows

    def get_paths(self, flow_id: FlowId, link: Optional[LinkId] = None,
                  time_range: Optional[TimeRange] = None
                  ) -> List[Tuple[str, ...]]:
        """``getPaths(flowID, linkID, timeRange)``: paths taken by a flow."""
        paths: List[Tuple[str, ...]] = []
        seen = set()
        for record in self.records(flow_id=flow_id, link=link,
                                   time_range=time_range):
            if record.path in seen:
                continue
            seen.add(record.path)
            paths.append(record.path)
        return paths

    def get_count(self, flow: Union[Flow, FlowId],
                  time_range: Optional[TimeRange] = None) -> Tuple[int, int]:
        """``getCount(Flow, timeRange)``: (bytes, packets) of a flow.

        ``flow`` may be a (flowID, Path) pair - counting only that path's
        records - or a bare flowID, counting across all its paths.
        """
        flow_id, path = self._split_flow(flow)
        if path is None and time_range is None:
            totals = self._flow_totals.get(flow_key(flow_id))
            return (totals[0], totals[1]) if totals else (0, 0)
        nbytes = 0
        npkts = 0
        for record in self.records(flow_id=flow_id, time_range=time_range):
            if path is not None and record.path != path:
                continue
            nbytes += record.bytes
            npkts += record.pkts
        return nbytes, npkts

    def get_duration(self, flow: Union[Flow, FlowId],
                     time_range: Optional[TimeRange] = None) -> float:
        """``getDuration(Flow, timeRange)``: observed duration of a flow."""
        flow_id, path = self._split_flow(flow)
        stimes: List[float] = []
        etimes: List[float] = []
        for record in self.records(flow_id=flow_id, time_range=time_range):
            if path is not None and record.path != path:
                continue
            stimes.append(record.stime)
            etimes.append(record.etime)
        if not stimes:
            return 0.0
        return max(etimes) - min(stimes)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _split_flow(flow: Union[Flow, FlowId]
                    ) -> Tuple[FlowId, Optional[Tuple[str, ...]]]:
        if isinstance(flow, FlowId):
            return flow, None
        flow_id, path = flow
        return flow_id, tuple(path) if path is not None else None
