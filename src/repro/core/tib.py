"""The Trajectory Information Base (TIB) and the host query API.

Each end host keeps a TIB: the repository of per-path flow records extracted
from the trajectories embedded in arriving packets.  The host API of Table 1
is implemented directly on top of it:

* ``getFlows(linkID, timeRange)`` - flows that traversed a link;
* ``getPaths(flowID, linkID, timeRange)`` - paths taken by a flow;
* ``getCount(Flow, timeRange)`` - packet and byte counts of a flow;
* ``getDuration(Flow, timeRange)`` - duration of a flow.

``linkID`` is a pair of adjacent switch IDs, ``timeRange`` a pair of
timestamps; both support wildcards (``None`` or ``"*"`` / ``"?"``), exactly
as described in Section 2.1.

Storage engine
--------------

The TIB answers those queries from a set of always-maintained indexes over a
cached-record layer, so no query deserialises documents and no write
rescans the collection:

* a **primary keyed index** ``(flow key, path) -> record id`` makes
  :meth:`Tib.add_record` an O(1) in-place upsert - consecutive records of
  the same (flow, path) are merged by mutating the stored record, never by
  delete + reinsert;
* a **per-flow index** ``flow key -> record ids`` serves ``getPaths`` /
  ``getCount`` / ``getDuration``;
* an **inverted link index** ``(u, v) -> record ids`` plus per-endpoint
  postings serve ``getFlows(linkID)`` including wildcard endpoints;
* a **sorted time index** (bisect over ``stime`` / ``etime``) narrows
  ``records(time_range=...)`` to the records whose interval can overlap
  the window.  Writes never re-sort it: new entries land in a *batched
  insertion buffer* that the first time-constrained read sorts
  (O(k log k) for k buffered entries) and merges into the sorted runs
  (galloping merge, O(n) compares).  Merges that move a record's
  ``stime``/``etime`` leave the old entry behind as a *stale* entry -
  detected at read time because ``stime`` only ever decreases and
  ``etime`` only ever increases - and a full rebuild runs only when the
  stale fraction grows past a threshold;
* the **cached-record layer** keeps one :class:`PathFlowRecord` per row, so
  queries return memoized objects instead of re-running ``from_document``;
* incrementally maintained **per-flow aggregates** (bytes/packets per flow
  key) answer unconstrained ``getCount`` and whole-TIB byte rankings
  without touching any record.

The backing :class:`~repro.storage.docstore.Collection` holds the document
form of every record (for the Section 5.3 storage accounting and external
document-level consumers) and is kept in sync incrementally.  Callers must
treat records returned by queries as read-only; all mutation goes through
:meth:`Tib.add_record`, which copies on insert by default (``adopt=True``
transfers ownership instead) so a caller's record object is never mutated
behind its back.

Two tiers: bounded hot memory + cold archive
--------------------------------------------

PathDump keeps only recent flow entries in the in-memory TIB and ages
older entries out to persistent storage.  A
:class:`~repro.storage.archive.RetentionPolicy` (record-count and/or
``estimated_bytes`` caps on the hot tier) turns that on: whenever a write
pushes the hot tier over a bound, the records with the **oldest
``etime``** are evicted - indexes and documents dropped from the hot
engine - into a :class:`~repro.storage.archive.ColdArchive` of append-only
log segments, under their original record ids.

Reads span both tiers transparently: :meth:`Tib.records` (and everything
built on it) merges the hot tier's id-ordered results with the archive's
id-ordered matches, so a capped TIB returns **byte-identical payloads** to
an uncapped one, in the same deterministic order.  Writes stay
upsert-correct across tiers: a record arriving for an archived
``(flow, path)`` key *promotes* the archived entry back into the hot tier
(same id) and merges into it, tombstoning the log entry.  The per-flow
byte/packet aggregates deliberately span both tiers, so the unconstrained
``getCount`` / top-k fast paths never touch the archive.

``record_count()`` / ``estimated_bytes()`` report the **hot tier only**
(they are the quantities the retention bound is enforced on);
``total_record_count()`` / ``archive_bytes()`` / ``tier_stats()`` cover
both tiers.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right, insort
from functools import lru_cache
from heapq import heapify, heappop, heappush
from typing import (Dict, FrozenSet, Iterable, List, Optional, Set, Tuple,
                    Union)

from repro.network.packet import FlowId
from repro.storage.archive import ColdArchive, RetentionPolicy
from repro.storage.docstore import Collection, DocumentStore
from repro.storage.records import (PathFlowRecord, ScanSpec, flow_key,
                                   is_wild)

#: Wildcard marker accepted in link IDs and time ranges.
WILDCARD = "*"

#: A link ID as used by the query API: a pair of switch names, either of
#: which may be a wildcard.
LinkId = Tuple[Optional[str], Optional[str]]

#: A time range: (start, end), either bound may be a wildcard.
TimeRange = Tuple[Optional[float], Optional[float]]

#: A "Flow" in the paper's sense: a (flowID, Path) pair.
Flow = Tuple[FlowId, Tuple[str, ...]]

#: Upper sentinel for bisecting past all entries with an exact time value.
_POS_INF = float("inf")

_EMPTY_IDS: FrozenSet[int] = frozenset()


# Canonical wildcard test, shared with ScanSpec (see records.is_wild).
_is_wild = is_wild


@lru_cache(maxsize=1 << 14)
def _path_topology(path: Tuple[str, ...]
                   ) -> Tuple[Tuple[Tuple[str, str], ...], Tuple[str, ...]]:
    """``(links, distinct nodes)`` of one path, memoized.

    The fabric yields a small closed set of paths, so the per-record
    link/endpoint index maintenance (insert, evict, promote) does one
    dict hit instead of rebuilding the pair list and node set each time.
    Degenerate (< 2 hop) paths traverse no link and index nothing.
    """
    if len(path) < 2:
        return (), ()
    return tuple(zip(path, path[1:])), tuple(set(path))


def is_unconstrained_link(link: Optional[LinkId]) -> bool:
    """Whether ``link`` constrains nothing (absent or fully wildcarded)."""
    return link is None or (_is_wild(link[0]) and _is_wild(link[1]))


def normalise_time_range(time_range: Optional[TimeRange]
                         ) -> Tuple[Optional[float], Optional[float]]:
    """Normalise a time range, mapping wildcards to ``None`` bounds."""
    if time_range is None:
        return (None, None)
    start, end = time_range
    start = None if _is_wild(start) else float(start)
    end = None if _is_wild(end) else float(end)
    if start is not None and end is not None and end < start:
        raise ValueError("time range end precedes start")
    return (start, end)


def record_in_range(record: PathFlowRecord,
                    time_range: Tuple[Optional[float], Optional[float]]
                    ) -> bool:
    """Whether a record's [stime, etime] interval overlaps the range."""
    start, end = time_range
    if start is not None and record.etime < start:
        return False
    if end is not None and record.stime > end:
        return False
    return True


def link_matches(record: PathFlowRecord, link: Optional[LinkId]) -> bool:
    """Whether a record's path traverses ``link`` (with wildcard support)."""
    if link is None:
        return True
    a, b = link
    wild_a = _is_wild(a)
    wild_b = _is_wild(b)
    if wild_a and wild_b:
        return True
    if wild_a or wild_b:
        # One concrete endpoint: it matches when it is an endpoint of any
        # link on the path, i.e. when it appears anywhere on a path that has
        # at least one link.  (The path's nodes *are* the set of link
        # endpoints, so no per-link double scan is needed.)
        node = a if wild_b else b
        path = record.path
        return len(path) >= 2 and node in path
    return record.traverses_link(a, b)


class Tib:
    """One end host's Trajectory Information Base.

    Args:
        host: the owning end host's name.
        store: optional shared :class:`DocumentStore`; a private one is
            created when omitted.
        retention: optional hot-tier bounds; when any bound is set the TIB
            runs two-tiered (see the module docstring) and ages
            oldest-``etime`` records into ``archive``.
        archive: optional cold archive instance (a default
            :class:`~repro.storage.archive.ColdArchive` is created when a
            bounded retention policy needs one).
    """

    COLLECTION = "tib_records"

    def __init__(self, host: str, store: Optional[DocumentStore] = None,
                 retention: Optional[RetentionPolicy] = None,
                 archive: Optional[ColdArchive] = None) -> None:
        self.host = host
        self.store = store or DocumentStore()
        self._collection: Collection = self.store.collection(self.COLLECTION)
        self._collection.create_index("flow_key")
        self._collection.create_index("dst_ip")
        # Engine state (see the module docstring).  All postings hold record
        # ids; ids are assigned in insertion order, so id order doubles as
        # the deterministic result order.
        self._primary: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._cache: Dict[int, PathFlowRecord] = {}
        self._flow_ids: Dict[str, List[int]] = {}
        self._flow_totals: Dict[str, List[int]] = {}
        self._link_ids: Dict[Tuple[str, str], Set[int]] = {}
        self._endpoint_ids: Dict[str, Set[int]] = {}
        # Sorted time index + batched insertion buffers (see docstring).
        self._by_stime: List[Tuple[float, int]] = []
        self._by_etime: List[Tuple[float, int]] = []
        self._pending_stime: List[Tuple[float, int]] = []
        self._pending_etime: List[Tuple[float, int]] = []
        self._stale_time_entries = 0
        # Serialises the fold of the insertion buffers: read-only queries
        # may run concurrently (the scatter-gather executor's worker pool,
        # hedged duplicate attempts), and the fold is the one place a read
        # mutates index state.  Writes must still not race with queries.
        self._time_index_lock = threading.Lock()
        # Two-tier state (engaged only when a bounded retention policy is
        # configured - the unbounded single-tier fast paths pay nothing).
        self.retention = retention or RetentionPolicy()
        self.archive: Optional[ColdArchive] = archive
        if self.archive is None and self.retention.bounded:
            self.archive = ColdArchive()
        # Min-heap of (etime, record id) driving oldest-first eviction;
        # entries go stale when a merge raises a record's etime (lazily
        # validated on pop).  Maintained only while retention is bounded.
        self._evict_heap: List[Tuple[float, int]] = []
        if self.retention.bounded:
            self._rebuild_evict_heap()
        # Promotions reinsert old ids: the cache's insertion order stops
        # being id order, and the time index may briefly hold duplicate
        # live entries for one id (cleared by the next full rebuild).
        self._cache_order_dirty = False
        self._time_dup_possible = False
        self.evictions = 0
        self.promotions = 0
        # Hot-tier scan routing counters: which index served each scan
        # (flow postings / link+endpoint indexes / sorted time index) or
        # whether it walked the whole cache.  The plan executor diffs
        # :meth:`scan_stat_snapshot` around a plan to prove its pushed
        # filter actually routed through an index.
        self.scan_routes: Dict[str, int] = {"flow": 0, "link": 0,
                                            "time": 0, "full": 0}

    # ----------------------------------------------------------------- writes
    def add_record(self, record: PathFlowRecord, adopt: bool = False) -> None:
        """Insert a finished per-path flow record.

        Consecutive records for the same (flow, path) are merged in place,
        mirroring the per-path aggregation the trajectory memory performs.

        The caller's record is **never mutated**: by default the TIB stores
        a private copy on first insert (copy-on-insert), so the caller may
        keep, reuse or mutate its object freely - earlier, the TIB both
        rewrote ``record.path`` in place and folded later merges into the
        caller's retained object.  Producers that hand over freshly built,
        never-again-touched records (the trajectory constructor's eviction
        path) pass ``adopt=True`` to transfer ownership and skip the copy.
        """
        path = record.path
        if type(path) is not tuple:
            path = tuple(path)
        key = (flow_key(record.flow_id), path)
        record_id = self._primary.get(key)
        if record_id is None and self.archive is not None and \
                self.archive.lookup(key) is not None:
            # The key was aged out: the merge lands on the archived record
            # (promoted back hot, or folded off-tier - see _merge_archived)
            # exactly where an uncapped TIB would put it.
            self._merge_archived(key, record)
            if self.retention.bounded:
                self._enforce_retention()
            return
        if record_id is None:
            if adopt:
                if record.path is not path:
                    record.path = path
                stored = record
            else:
                stored = PathFlowRecord(
                    flow_id=record.flow_id, path=path, stime=record.stime,
                    etime=record.etime, bytes=record.bytes, pkts=record.pkts)
            if not self._admit_cold(key, stored):
                self._insert_new(key, stored)
        else:
            self._merge_into(record_id, key[0], record)
        if self.retention.bounded:
            self._enforce_retention()

    def add_records(self, records: Iterable[PathFlowRecord],
                    adopt: bool = False) -> int:
        """Insert many records (bulk upsert); returns the number processed.

        ``adopt=True`` transfers ownership of the record objects to the TIB
        (no copy-on-insert; the caller must not touch them again).
        """
        count = 0
        add = self.add_record
        for record in records:
            add(record, adopt)
            count += 1
        return count

    def clear(self) -> None:
        """Drop every record."""
        self._collection.clear()
        self._primary.clear()
        self._cache.clear()
        self._flow_ids.clear()
        self._flow_totals.clear()
        self._link_ids.clear()
        self._endpoint_ids.clear()
        self._by_stime = []
        self._by_etime = []
        self._pending_stime = []
        self._pending_etime = []
        self._stale_time_entries = 0
        if self.archive is not None:
            self.archive.clear()
        self._evict_heap = []
        self._cache_order_dirty = False
        self._time_dup_possible = False

    def _admit_cold(self, key: Tuple[str, Tuple[str, ...]],
                    record: PathFlowRecord) -> bool:
        """Cold-admission control: archive a record that would age out
        immediately, skipping the hot insert + self-eviction round-trip.

        With a record-count bound at capacity, a new record strictly older
        (by ``etime``) than the eviction heap's minimum would become the
        heap's very next victim: the normal path would insert it, index
        it, then evict that same record before ``add_record`` returns.
        Routing it straight to the write-behind buffer produces the
        *identical* observable state - same hot contents, same cold
        contents, same eviction count, and the same record id (reserved
        from the collection's sequence, so spanning reads stay byte-
        identical to an uncapped TIB's id order) - without the round-trip.
        Stale heap entries only ever *understate* the hot minimum, so the
        strict comparison can never misroute a record the hot tier would
        have kept.
        """
        policy = self.retention
        if policy.max_records is None or self.archive is None or \
                len(self._cache) < policy.max_records:
            return False
        heap = self._evict_heap
        if not heap or record.etime >= heap[0][0]:
            return False
        record_id = self._collection.reserve_id()
        # _flow_totals spans both tiers (see _evict_record).
        totals = self._flow_totals.get(key[0])
        if totals is None:
            self._flow_totals[key[0]] = [record.bytes, record.pkts]
        else:
            totals[0] += record.bytes
            totals[1] += record.pkts
        self.archive.stage(record_id, record, key)
        self.evictions += 1
        return True

    def _insert_new(self, key: Tuple[str, Tuple[str, ...]],
                    record: PathFlowRecord) -> None:
        record_id = self._collection.insert(record.to_document())
        self._primary[key] = record_id
        self._cache[record_id] = record
        self._flow_ids.setdefault(key[0], []).append(record_id)
        totals = self._flow_totals.get(key[0])
        if totals is None:
            self._flow_totals[key[0]] = [record.bytes, record.pkts]
        else:
            totals[0] += record.bytes
            totals[1] += record.pkts
        links, nodes = _path_topology(record.path)
        for pair in links:
            self._link_ids.setdefault(pair, set()).add(record_id)
        for node in nodes:
            self._endpoint_ids.setdefault(node, set()).add(record_id)
        self._pending_stime.append((record.stime, record_id))
        self._pending_etime.append((record.etime, record_id))
        if self.retention.bounded:
            heappush(self._evict_heap, (record.etime, record_id))

    def _merge_into(self, record_id: int, fkey: str,
                    record: PathFlowRecord) -> None:
        cached = self._cache[record_id]
        cached.bytes += record.bytes
        cached.pkts += record.pkts
        totals = self._flow_totals[fkey]
        totals[0] += record.bytes
        totals[1] += record.pkts
        changes = {"bytes": cached.bytes, "pkts": cached.pkts}
        # A moved bound strands the old index entry; since ``stime`` only
        # ever decreases and ``etime`` only ever increases, the live entry
        # is the one whose time equals the record's current bound, and
        # reads skip the stale ones (compacted once they pile up).
        if record.stime < cached.stime:
            cached.stime = record.stime
            changes["stime"] = cached.stime
            self._pending_stime.append((cached.stime, record_id))
            self._stale_time_entries += 1
        if record.etime > cached.etime:
            cached.etime = record.etime
            changes["etime"] = cached.etime
            self._pending_etime.append((cached.etime, record_id))
            self._stale_time_entries += 1
            if self.retention.bounded:
                heappush(self._evict_heap, (cached.etime, record_id))
        self._collection.update(record_id, changes)

    # -------------------------------------------------------------- retention
    def configure_retention(self, max_records: Optional[int] = None,
                            max_bytes: Optional[int] = None) -> None:
        """(Re)configure the hot-tier bounds and enforce them immediately.

        ``None`` bounds are unbounded; configuring both to ``None`` stops
        future aging (already-archived records stay cold and queries keep
        spanning both tiers).
        """
        self.retention = RetentionPolicy(max_records=max_records,
                                         max_bytes=max_bytes)
        if self.retention.bounded:
            if self.archive is None:
                self.archive = ColdArchive()
            self._rebuild_evict_heap()
            self._enforce_retention()

    def _rebuild_evict_heap(self) -> None:
        """Seed the eviction heap from the live hot tier (policy (re)set)."""
        heap = [(record.etime, record_id)
                for record_id, record in self._cache.items()]
        heapify(heap)
        self._evict_heap = heap

    def _enforce_retention(self) -> None:
        """Age oldest-``etime`` records into the archive until the hot tier
        is back under every configured bound."""
        policy = self.retention
        cache = self._cache
        heap = self._evict_heap
        while heap and policy.exceeded_by(len(cache),
                                          self._collection.estimated_bytes()):
            etime, record_id = heappop(heap)
            record = cache.get(record_id)
            if record is None or record.etime != etime:
                continue  # evicted already, or a merge raised its etime
            self._evict_record(record_id, record)

    def _evict_record(self, record_id: int, record: PathFlowRecord) -> None:
        """Move one hot record into the cold archive (indexes dropped)."""
        key = (flow_key(record.flow_id), record.path)
        del self._primary[key]
        del self._cache[record_id]
        posting = self._flow_ids.get(key[0])
        if posting is not None:
            posting.remove(record_id)
            if not posting:
                del self._flow_ids[key[0]]
        # NOTE: _flow_totals deliberately spans both tiers (unconstrained
        # getCount / top-k stay exact and archive-free) - not decremented.
        links, nodes = _path_topology(record.path)
        for pair in links:
            ids = self._link_ids.get(pair)
            if ids is not None:
                ids.discard(record_id)
                if not ids:
                    del self._link_ids[pair]
        for node in nodes:
            ids = self._endpoint_ids.get(node)
            if ids is not None:
                ids.discard(record_id)
                if not ids:
                    del self._endpoint_ids[node]
        self._collection.delete_by_id(record_id)
        # Its sorted-time entries are stranded; reads already validate
        # against the cache when stale entries exist, and the next rebuild
        # drops them.
        self._stale_time_entries += 2
        # Write-behind: the eviction fast path pays a dict insert, not an
        # encode - the archive batches the appends and every read path
        # flushes first (see ColdArchive.stage).
        self.archive.stage(record_id, record, key)
        self.evictions += 1

    def _merge_archived(self, key: Tuple[str, Tuple[str, ...]],
                        record: PathFlowRecord) -> None:
        """Merge ``record`` into the key's archived record.

        The default path promotes the archived record back into the hot
        tier and merges there (:meth:`_restore_from_archive` +
        :meth:`_merge_into`).  Admission control short-circuits the
        round-trip: when the hot tier is at its record cap and both the
        incoming and the archived ``etime`` sit strictly below the
        eviction heap's minimum, the merged record would be the very next
        eviction victim - so the merge folds *off-tier* (take, fold,
        re-stage), producing the identical observable state (same tiers,
        same id, same eviction/promotion counts, same spanning payloads)
        without touching the hot engine.  Stale heap entries only ever
        understate the hot minimum, so the short-circuit can never keep a
        record cold that the hot tier would have retained.
        """
        policy = self.retention
        heap = self._evict_heap
        if policy.max_records is not None and heap and \
                len(self._cache) >= policy.max_records and \
                record.etime < heap[0][0]:
            record_id, archived = self.archive.take(key)
            if archived.etime < heap[0][0]:
                # Fold off-tier (the _merge_into arithmetic, on the
                # archive's exclusively-owned record object).
                archived.bytes += record.bytes
                archived.pkts += record.pkts
                if record.stime < archived.stime:
                    archived.stime = record.stime
                if record.etime > archived.etime:
                    archived.etime = record.etime
                totals = self._flow_totals[key[0]]
                totals[0] += record.bytes
                totals[1] += record.pkts
                self.archive.stage(record_id, archived, key)
                self.promotions += 1
                self.evictions += 1
                return
            # It would stay hot after all: promote it normally (the take
            # already happened, so install the object directly).
            self._install_promoted(record_id, archived, key)
            self._merge_into(record_id, key[0], record)
            return
        self._merge_into(self._restore_from_archive(key), key[0], record)

    def _restore_from_archive(self, key: Tuple[str, Tuple[str, ...]]) -> int:
        """Promote the archived record for ``key`` back into the hot tier.

        The record keeps its original id, so merged results stay in the
        exact order an uncapped TIB would produce.  The caller merges the
        incoming record afterwards (and retention enforcement may age
        something - possibly this very record - right back out).
        """
        record_id, record = self.archive.take(key)
        self._install_promoted(record_id, record, key)
        return record_id

    def _install_promoted(self, record_id: int, record: PathFlowRecord,
                          key: Tuple[str, Tuple[str, ...]]) -> None:
        """Install an already-taken archived record into the hot tier."""
        document = record.to_document()
        document["_id"] = record_id
        self._collection.insert(document)
        self._primary[key] = record_id
        self._cache[record_id] = record
        self._cache_order_dirty = True
        insort(self._flow_ids.setdefault(key[0], []), record_id)
        # _flow_totals already covers this record (it spans both tiers).
        links, nodes = _path_topology(record.path)
        for pair in links:
            self._link_ids.setdefault(pair, set()).add(record_id)
        for node in nodes:
            self._endpoint_ids.setdefault(node, set()).add(record_id)
        self._pending_stime.append((record.stime, record_id))
        self._pending_etime.append((record.etime, record_id))
        # The pre-eviction index entries may still be around with the very
        # same (time, id) values - flag possible duplicates for reads.
        self._time_dup_possible = True
        if self.retention.bounded:
            heappush(self._evict_heap, (record.etime, record_id))
        self.promotions += 1

    # ------------------------------------------------------------------ reads
    @staticmethod
    def _as_spec(flow_id: Optional[FlowId], link: Optional[LinkId],
                 start: Optional[float], end: Optional[float]) -> ScanSpec:
        """Compile the legacy keyword constraints into a :class:`ScanSpec`."""
        return ScanSpec(
            start=start, end=end,
            links=() if is_unconstrained_link(link) else (tuple(link),),
            flow_keys=(None if flow_id is None
                       else frozenset((flow_key(flow_id),))))

    def records(self, flow_id: Optional[FlowId] = None,
                link: Optional[LinkId] = None,
                time_range: Optional[TimeRange] = None
                ) -> List[PathFlowRecord]:
        """All records matching the given constraints.

        The constraints compile into one :class:`ScanSpec` served by both
        tiers' ``scan``: hot results and cold-archive matches are merged in
        record-id order, so a capped TIB answers identically to an uncapped
        one.  The returned hot-tier :class:`PathFlowRecord` objects are the
        TIB's own memoized instances - treat them as read-only (archived
        matches are freshly decoded copies).
        """
        start, end = normalise_time_range(time_range)
        return self.spec_records(self._as_spec(flow_id, link, start, end))

    def spec_records(self, spec: ScanSpec) -> List[PathFlowRecord]:
        """All records matching one :class:`ScanSpec`, both tiers merged.

        The spec-native read surface :meth:`records` compiles onto, and
        the seam the plan executor's pushed ``Filter`` lands on: hot
        results and cold-archive matches merge in record-id order, so a
        capped TIB answers identically to an uncapped one.
        """
        archive = self.archive
        if archive is None or not archive.live_count:
            return self._hot_records(spec)
        pairs = self.scan(spec)
        cold = archive.scan(spec)
        if cold:
            pairs.extend(cold)
            pairs.sort(key=lambda pair: pair[0])
        return [record for _, record in pairs]

    def _hot_records(self, spec: ScanSpec) -> List[PathFlowRecord]:
        """The single-tier read path (no live archive entries).

        The unconstrained and time-only branches skip the ``(id, record)``
        pair allocation entirely; everything else delegates to
        :meth:`scan` - one copy of the index routing and filters, so
        capped and uncapped reads can never diverge.
        """
        cache = self._cache
        if spec.flow_keys is None and not spec.links:
            if spec.start is None and spec.end is None:
                self.scan_routes["full"] += 1
                if self._cache_order_dirty:
                    # Promotions reinserted old ids at the dict's tail;
                    # the deterministic result order is id order.
                    return [record for _, record in sorted(cache.items())]
                return list(cache.values())
            self.scan_routes["time"] += 1
            return [cache[record_id]
                    for record_id in self._ids_in_window(spec.start,
                                                         spec.end)]
        return [record for _, record in self.scan(spec)]

    @staticmethod
    def _links_match(record: PathFlowRecord,
                     links: Tuple[LinkId, ...]) -> bool:
        """Whether the record satisfies every link constraint of a spec."""
        return all(link_matches(record, link) for link in links)

    def scan(self, spec: ScanSpec) -> List[Tuple[int, PathFlowRecord]]:
        """The hot tier's matches for ``spec``: ``(id, record)`` pairs in
        id order - the hot half of the tiers' shared read surface
        (:meth:`ColdArchive.scan <repro.storage.archive.ColdArchive.scan>`
        is the cold half).

        The index-routing core of every read: per-flow postings, the
        inverted link/endpoint indexes, or the sorted time index pick the
        candidate ids; the remaining constraints filter them.
        :meth:`records` merges cold matches into the pairs by id for the
        deterministic whole-TIB order.
        """
        cache = self._cache
        start = spec.start
        end = spec.end
        links = spec.links
        pairs: List[Tuple[int, PathFlowRecord]] = []

        if spec.flow_keys is not None:
            self.scan_routes["flow"] += 1
            # Per-flow index; posting lists are already in id (insertion)
            # order.  Multiple keys union their postings, then re-sort.
            if len(spec.flow_keys) == 1:
                candidate_ids: Iterable[int] = self._flow_ids.get(
                    next(iter(spec.flow_keys)), ())
            else:
                merged: List[int] = []
                for fkey in spec.flow_keys:
                    merged.extend(self._flow_ids.get(fkey, ()))
                merged.sort()
                candidate_ids = merged
            for record_id in candidate_ids:
                record = cache[record_id]
                if start is not None and record.etime < start:
                    continue
                if end is not None and record.stime > end:
                    continue
                if links and not self._links_match(record, links):
                    continue
                pairs.append((record_id, record))
        elif links:
            # Route on the first link constraint (the endpoint index for a
            # wildcard endpoint, the inverted link index otherwise); any
            # further constraints filter the candidates.
            self.scan_routes["link"] += 1
            a, b = links[0]
            if a is None or b is None:
                candidates: Iterable[int] = self._endpoint_ids.get(
                    a if b is None else b, _EMPTY_IDS)
            else:
                forward = self._link_ids.get((a, b), _EMPTY_IDS)
                backward = self._link_ids.get((b, a), _EMPTY_IDS)
                candidates = forward | backward if backward else forward
            rest = links[1:]
            for record_id in sorted(candidates):
                record = cache[record_id]
                if start is not None and record.etime < start:
                    continue
                if end is not None and record.stime > end:
                    continue
                if rest and not self._links_match(record, rest):
                    continue
                pairs.append((record_id, record))
        elif start is None and end is None:
            self.scan_routes["full"] += 1
            pairs = sorted(cache.items())
        else:
            self.scan_routes["time"] += 1
            pairs = [(record_id, cache[record_id])
                     for record_id in self._ids_in_window(start, end)]
        if spec.limit is not None:
            del pairs[spec.limit:]
        return pairs

    def _ids_in_window(self, start: Optional[float],
                       end: Optional[float]) -> List[int]:
        """Record ids whose [stime, etime] overlaps the window, id-ordered.

        Overlap means ``etime >= start`` and ``stime <= end``; each bound is
        a bisection over the corresponding sorted time index.  With both
        bounds present the smaller candidate side is enumerated and the
        other bound verified per record.  When merges have stranded stale
        entries, each candidate is additionally checked against the
        record's current bound (``stime`` strictly decreases and ``etime``
        strictly increases on change, so exactly one entry per record
        matches).
        """
        self._refresh_time_index()
        cache = self._cache
        # Stale entries exist after merges moved a bound *or* after records
        # were aged into the archive (their ids are no longer in the cache
        # at all); cache.get covers both.
        stale = self._stale_time_entries > 0
        if start is None:
            cut = bisect_right(self._by_stime, (end, _POS_INF))
            if stale:
                ids = [record_id for stime, record_id in self._by_stime[:cut]
                       if (record := cache.get(record_id)) is not None
                       and record.stime == stime]
            else:
                ids = [record_id for _, record_id in self._by_stime[:cut]]
        elif end is None:
            lo = bisect_left(self._by_etime, (start,))
            if stale:
                ids = [record_id for etime, record_id in self._by_etime[lo:]
                       if (record := cache.get(record_id)) is not None
                       and record.etime == etime]
            else:
                ids = [record_id for _, record_id in self._by_etime[lo:]]
        else:
            lo = bisect_left(self._by_etime, (start,))
            cut = bisect_right(self._by_stime, (end, _POS_INF))
            if len(self._by_etime) - lo <= cut:
                ids = [record_id for etime, record_id in self._by_etime[lo:]
                       if (record := cache.get(record_id)) is not None
                       and record.stime <= end
                       and (not stale or record.etime == etime)]
            else:
                ids = [record_id for stime, record_id in self._by_stime[:cut]
                       if (record := cache.get(record_id)) is not None
                       and record.etime >= start
                       and (not stale or record.stime == stime)]
        ids.sort()
        if self._time_dup_possible and ids:
            # A promoted record's fresh index entry can coexist with its
            # identical pre-eviction entry until the next rebuild.
            deduped = [ids[0]]
            for record_id in ids[1:]:
                if record_id != deduped[-1]:
                    deduped.append(record_id)
            ids = deduped
        return ids

    #: Rebuild the time index outright once stale entries exceed this
    #: fraction of it (and this many entries in absolute terms).
    TIME_INDEX_STALE_RATIO = 0.5
    TIME_INDEX_STALE_MIN = 64

    def _refresh_time_index(self) -> None:
        """Fold the insertion buffers into the sorted time index.

        Writes only append to the pending buffers; the first
        time-constrained query after a write burst sorts the buffer
        (O(k log k) for k buffered entries) and concatenates it onto the
        sorted run - Timsort's galloping merge then combines the two runs
        in O(n) comparisons, replacing the old O(n log n) full re-sort.
        When merges have stranded enough stale entries, the index is
        rebuilt from the record cache instead, which also drops them.

        Thread-safe against concurrent *queries* (the fold runs under a
        lock, so duplicate hedged attempts can't fold the same buffer
        twice); writes must not race with queries.
        """
        if not self._pending_stime and not self._pending_etime:
            stale = self._stale_time_entries
            if stale < self.TIME_INDEX_STALE_MIN or \
                    stale <= len(self._by_stime) * self.TIME_INDEX_STALE_RATIO:
                # Steady-state read path: everything already folded and no
                # compaction due - skip the lock entirely.
                return
        with self._time_index_lock:
            size = len(self._by_stime) + len(self._pending_stime)
            if self._stale_time_entries >= self.TIME_INDEX_STALE_MIN and \
                    self._stale_time_entries > \
                    size * self.TIME_INDEX_STALE_RATIO:
                self._rebuild_time_index()
                return
            # Fold into fresh lists (not in place) so a reader still
            # enumerating the previous run keeps a stable snapshot.
            if self._pending_stime:
                self._pending_stime.sort()
                merged = self._by_stime + self._pending_stime
                merged.sort()
                self._by_stime = merged
                self._pending_stime = []
            if self._pending_etime:
                self._pending_etime.sort()
                merged = self._by_etime + self._pending_etime
                merged.sort()
                self._by_etime = merged
                self._pending_etime = []

    def _rebuild_time_index(self) -> None:
        """Full rebuild from the record cache (drops stale entries - both
        merge-stranded ones and those of records aged into the archive -
        and collapses any promotion duplicates)."""
        by_stime = []
        by_etime = []
        for record_id, record in self._cache.items():
            by_stime.append((record.stime, record_id))
            by_etime.append((record.etime, record_id))
        by_stime.sort()
        by_etime.sort()
        self._by_stime = by_stime
        self._by_etime = by_etime
        self._pending_stime = []
        self._pending_etime = []
        self._stale_time_entries = 0
        self._time_dup_possible = False

    def record_count(self) -> int:
        """Number of records in the **hot tier** (the bounded quantity)."""
        return len(self._cache)

    def total_record_count(self) -> int:
        """Number of records across both tiers."""
        total = len(self._cache)
        if self.archive is not None:
            total += self.archive.live_count
        return total

    def flow_byte_totals(self) -> Dict[str, int]:
        """Total bytes per flow key over the whole TIB (both tiers).

        Served from the incrementally maintained per-flow aggregates (no
        record scan); flows appear in first-record order.  This is the fast
        path behind unconstrained top-k / heavy-hitter style queries, and
        it deliberately spans the archive - aging a record out never
        changes a flow's totals.
        """
        return {key: totals[0]
                for key, totals in self._flow_totals.items()}

    def flow_totals(self, fkey: str) -> Tuple[int, int]:
        """One flow's maintained ``(bytes, pkts)`` totals over both tiers
        (``(0, 0)`` for an unknown flow) - the per-flow aggregate row
        behind ``getCount``'s fast path and the plan executor's
        scalar-flow-sum short circuit."""
        totals = self._flow_totals.get(fkey)
        return (totals[0], totals[1]) if totals else (0, 0)

    def scan_stat_snapshot(self) -> Dict[str, int]:
        """Cumulative scan counters of both tiers, cheap to read.

        Hot-index routing counts plus the cold tier's pruning counters
        under tier-qualified names.  Unlike :meth:`tier_stats` this never
        flushes the archive - the plan executor snapshots around every
        single plan, so it must cost a few dict reads, not a tier settle.
        Cold keys are present (zero) even when single-tier, so per-plan
        diffs have a stable shape everywhere.
        """
        snapshot = {
            "hot_flow_routed": self.scan_routes["flow"],
            "hot_link_routed": self.scan_routes["link"],
            "hot_time_routed": self.scan_routes["time"],
            "hot_full_scans": self.scan_routes["full"],
        }
        if self.archive is not None:
            snapshot.update(self.archive.pruning_snapshot())
        else:
            snapshot.update(cold_segments_skipped=0, cold_entries_skipped=0,
                            cold_entries_decoded=0, cold_decode_cache_hits=0)
        return snapshot

    def estimated_bytes(self) -> int:
        """Approximate **hot-tier** storage footprint (Section 5.3
        accounting; the quantity ``RetentionPolicy.max_bytes`` bounds)."""
        return self._collection.estimated_bytes()

    def flush_archive(self) -> None:
        """Force the archive's write-behind buffer into its log.

        Reads and scans flush implicitly (the archive's flush barrier);
        snapshot, accounting and stats paths that look at the log directly
        call this first so they never observe a torn tier.  A no-op when
        single-tier or when nothing is staged.
        """
        if self.archive is not None:
            self.archive.flush()

    def configure_cold_scan(self, mode: str = "serial",
                            max_workers: Optional[int] = None) -> None:
        """Select the cold tier's spanning-scan strategy (see
        :meth:`ColdArchive.configure_scan
        <repro.storage.archive.ColdArchive.configure_scan>`); a no-op when
        no archive exists yet."""
        if self.archive is not None:
            self.archive.configure_scan(mode, max_workers)

    def archive_bytes(self) -> int:
        """Measured size of the cold archive's log (0 when single-tier);
        flushes the write-behind buffer so staged evictions are counted."""
        if self.archive is None:
            return 0
        self.archive.flush()
        return self.archive.archive_bytes()

    def tier_stats(self) -> Dict[str, int]:
        """Both tiers at a glance: sizes, movement counters, log shape and
        the cold scan's pruning/write-behind counters.  Flushes the
        write-behind buffer first so the byte accounting covers the whole
        tier."""
        archive = self.archive
        if archive is not None:
            archive.flush()
        stats = archive.stats if archive else {}
        return {
            "hot_records": len(self._cache),
            "hot_bytes": self._collection.estimated_bytes(),
            "cold_records": archive.live_count if archive else 0,
            "cold_bytes": archive.archive_bytes() if archive else 0,
            "evictions": self.evictions,
            "promotions": self.promotions,
            "segments": archive.segment_count if archive else 0,
            "archive_compactions": stats.get("compactions", 0),
            "segments_skipped": stats.get("segments_skipped", 0),
            "segment_decodes": stats.get("segment_decodes", 0),
            "entries_decoded": stats.get("entries_decoded", 0),
            "entries_skipped": stats.get("entries_skipped", 0),
            "decode_cache_hits": stats.get("decode_cache_hits", 0),
            "write_behind_flushes": stats.get("flushes", 0),
            "write_behind_records": stats.get("flushed_records", 0),
        }

    def reset_stats(self) -> None:
        """Zero the instrumentation counters: the backing collection's, the
        archive's, and the tier-movement (eviction/promotion) counts.

        The archive flushes first, so the new measurement interval starts
        from a settled tier instead of counting a predecessor's staged
        evictions as its own flush work.
        """
        self._collection.reset_stats()
        self.evictions = 0
        self.promotions = 0
        self.scan_routes = {"flow": 0, "link": 0, "time": 0, "full": 0}
        if self.archive is not None:
            self.archive.flush()
            self.archive.reset_stats()

    # ----------------------------------------------------------- Table 1 API
    def get_flows(self, link: Optional[LinkId] = None,
                  time_range: Optional[TimeRange] = None) -> List[Flow]:
        """``getFlows(linkID, timeRange)``: flows traversing ``link``."""
        flows: List[Flow] = []
        seen = set()
        for record in self.records(link=link, time_range=time_range):
            key = (record.flow_id, record.path)
            if key in seen:
                continue
            seen.add(key)
            flows.append((record.flow_id, record.path))
        return flows

    def get_paths(self, flow_id: FlowId, link: Optional[LinkId] = None,
                  time_range: Optional[TimeRange] = None
                  ) -> List[Tuple[str, ...]]:
        """``getPaths(flowID, linkID, timeRange)``: paths taken by a flow."""
        paths: List[Tuple[str, ...]] = []
        seen = set()
        for record in self.records(flow_id=flow_id, link=link,
                                   time_range=time_range):
            if record.path in seen:
                continue
            seen.add(record.path)
            paths.append(record.path)
        return paths

    def get_count(self, flow: Union[Flow, FlowId],
                  time_range: Optional[TimeRange] = None) -> Tuple[int, int]:
        """``getCount(Flow, timeRange)``: (bytes, packets) of a flow.

        ``flow`` may be a (flowID, Path) pair - counting only that path's
        records - or a bare flowID, counting across all its paths.
        """
        flow_id, path = self._split_flow(flow)
        if path is None and time_range is None:
            totals = self._flow_totals.get(flow_key(flow_id))
            return (totals[0], totals[1]) if totals else (0, 0)
        nbytes = 0
        npkts = 0
        for record in self.records(flow_id=flow_id, time_range=time_range):
            if path is not None and record.path != path:
                continue
            nbytes += record.bytes
            npkts += record.pkts
        return nbytes, npkts

    def get_duration(self, flow: Union[Flow, FlowId],
                     time_range: Optional[TimeRange] = None) -> float:
        """``getDuration(Flow, timeRange)``: observed duration of a flow.

        With a ``time_range``, each record's ``[stime, etime]`` extent is
        clamped to the requested window before the spread is taken - a
        record merely *overlapping* the window must not leak observation
        time from outside it (the reported duration can never exceed the
        window's length).  Without matching records the duration is 0.
        """
        flow_id, path = self._split_flow(flow)
        start, end = normalise_time_range(time_range)
        stimes: List[float] = []
        etimes: List[float] = []
        for record in self.records(flow_id=flow_id, time_range=time_range):
            if path is not None and record.path != path:
                continue
            stime = record.stime if start is None else max(record.stime, start)
            etime = record.etime if end is None else min(record.etime, end)
            stimes.append(stime)
            etimes.append(etime)
        if not stimes:
            return 0.0
        return max(etimes) - min(stimes)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _split_flow(flow: Union[Flow, FlowId]
                    ) -> Tuple[FlowId, Optional[Tuple[str, ...]]]:
        if isinstance(flow, FlowId):
            return flow, None
        flow_id, path = flow
        return flow_id, tuple(path) if path is not None else None
