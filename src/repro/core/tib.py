"""The Trajectory Information Base (TIB) and the host query API.

Each end host keeps a TIB: the repository of per-path flow records extracted
from the trajectories embedded in arriving packets.  The host API of Table 1
is implemented directly on top of it:

* ``getFlows(linkID, timeRange)`` - flows that traversed a link;
* ``getPaths(flowID, linkID, timeRange)`` - paths taken by a flow;
* ``getCount(Flow, timeRange)`` - packet and byte counts of a flow;
* ``getDuration(Flow, timeRange)`` - duration of a flow.

``linkID`` is a pair of adjacent switch IDs, ``timeRange`` a pair of
timestamps; both support wildcards (``None`` or ``"*"`` / ``"?"``), exactly
as described in Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.network.packet import FlowId
from repro.storage.docstore import Collection, DocumentStore
from repro.storage.records import PathFlowRecord, flow_key

#: Wildcard marker accepted in link IDs and time ranges.
WILDCARD = "*"

#: A link ID as used by the query API: a pair of switch names, either of
#: which may be a wildcard.
LinkId = Tuple[Optional[str], Optional[str]]

#: A time range: (start, end), either bound may be a wildcard.
TimeRange = Tuple[Optional[float], Optional[float]]

#: A "Flow" in the paper's sense: a (flowID, Path) pair.
Flow = Tuple[FlowId, Tuple[str, ...]]


def _is_wild(value) -> bool:
    """Whether a link/time component is a wildcard."""
    return value is None or value in (WILDCARD, "?")


def normalise_time_range(time_range: Optional[TimeRange]
                         ) -> Tuple[Optional[float], Optional[float]]:
    """Normalise a time range, mapping wildcards to ``None`` bounds."""
    if time_range is None:
        return (None, None)
    start, end = time_range
    start = None if _is_wild(start) else float(start)
    end = None if _is_wild(end) else float(end)
    if start is not None and end is not None and end < start:
        raise ValueError("time range end precedes start")
    return (start, end)


def record_in_range(record: PathFlowRecord,
                    time_range: Tuple[Optional[float], Optional[float]]
                    ) -> bool:
    """Whether a record's [stime, etime] interval overlaps the range."""
    start, end = time_range
    if start is not None and record.etime < start:
        return False
    if end is not None and record.stime > end:
        return False
    return True


def link_matches(record: PathFlowRecord, link: Optional[LinkId]) -> bool:
    """Whether a record's path traverses ``link`` (with wildcard support)."""
    if link is None:
        return True
    a, b = link
    if _is_wild(a) and _is_wild(b):
        return True
    links = record.links()
    if _is_wild(a):
        return any(v == b for _, v in links) or any(u == b for u, _ in links)
    if _is_wild(b):
        return any(u == a for u, _ in links) or any(v == a for _, v in links)
    return record.traverses_link(a, b)


class Tib:
    """One end host's Trajectory Information Base.

    Args:
        host: the owning end host's name.
        store: optional shared :class:`DocumentStore`; a private one is
            created when omitted.
    """

    COLLECTION = "tib_records"

    def __init__(self, host: str, store: Optional[DocumentStore] = None) -> None:
        self.host = host
        self.store = store or DocumentStore()
        self._collection: Collection = self.store.collection(self.COLLECTION)
        self._collection.create_index("flow_key")
        self._collection.create_index("dst_ip")

    # ----------------------------------------------------------------- writes
    def add_record(self, record: PathFlowRecord) -> None:
        """Insert a finished per-path flow record.

        Consecutive records for the same (flow, path) are merged, mirroring
        the per-path aggregation the trajectory memory performs.
        """
        existing = self._find_record_document(record.flow_id, record.path)
        if existing is not None:
            merged = PathFlowRecord.from_document(existing)
            merged.update(record.bytes, record.pkts, record.etime)
            merged.stime = min(merged.stime, record.stime)
            self._collection.delete({"_id": existing["_id"]})
            self._collection.insert(merged.to_document())
        else:
            self._collection.insert(record.to_document())

    def add_records(self, records: Iterable[PathFlowRecord]) -> int:
        """Insert many records; returns the number inserted."""
        count = 0
        for record in records:
            self.add_record(record)
            count += 1
        return count

    def clear(self) -> None:
        """Drop every record."""
        self._collection.clear()

    # ------------------------------------------------------------------ reads
    def records(self, flow_id: Optional[FlowId] = None,
                link: Optional[LinkId] = None,
                time_range: Optional[TimeRange] = None
                ) -> List[PathFlowRecord]:
        """All records matching the given constraints."""
        window = normalise_time_range(time_range)
        if flow_id is not None:
            documents = self._collection.find({"flow_key": flow_key(flow_id)})
        else:
            documents = self._collection.find()
        results = []
        for document in documents:
            record = PathFlowRecord.from_document(document)
            if not record_in_range(record, window):
                continue
            if not link_matches(record, link):
                continue
            results.append(record)
        return results

    def record_count(self) -> int:
        """Number of stored records."""
        return len(self._collection)

    def estimated_bytes(self) -> int:
        """Approximate storage footprint (Section 5.3 accounting)."""
        return self._collection.estimated_bytes()

    # ----------------------------------------------------------- Table 1 API
    def get_flows(self, link: Optional[LinkId] = None,
                  time_range: Optional[TimeRange] = None) -> List[Flow]:
        """``getFlows(linkID, timeRange)``: flows traversing ``link``."""
        flows: List[Flow] = []
        seen = set()
        for record in self.records(link=link, time_range=time_range):
            key = (record.flow_id, record.path)
            if key in seen:
                continue
            seen.add(key)
            flows.append((record.flow_id, record.path))
        return flows

    def get_paths(self, flow_id: FlowId, link: Optional[LinkId] = None,
                  time_range: Optional[TimeRange] = None
                  ) -> List[Tuple[str, ...]]:
        """``getPaths(flowID, linkID, timeRange)``: paths taken by a flow."""
        paths: List[Tuple[str, ...]] = []
        seen = set()
        for record in self.records(flow_id=flow_id, link=link,
                                   time_range=time_range):
            if record.path in seen:
                continue
            seen.add(record.path)
            paths.append(record.path)
        return paths

    def get_count(self, flow: Union[Flow, FlowId],
                  time_range: Optional[TimeRange] = None) -> Tuple[int, int]:
        """``getCount(Flow, timeRange)``: (bytes, packets) of a flow.

        ``flow`` may be a (flowID, Path) pair - counting only that path's
        records - or a bare flowID, counting across all its paths.
        """
        flow_id, path = self._split_flow(flow)
        nbytes = 0
        npkts = 0
        for record in self.records(flow_id=flow_id, time_range=time_range):
            if path is not None and record.path != path:
                continue
            nbytes += record.bytes
            npkts += record.pkts
        return nbytes, npkts

    def get_duration(self, flow: Union[Flow, FlowId],
                     time_range: Optional[TimeRange] = None) -> float:
        """``getDuration(Flow, timeRange)``: observed duration of a flow."""
        flow_id, path = self._split_flow(flow)
        stimes: List[float] = []
        etimes: List[float] = []
        for record in self.records(flow_id=flow_id, time_range=time_range):
            if path is not None and record.path != path:
                continue
            stimes.append(record.stime)
            etimes.append(record.etime)
        if not stimes:
            return 0.0
        return max(etimes) - min(stimes)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _split_flow(flow: Union[Flow, FlowId]
                    ) -> Tuple[FlowId, Optional[Tuple[str, ...]]]:
        if isinstance(flow, FlowId):
            return flow, None
        flow_id, path = flow
        return flow_id, tuple(path) if path is not None else None

    def _find_record_document(self, flow_id: FlowId,
                              path: Tuple[str, ...]) -> Optional[Dict[str, Any]]:
        for document in self._collection.find({"flow_key": flow_key(flow_id)}):
            if tuple(document["path"]) == tuple(path):
                return document
        return None
