"""Group-sharded agent servers behind one multiplexed stream connection.

Process mode (:mod:`~repro.core.agentserver`) runs one worker process *per
host* over a dedicated pipe - fine for an 8-host testbed, hopeless at the
paper's deployment scale: a 1000-host fat-tree would need a thousand
processes, and the event-plane bench shows most of the wire cost is
per-frame overhead anyway.  This module is the scale-out plane:

* **Worker groups.** Hosts are sharded into deterministic contiguous
  groups (:func:`shard_hosts`, ``WORKER_GROUP_ID``/``WORKER_GROUP_COUNT``
  style); one :func:`group_server_main` process owns *M* hosts' TIBs and
  monitors (one :class:`~repro.core.agentserver._HostServer` each), so a
  controller drives N processes x M hosts.
* **One multiplexed connection per worker.** Each group speaks the
  versioned wire codec over a single stream - TCP, Unix-domain socket, or
  a :mod:`multiprocessing` pipe - carrying interleaved request/reply
  envelopes tagged by correlation id (:class:`_GroupConn` demultiplexes
  replies to waiting threads, so scatters over different hosts of one
  group overlap on one socket).
* **Frame coalescing.** Monitor ticks, ingest batches, re-seed streams
  and per-tree-edge query requests for all hosts of a group pack into a
  single ``MSG_GROUP_BATCH`` envelope (``group_monitor_tick``,
  ``group_query``, ...), amortizing the per-message cost: the envelope
  costs one transport message where naive per-host send pays it M times.
  The inner frames are opaque here, so generic ``MSG_PLAN_REQUEST``/
  ``MSG_PLAN_RESULT`` plan frames coalesce exactly like legacy query
  frames - no group-transport change per new question, ever.
* **Same failure semantics.** A dead/hung/undecodable group connection
  surfaces as :class:`~repro.core.agentserver.AgentServerError` exactly
  like a dead pipe worker; with a
  :class:`~repro.core.supervisor.Supervisor` attached the group is
  respawned and re-seeded *over a fresh reconnect* (the socket accept
  loop hands the new connection to the same rendezvous as at startup),
  and :class:`~repro.core.supervisor.ChaosPolicy` injects
  connection-level faults (torn mid-frame close, stalled socket) keyed
  by group.

Stream framing is length-delimited (:func:`~repro.core.wire.stream_frame`
/ :class:`~repro.core.wire.StreamFrameReader`); pipe transport keeps the
pipe's native message boundaries.  Sockets bind to localhost (TCP) or a
private tempdir (Unix) - the protocol is machine-agnostic, the spawn
plumbing is not yet.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import wire
from repro.core.agentserver import (AgentServerError, _HostServer,
                                    AgentServerPool)
from repro.core.alarms import Alarm
from repro.core.executor import ModelTransport
from repro.core.monitor import MonitorSnapshot, TransferObservation
from repro.core.query import QueryResult
from repro.core.rpc import RpcChannel
from repro.core.supervisor import WorkerSeed
from repro.storage.records import PathFlowRecord

#: Stream transports for :class:`GroupAgentPool`.
TRANSPORT_UNIX = "unix"
TRANSPORT_TCP = "tcp"
TRANSPORT_PIPE = "pipe"
GROUP_TRANSPORTS = (TRANSPORT_UNIX, TRANSPORT_TCP, TRANSPORT_PIPE)

#: Default worker-group count when the caller does not choose one.
#: Deterministic (not derived from the machine) so sweeps reproduce.
DEFAULT_GROUP_COUNT = 8

#: Records per coalesced ingest envelope during re-seed (matches the pipe
#: pool's per-frame chunking so no single envelope monopolises the stream).
INGEST_CHUNK_RECORDS = AgentServerPool.INGEST_CHUNK_RECORDS

#: Distinguishes "use the pool's reply timeout" from an explicit ``None``.
_UNSET = object()


def shard_hosts(hosts: Sequence[str],
                group_count: int) -> List[Tuple[str, ...]]:
    """Split ``hosts`` into ``group_count`` deterministic contiguous shards.

    FlakeBench-style ``WORKER_GROUP_ID``/``WORKER_GROUP_COUNT`` sharding:
    group *g* of *N* owns a contiguous block of the host list, balanced to
    within one host (the first ``len(hosts) % N`` groups get the extra).
    Contiguity matters for byte-identity: folding group partials in group
    order visits hosts in exactly the canonical host order, so merges
    associate the same way as a serial scatter.
    """
    if group_count < 1:
        raise ValueError(f"group_count must be >= 1, got {group_count}")
    if group_count > len(hosts):
        group_count = max(1, len(hosts))
    base, extra = divmod(len(hosts), group_count)
    shards: List[Tuple[str, ...]] = []
    start = 0
    for gid in range(group_count):
        size = base + (1 if gid < extra else 0)
        shards.append(tuple(hosts[start:start + size]))
        start += size
    return shards


def shard_for(hosts: Sequence[str], group_id: int,
              group_count: int) -> Tuple[str, ...]:
    """The shard ``WORKER_GROUP_ID=group_id`` of ``group_count`` owns."""
    return shard_hosts(hosts, group_count)[group_id]


# =========================================================== worker process
class _WorkerPipeChannel:
    """Worker-side framing over a :mod:`multiprocessing` pipe (message
    boundaries come free; no length prefixes on the wire)."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def recv(self) -> Optional[bytes]:
        try:
            return self._conn.recv_bytes()
        except (EOFError, OSError):
            return None

    def send(self, frame: bytes) -> None:
        self._conn.send_bytes(frame)

    def close_torn(self) -> None:
        # A pipe has no byte stream to tear mid-frame; the closest fault is
        # a message too short to even be a header, then a hard close.
        try:
            self._conn.send_bytes(wire.MAGIC)
        except (OSError, ValueError):
            pass
        self.close()

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class _WorkerSocketChannel:
    """Worker-side length-delimited framing over a connected socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = wire.StreamFrameReader()
        self._ready: List[bytes] = []

    def recv(self) -> Optional[bytes]:
        while not self._ready:
            try:
                data = self._sock.recv(1 << 16)
            except OSError:
                return None
            if not data:
                return None  # controller went away; worker just exits
            try:
                self._ready.extend(self._reader.feed(data))
            except wire.WireError:
                return None  # corrupt inbound stream: die loudly (EOF)
        return self._ready.pop(0)

    def send(self, frame: bytes) -> None:
        self._sock.sendall(wire.stream_frame(frame))

    def close_torn(self) -> None:
        # A length prefix promising a whole ping frame, but only two bytes
        # of it: the controller's StreamFrameReader is left mid-frame and
        # must surface WireDecodeError at EOF, not hang or resync.
        torn = wire.stream_frame(wire.encode_ping())
        torn = torn[:wire.STREAM_PREFIX_BYTES + 2]
        try:
            self._sock.sendall(torn)
        except OSError:
            pass
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def group_server_main(group_id: int, group_count: int,
                      hosts: Sequence[str], transport: str,
                      endpoint) -> None:
    """Group worker main loop: serve coalesced envelopes for ``hosts``.

    One process owns every host of its shard - a
    :class:`~repro.core.agentserver._HostServer` per host - behind a
    single connection.  Top-level frames are either lifecycle
    (``MSG_SHUTDOWN``, ``MSG_SLEEP`` for stall injection,
    ``MSG_CLOSE_TORN`` for the chaos harness) or ``MSG_GROUP_BATCH``
    envelopes whose entries are routed to the per-host servers in entry
    order; a correlated envelope (id > 0) is answered with one reply
    envelope echoing the id, one reply frame per entry, in entry order.

    ``transport`` selects the channel: ``"pipe"`` wraps the
    :mod:`multiprocessing` connection in ``endpoint``; ``"unix"``/
    ``"tcp"`` connect to the listener address in ``endpoint`` and
    introduce themselves with a ``MSG_GROUP_HELLO`` naming this shard
    (``WORKER_GROUP_ID=group_id`` of ``WORKER_GROUP_COUNT=group_count``).
    """
    if transport == TRANSPORT_PIPE:
        channel = _WorkerPipeChannel(endpoint)
    else:
        family = (socket.AF_UNIX if transport == TRANSPORT_UNIX
                  else socket.AF_INET)
        sock = socket.socket(family, socket.SOCK_STREAM)
        deadline = time.monotonic() + 10.0
        while True:
            try:
                sock.connect(endpoint)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    return
                time.sleep(0.05)
        channel = _WorkerSocketChannel(sock)
        try:
            channel.send(wire.encode_group_hello(group_id, hosts))
        except OSError:
            channel.close()
            return
    servers = {host: _HostServer(host) for host in hosts}
    try:
        while True:
            frame = channel.recv()
            if frame is None:
                break
            try:
                kind = wire.frame_type(frame)
            except wire.WireError:
                break  # top-level garbage: the stream cannot be trusted
            if kind == wire.MSG_SHUTDOWN:
                break
            if kind == wire.MSG_SLEEP:
                time.sleep(wire.decode_sleep(frame))
                continue
            if kind == wire.MSG_CLOSE_TORN:
                channel.close_torn()
                return
            if kind != wire.MSG_GROUP_BATCH:
                continue  # unknown top-level frames are ignored
            try:
                cid, entries = wire.decode_group_batch(frame)
            except wire.WireError:
                break
            replies: List[Tuple[str, bytes]] = []
            for host, inner in entries:
                server = servers.get(host)
                if server is None:
                    reply: Optional[bytes] = wire.encode_error(
                        f"host {host} is not in group {group_id}")
                else:
                    reply = server.serve(inner)
                if cid:
                    if reply is None:
                        # Correlated envelopes must keep reply cardinality:
                        # a fire-and-forget frame inside one is a protocol
                        # misuse, answered loudly rather than skipped.
                        reply = wire.encode_error(
                            "entry produced no reply")
                    replies.append((host, reply))
            if cid:
                try:
                    channel.send(wire.encode_group_batch(cid, replies))
                except OSError:
                    break
    finally:
        channel.close()


# ======================================================== controller side
@dataclass
class GroupPoolStats:
    """Frame/byte/envelope counters and self-healing telemetry of one
    group pool.

    ``frames_*`` count *logical* per-host frames (comparable with the
    pipe pool's counters); ``envelopes_*`` count the physical transport
    messages that carried them, so ``frames_sent / envelopes_sent`` is
    the measured coalescing factor.  The supervision counters mirror
    :class:`~repro.core.agentserver.PoolStats`, keyed per *group* worker;
    ``reconnects`` counts fresh connections accepted after the initial
    spawn (each supervised respawn reconnects once).
    """

    frames_sent: int = 0
    bytes_sent: int = 0
    frames_received: int = 0
    bytes_received: int = 0
    envelopes_sent: int = 0
    envelopes_received: int = 0
    #: Fresh worker connections accepted after the initial spawn.
    reconnects: int = 0
    #: Supervised restarts that completed (respawn + reconnect + re-seed).
    restarts: int = 0
    #: Total milliseconds spent respawning and re-seeding group workers.
    reseed_ms: float = 0.0
    #: Groups whose restart budget was exhausted (circuit opened).
    circuit_open: int = 0
    #: Ingest mirrors that detached after delivery failed unrecoverably.
    mirror_detaches: int = 0
    #: Reply envelopes/streams that failed to decode (protocol desync;
    #: the group worker is killed and, when supervised, restarted).
    decode_errors: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.bytes_received = 0
        self.envelopes_sent = 0
        self.envelopes_received = 0
        self.reconnects = 0
        self.restarts = 0
        self.reseed_ms = 0.0
        self.circuit_open = 0
        self.mirror_detaches = 0
        self.decode_errors = 0


class _EndpointClosed(Exception):
    """The controller-side endpoint hit EOF or a closed descriptor."""


class _PipeEndpoint:
    """Controller-side framing over a :mod:`multiprocessing` pipe."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def recv(self) -> bytes:
        try:
            return self._conn.recv_bytes()
        except (EOFError, OSError) as error:
            raise _EndpointClosed(
                f"{type(error).__name__}: {error}") from error

    def send(self, frame: bytes) -> None:
        self._conn.send_bytes(frame)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class _SocketEndpoint:
    """Controller-side length-delimited framing over a connected socket.

    ``recv`` raises :class:`~repro.core.wire.WireDecodeError` for a
    malformed stream (oversized/truncated frames, garbage after a valid
    envelope - including the chaos harness's torn close, which leaves the
    reader mid-frame at EOF) and :class:`_EndpointClosed` for a clean
    EOF/closed descriptor.
    """

    def __init__(self, sock: socket.socket,
                 ready: Optional[List[bytes]] = None,
                 reader: Optional[wire.StreamFrameReader] = None) -> None:
        self._sock = sock
        self._reader = reader or wire.StreamFrameReader()
        self._ready: List[bytes] = list(ready or ())

    def recv(self) -> bytes:
        while not self._ready:
            try:
                data = self._sock.recv(1 << 16)
            except OSError as error:
                raise _EndpointClosed(
                    f"{type(error).__name__}: {error}") from error
            if not data:
                self._reader.eof()  # raises WireDecodeError mid-frame
                raise _EndpointClosed("EOF")
            self._ready.extend(self._reader.feed(data))
        return self._ready.pop(0)

    def send(self, frame: bytes) -> None:
        self._sock.sendall(wire.stream_frame(frame))

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class _Waiter:
    """One in-flight correlated exchange on a multiplexed connection."""

    __slots__ = ("cid", "event", "replies", "reply_bytes", "error")

    def __init__(self, cid: int) -> None:
        self.cid = cid
        self.event = threading.Event()
        self.replies: Optional[List[Tuple[str, bytes]]] = None
        self.reply_bytes = 0
        self.error: Optional[str] = None


class _GroupConn:
    """One multiplexed connection to a group worker.

    A dedicated reader thread demultiplexes reply envelopes to waiting
    request threads by correlation id, so concurrent exchanges on
    different hosts of one group interleave on a single stream.  All
    sends serialise on ``_send_lock`` (envelopes must not interleave
    bytes); FIFO delivery plus the worker's in-order serving preserves
    the ingest-before-query ordering fire-and-forget envelopes rely on.
    Any stream failure - EOF, an undecodable stream or envelope - marks
    the connection dead and fails every pending waiter, so no request
    thread ever hangs on a lost reply.
    """

    def __init__(self, pool: "GroupAgentPool", key: str, endpoint) -> None:
        self._pool = pool
        self.key = key
        self.endpoint = endpoint
        self.dead: Optional[str] = None  # guarded-by: _lock
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: Dict[int, _Waiter] = {}  # guarded-by: _lock
        self._next_cid = 1  # guarded-by: _lock
        self._reader = threading.Thread(
            target=self._read_loop, name=f"pathdump-mux-{key}", daemon=True)
        self._reader.start()

    def register(self) -> _Waiter:
        """Allocate a correlation id and park a waiter on it."""
        with self._lock:
            if self.dead is not None:
                raise AgentServerError(self.dead)
            cid = self._next_cid
            self._next_cid += 1
            waiter = _Waiter(cid)
            self._pending[cid] = waiter
        return waiter

    def discard(self, cid: int) -> None:
        """Forget a waiter (timed out / failed before the reply)."""
        with self._lock:
            self._pending.pop(cid, None)

    def send(self, frame: bytes) -> None:
        """Write one frame; raises ``OSError``-family on a dead stream."""
        with self._send_lock:
            self.endpoint.send(frame)

    def close(self, detail: str = "connection closed") -> None:
        self._fail(detail)

    def _fail(self, detail: str) -> None:
        with self._lock:
            if self.dead is None:
                self.dead = detail
            pending = list(self._pending.values())
            self._pending.clear()
        for waiter in pending:
            waiter.error = detail
            waiter.event.set()
        self.endpoint.close()

    def _read_loop(self) -> None:
        pool = self._pool
        while True:
            try:
                frame = self.endpoint.recv()
            except _EndpointClosed as error:
                self._fail(f"group worker {self.key} died mid-exchange: "
                           f"{error}")
                return
            except wire.WireError as error:
                pool._count_decode_error()
                self._fail(f"group worker {self.key} sent an undecodable "
                           f"stream; worker killed: {error}")
                pool._kill_group_process(self.key)
                return
            pool._count_envelope_received(len(frame))
            if pool.chaos is not None:
                frame = pool.chaos.on_reply(self.key, frame)
            try:
                cid, entries = wire.decode_group_batch(frame)
            except wire.WireError as error:
                pool._count_decode_error()
                self._fail(f"group worker {self.key} sent an undecodable "
                           f"reply; worker killed: {error}")
                pool._kill_group_process(self.key)
                return
            pool._count_frames_received(len(entries))
            if cid == 0:
                continue  # unsolicited fire-and-forget; not in the protocol
            with self._lock:
                waiter = self._pending.pop(cid, None)
            if waiter is not None:
                waiter.replies = entries
                waiter.reply_bytes = len(frame)
                waiter.event.set()


class GroupAgentPool:
    """N group-worker processes x M hosts each, behind one socket apiece.

    The scale-out counterpart of
    :class:`~repro.core.agentserver.AgentServerPool`: the same per-host
    client API (``add_records``/``query``/``monitor_tick``/...) so the
    cluster's mirrors and the executor's scatters work unchanged, plus
    the coalesced group API (``group_monitor_tick``/``group_query``/
    ``group_ping_state``) that packs one envelope per *group* instead of
    one frame per *host*.

    Args:
        hosts: hosts to serve, in canonical (scatter) order.
        group_count: worker-group count (defaults to
            :data:`DEFAULT_GROUP_COUNT`, capped at ``len(hosts)``);
            sharding is :func:`shard_hosts`.
        transport: :data:`TRANSPORT_UNIX` (default - a listener in a
            private tempdir), :data:`TRANSPORT_TCP` (localhost, ephemeral
            port) or :data:`TRANSPORT_PIPE` (the coalesced envelopes over
            plain pipes: process mode's transport with socket mode's
            batching).
        context: a :mod:`multiprocessing` context or start-method name.
        reply_timeout_s: optional deadline for a group's reply envelope;
            a timed-out group worker is killed (the multiplexed stream
            cannot be resynchronised) and, when supervised, restarted.
        supervisor: optional :class:`~repro.core.supervisor.Supervisor`;
            failures are keyed by *group key* (``group-N``), and restart
            recovery re-seeds every host of the group over a fresh
            reconnect.
        chaos: optional :class:`~repro.core.supervisor.ChaosPolicy`,
            likewise keyed by group key.
        connect_timeout_s: deadline for a spawned worker's hello to
            arrive on the accept loop.
    """

    INGEST_CHUNK_RECORDS = INGEST_CHUNK_RECORDS

    def __init__(self, hosts: Sequence[str],
                 group_count: Optional[int] = None,
                 transport: str = TRANSPORT_UNIX,
                 context=None,
                 reply_timeout_s: Optional[float] = None,
                 supervisor=None, chaos=None,
                 connect_timeout_s: float = 30.0) -> None:
        if transport not in GROUP_TRANSPORTS:
            raise ValueError(f"unknown group transport {transport!r}; "
                             f"expected one of {GROUP_TRANSPORTS}")
        if not hosts:
            raise ValueError("GroupAgentPool needs at least one host")
        if isinstance(context, str) or context is None:
            context = multiprocessing.get_context(context)
        self._context = context
        self.transport = transport
        self.reply_timeout_s = reply_timeout_s
        self.supervisor = supervisor
        self.chaos = chaos
        self.connect_timeout_s = connect_timeout_s
        self.stats = GroupPoolStats()  # guarded-by: _stats_lock
        self._stats_lock = threading.Lock()
        self._closed = False
        self.groups = shard_hosts(list(hosts), group_count
                                  or DEFAULT_GROUP_COUNT)
        self.group_count = len(self.groups)
        self._keys = [f"group-{gid}" for gid in range(self.group_count)]
        self._group_of: Dict[str, str] = {}
        for key, shard in zip(self._keys, self.groups):
            for host in shard:
                self._group_of[host] = key
        # Per-group supervision lock: serialises restart-with-recovery so
        # concurrent failed exchanges on one group produce one restart
        # (the epoch check below), not one per failure.
        self._locks: Dict[str, threading.Lock] = {
            key: threading.Lock() for key in self._keys}
        self._conns: Dict[str, _GroupConn] = {}  # guarded-by: _locks[key]
        self._procs: Dict[str, object] = {}  # guarded-by: _locks[key]
        self._epochs: Dict[str, int] = {key: 0 for key in self._keys}
        self._listener: Optional[socket.socket] = None
        self._sockdir: Optional[str] = None
        self._address = None
        self._arrivals: Dict[int, _SocketEndpoint] = {}  # guarded-by: _hello
        self._hello = threading.Condition()
        if transport != TRANSPORT_PIPE:
            self._start_listener()
        try:
            for key in self._keys:
                self._spawn(key)
        except BaseException:
            self.shutdown()
            raise

    # -------------------------------------------------------- spawn/connect
    def _start_listener(self) -> None:
        if self.transport == TRANSPORT_UNIX:
            self._sockdir = tempfile.mkdtemp(prefix="pathdump-groups-")
            address = os.path.join(self._sockdir, "agents.sock")
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(address)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            address = listener.getsockname()
        listener.listen(self.group_count + 8)
        # Poll-with-timeout instead of a blocking accept: a close() does
        # not reliably wake a blocked accept, and the forked workers hold
        # a copy of the listener fd anyway.
        listener.settimeout(0.5)
        self._listener = listener
        self._address = address
        thread = threading.Thread(target=self._accept_loop,
                                  name="pathdump-group-accept", daemon=True)
        thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self._handshake(sock)

    def _handshake(self, sock: socket.socket) -> None:
        """Read and validate a connecting worker's hello; route or drop.

        A connection whose first frame is not a well-formed hello naming
        a shard this pool computed is a stranger (or a corrupt worker)
        and is dropped - it never becomes a group connection.
        """
        reader = wire.StreamFrameReader()
        frames: List[bytes] = []
        sock.settimeout(5.0)
        try:
            while not frames:
                data = sock.recv(1 << 16)
                if not data:
                    raise wire.WireDecodeError("EOF before hello")
                frames = reader.feed(data)
            gid, hello_hosts = wire.decode_group_hello(frames[0])
            if not 0 <= gid < self.group_count or \
                    tuple(hello_hosts) != self.groups[gid]:
                raise wire.WireDecodeError(
                    f"hello names an unknown shard (group {gid})")
        except (wire.WireError, OSError):
            try:
                sock.close()
            except OSError:
                pass
            return
        sock.settimeout(None)
        endpoint = _SocketEndpoint(sock, ready=frames[1:], reader=reader)
        with self._hello:
            stale = self._arrivals.pop(gid, None)
            self._arrivals[gid] = endpoint
            self._hello.notify_all()
        if stale is not None:
            stale.close()

    def _await_hello(self, gid: int) -> _SocketEndpoint:
        deadline = time.monotonic() + self.connect_timeout_s
        with self._hello:
            while gid not in self._arrivals:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AgentServerError(
                        f"group-{gid} worker did not connect within "
                        f"{self.connect_timeout_s}s")
                self._hello.wait(remaining)
            return self._arrivals.pop(gid)

    def _spawn(self, key: str) -> None:  # holds: _locks[key]
        """(Re)create ``key``'s worker process and connection (called from
        ``__init__`` before any concurrency, or under the group lock)."""
        gid = self._keys.index(key)
        shard = self.groups[gid]
        if self.transport == TRANSPORT_PIPE:
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=group_server_main,
                args=(gid, self.group_count, shard, self.transport,
                      child_conn),
                name=f"pathdump-{key}", daemon=True)
            process.start()
            child_conn.close()
            endpoint = _PipeEndpoint(parent_conn)
        else:
            process = self._context.Process(
                target=group_server_main,
                args=(gid, self.group_count, shard, self.transport,
                      self._address),
                name=f"pathdump-{key}", daemon=True)
            process.start()
            try:
                endpoint = self._await_hello(gid)
            except AgentServerError:
                process.kill()
                process.join(5.0)
                raise
        self._conns[key] = _GroupConn(self, key, endpoint)
        self._procs[key] = process
        self._epochs[key] += 1

    # ------------------------------------------------------------------- API
    @property
    def hosts(self) -> List[str]:
        """Every host this pool serves, in canonical (shard) order."""
        # Shards are fixed at construction, so the snapshot is stable.
        return [host for shard in self.groups for host in shard]

    def group_keys(self) -> List[str]:
        """The group worker keys (``group-0`` ... ``group-N-1``)."""
        return list(self._keys)

    def group_hosts(self, key: str) -> Tuple[str, ...]:
        """The hosts group ``key`` owns, in canonical order."""
        try:
            return self.groups[self._keys.index(key)]
        except ValueError:
            raise AgentServerError(f"no agent server group {key}") from None

    def expand_key(self, name: str) -> List[str]:
        """Hosts behind ``name``: a group key expands to its shard, a
        plain host to itself (for failure attribution in sweeps)."""
        if name in self._group_of:
            return [name]
        return list(self.group_hosts(name))

    def _key_for(self, name: str) -> str:
        """The group key serving ``name`` (a host or a group key)."""
        key = self._group_of.get(name)
        if key is not None:
            return key
        if name in self._conns:  # lint: disable=R3 -- key set is construction-time constant
            return name
        raise AgentServerError(f"no agent server for {name}")

    # ------------------------------------------------------- per-host client
    def add_records(self, host: str,
                    records: Sequence[PathFlowRecord]) -> int:
        """Stream a record batch to ``host``'s group worker; returns the
        envelope bytes sent.  Fire-and-forget (FIFO delivery plus the
        worker's in-order serving puts it before any later query)."""
        if not records:
            return 0
        key = self._key_for(host)
        total = 0
        chunk = self.INGEST_CHUNK_RECORDS
        for start in range(0, len(records), chunk):
            frame = wire.encode_record_batch(records[start:start + chunk])
            total += self._post(key, [(host, frame)])
        return total

    def add_observations(self, host: str,
                         observations: Sequence[TransferObservation]) -> int:
        """Stream a transfer-observation batch to ``host``'s group worker
        (fire-and-forget); returns the envelope bytes sent."""
        if not observations:
            return 0
        key = self._key_for(host)
        total = 0
        chunk = self.INGEST_CHUNK_RECORDS
        for start in range(0, len(observations), chunk):
            frame = wire.encode_observation_batch(
                observations[start:start + chunk])
            total += self._post(key, [(host, frame)])
        return total

    def set_retention(self, host: str, max_records: Optional[int],
                      max_bytes: Optional[int]) -> int:
        """Configure ``host``'s hot-tier bounds (fire-and-forget; FIFO
        ordering puts the cap in force before later ingest)."""
        frame = wire.encode_retention(max_records, max_bytes)
        return self._post(self._key_for(host), [(host, frame)])

    def seed_monitor(self, host: str, snapshot: MonitorSnapshot) -> int:
        """Replace ``host``'s worker monitor state (fire-and-forget)."""
        frame = wire.encode_monitor_state(snapshot)
        return self._post(self._key_for(host), [(host, frame)])

    def query(self, host: str, query,
              spec: Optional[wire.SubtreeSpec] = None) -> QueryResult:
        """Run ``query`` on ``host`` via its group's multiplexed
        connection; returns the host's partial result (alarms piggyback
        on ``result.alarms``, as in process mode)."""
        key = self._key_for(host)
        frame = wire.encode_query_request(query, spec)
        replies, _reply_bytes, _sent = self._request(key, [(host, frame)])
        reply = self._reply_for(key, replies, host)
        kind = self._checked_decode(key, reply, wire.frame_type)
        if kind == wire.MSG_ERROR:
            detail = self._checked_decode(key, reply, wire.decode_error)
            raise AgentServerError(f"agent server on {host}: {detail}")
        return self._checked_decode(key, reply, wire.decode_result, query)

    def monitor_tick(self, host: str, now: float,
                     threshold: Optional[int] = None
                     ) -> Tuple[List[Alarm], int]:
        """Run one monitor check on ``host`` alone (the *naive* per-host
        path; :meth:`group_monitor_tick` is the coalesced one).  Returns
        ``(alarms, inner reply frame bytes)``."""
        key = self._key_for(host)
        frame = wire.encode_monitor_tick(now, threshold)
        replies, _reply_bytes, _sent = self._request(key, [(host, frame)])
        reply = self._reply_for(key, replies, host)
        kind = self._checked_decode(key, reply, wire.frame_type)
        if kind == wire.MSG_ERROR:
            detail = self._checked_decode(key, reply, wire.decode_error)
            raise AgentServerError(f"agent server on {host}: {detail}")
        return (self._checked_decode(key, reply, wire.decode_alarm_batch),
                len(reply))

    def monitor_state(self, host: str) -> MonitorSnapshot:
        """Pull ``host``'s worker monitor-state snapshot."""
        key = self._key_for(host)
        replies, _reply_bytes, _sent = self._request(
            key, [(host, wire.encode_monitor_pull())])
        reply = self._reply_for(key, replies, host)
        kind = self._checked_decode(key, reply, wire.frame_type)
        if kind == wire.MSG_ERROR:
            detail = self._checked_decode(key, reply, wire.decode_error)
            raise AgentServerError(f"agent server on {host}: {detail}")
        return self._checked_decode(key, reply, wire.decode_monitor_state)

    def ping(self, host: str) -> int:
        """Probe ``host``'s worker; returns its TIB record count."""
        return self.ping_state(host)[0]

    def ping_state(self, host: str) -> Tuple[int, int]:
        """Probe ``host``'s worker: ``(TIB records, monitor flows)``."""
        key = self._key_for(host)
        replies, _reply_bytes, _sent = self._request(
            key, [(host, wire.encode_ping())])
        reply = self._reply_for(key, replies, host)
        return self._checked_decode(key, reply, wire.decode_pong_state)

    def tier_stats(self, host: str) -> Dict[str, int]:
        """Pull ``host``'s two-tier stats off a liveness probe."""
        key = self._key_for(host)
        replies, _reply_bytes, _sent = self._request(
            key, [(host, wire.encode_ping())])
        reply = self._reply_for(key, replies, host)
        (total, monitor_flows, hot_records, hot_bytes, cold_records,
         cold_bytes) = self._checked_decode(key, reply,
                                            wire.decode_pong_tiers)
        return {"total_records": total, "monitor_flows": monitor_flows,
                "hot_records": hot_records, "hot_bytes": hot_bytes,
                "cold_records": cold_records, "cold_bytes": cold_bytes}

    def reset(self, host: str) -> None:
        """Clear ``host``'s worker state (TIB, monitor, pending alarms)."""
        self._post(self._key_for(host), [(host, wire.encode_reset())])

    def stall(self, host: str, seconds: float) -> None:
        """Make ``host``'s *group worker* sleep before serving its next
        entry (debug/test) - the whole connection stalls, which is the
        point: this is the stalled-socket fault."""
        self._post(self._key_for(host), [(host, wire.encode_sleep(seconds))])

    def kill(self, name: str) -> None:
        """Hard-kill the group worker serving ``name`` (failure
        injection); every host of the group dies with it."""
        key = self._key_for(name)
        self._procs[key].kill()  # lint: disable=R3 -- failure injection must not queue behind an in-flight exchange

    def alive(self, name: str) -> bool:
        """Whether the group worker serving ``name`` is running."""
        key = self._key_for(name)
        return self._procs[key].is_alive()  # lint: disable=R3 -- liveness probe is racy by contract

    def healthy(self, name: str) -> bool:
        """Whether ``name``'s group worker is serving: process alive and
        (when supervised) its restart circuit still closed."""
        key = self._group_of.get(name, name)
        if self.supervisor is not None and self.supervisor.circuit_open(key):
            return False
        process = self._procs.get(key)  # lint: disable=R3 -- health probe is racy by contract
        return process is not None and process.is_alive()

    # ---------------------------------------------------------- group client
    def group_monitor_tick(self, key: str, now: float,
                           threshold: Optional[int] = None
                           ) -> Tuple[List[Tuple[str, List[Alarm]]],
                                      int, int]:
        """Run one coalesced monitor sweep over every host of ``key``.

        One envelope carries the tick for all M hosts; the single reply
        envelope carries all M alarm batches.  Returns
        ``(per-host (host, alarms) in shard order, reply envelope bytes,
        request envelope bytes)``.
        """
        key = self._key_for(key)
        hosts = self.group_hosts(key)
        tick = wire.encode_monitor_tick(now, threshold)
        entries = [(host, tick) for host in hosts]
        replies, reply_bytes, sent = self._request(key, entries)
        per_host: List[Tuple[str, List[Alarm]]] = []
        for (host, _frame), (reply_host, reply) in zip(entries, replies):
            if reply_host != host:
                raise self._desynced(key, host, reply_host)
            kind = self._checked_decode(key, reply, wire.frame_type)
            if kind == wire.MSG_ERROR:
                detail = self._checked_decode(key, reply, wire.decode_error)
                raise AgentServerError(f"agent server on {host}: {detail}")
            per_host.append((host, self._checked_decode(
                key, reply, wire.decode_alarm_batch)))
        return per_host, reply_bytes, sent

    def group_query(self, key: str, query,
                    hosts: Optional[Sequence[str]] = None
                    ) -> Tuple[List[Tuple[str, QueryResult]], int, int]:
        """Run ``query`` on every host of ``key`` (or the given subset)
        through one coalesced envelope.

        Returns ``(per-host (host, result) in request order, reply
        envelope bytes, request envelope bytes)``; each result's
        ``wire_bytes`` is its measured inner reply frame length.  A
        host-level error reply fails the whole group exchange (the group
        is the failure domain in coalesced scatters).
        """
        key = self._key_for(key)
        targets = tuple(hosts) if hosts is not None else self.group_hosts(key)
        frame = wire.encode_query_request(query, None)
        entries = [(host, frame) for host in targets]
        replies, reply_bytes, sent = self._request(key, entries)
        results: List[Tuple[str, QueryResult]] = []
        for (host, _frame), (reply_host, reply) in zip(entries, replies):
            if reply_host != host:
                raise self._desynced(key, host, reply_host)
            kind = self._checked_decode(key, reply, wire.frame_type)
            if kind == wire.MSG_ERROR:
                detail = self._checked_decode(key, reply, wire.decode_error)
                raise AgentServerError(f"agent server on {host}: {detail}")
            results.append((host, self._checked_decode(
                key, reply, wire.decode_result, query)))
        return results, reply_bytes, sent

    def group_ping_state(self, key: str) -> Dict[str, Tuple[int, int]]:
        """Coalesced startup/sync barrier: one ping envelope for every
        host of ``key``; returns ``{host: (records, monitor flows)}``."""
        key = self._key_for(key)
        hosts = self.group_hosts(key)
        entries = [(host, wire.encode_ping()) for host in hosts]
        replies, _reply_bytes, _sent = self._request(key, entries)
        states: Dict[str, Tuple[int, int]] = {}
        for (host, _frame), (reply_host, reply) in zip(entries, replies):
            if reply_host != host:
                raise self._desynced(key, host, reply_host)
            states[host] = self._checked_decode(key, reply,
                                                wire.decode_pong_state)
        return states

    # ----------------------------------------------------------- stats hooks
    def note_restart(self, reseed_ms: float) -> None:
        """Supervisor hook: one group restart completed."""
        with self._stats_lock:
            self.stats.restarts += 1
            self.stats.reseed_ms += reseed_ms

    def note_circuit_open(self) -> None:
        """Supervisor hook: one group's restart budget was exhausted."""
        with self._stats_lock:
            self.stats.circuit_open += 1

    def note_mirror_detach(self, host: str) -> None:
        """Cluster hook: an ingest mirror for ``host`` detached."""
        with self._stats_lock:
            self.stats.mirror_detaches += 1

    def _count_envelope_received(self, nbytes: int) -> None:
        with self._stats_lock:
            self.stats.envelopes_received += 1
            self.stats.bytes_received += nbytes

    def _count_frames_received(self, count: int) -> None:
        with self._stats_lock:
            self.stats.frames_received += count

    def _count_decode_error(self) -> None:
        with self._stats_lock:
            self.stats.decode_errors += 1

    def reset_stats(self) -> None:
        """Zero the pool's frame/byte/envelope counters."""
        with self._stats_lock:
            self.stats.reset()

    # -------------------------------------------------------------- lifecycle
    def shutdown(self, join_timeout_s: float = 2.0) -> None:
        """Stop every group worker (politely, then by force), close the
        connections and the listener.  Idempotent; marks the pool closed
        *first* so a concurrent failure cannot trigger a supervised
        restart of a worker being torn down."""
        self._closed = True
        # _closed (set above) keeps supervision from respawning workers
        # underneath the teardown, so the unlocked iteration is safe.
        for key, conn in self._conns.items():  # lint: disable=R3 -- teardown runs after _closed is latched
            try:
                conn.send(wire.encode_shutdown())
            except (OSError, ValueError):
                pass
        for key, process in self._procs.items():  # lint: disable=R3 -- teardown runs after _closed is latched
            process.join(join_timeout_s)
            if process.is_alive():
                process.kill()
                process.join(join_timeout_s)
        for conn in self._conns.values():  # lint: disable=R3 -- teardown runs after _closed is latched
            conn.close("pool shut down")
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
            self._listener = None
        if self._sockdir is not None:
            sock_path = os.path.join(self._sockdir, "agents.sock")
            for path in (sock_path, self._sockdir):
                try:
                    (os.unlink if path == sock_path else os.rmdir)(path)
                except OSError:
                    pass
            self._sockdir = None

    def __enter__(self) -> "GroupAgentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------- internals
    def _conn_for(self, key: str) -> Tuple[_GroupConn, int]:
        conn = self._conns.get(key)  # lint: disable=R3 -- value swap is atomic; stale conns fail loudly on use
        if conn is None:
            raise AgentServerError(f"no agent server for {key}")
        return conn, self._epochs[key]

    def _chaos_send(self, key: str, conn: _GroupConn,
                    envelope: bytes, reseed: bool) -> None:
        if self.chaos is not None:
            for extra in self.chaos.before_send(self, key, envelope,
                                                reseed=reseed):
                try:
                    conn.send(extra)
                except (OSError, ValueError):
                    pass  # injected fault frames are best-effort

    def _post(self, key: str, entries: Sequence[Tuple[str, bytes]],
              supervise: bool = True, reseed: bool = False) -> int:
        """Send one fire-and-forget envelope (correlation id 0)."""
        conn, epoch = self._conn_for(key)
        envelope = wire.encode_group_batch(0, list(entries))
        self._chaos_send(key, conn, envelope, reseed)
        try:
            conn.send(envelope)
        except (OSError, ValueError) as error:
            raise self._worker_failed(
                key, epoch,
                f"agent server group {key} unreachable: "
                f"{type(error).__name__}: {error}",
                supervise=supervise) from error
        with self._stats_lock:
            self.stats.envelopes_sent += 1
            self.stats.frames_sent += len(entries)
            self.stats.bytes_sent += len(envelope)
        return len(envelope)

    def _request(self, key: str, entries: Sequence[Tuple[str, bytes]],
                 timeout_s=_UNSET, supervise: bool = True,
                 reseed: bool = False
                 ) -> Tuple[List[Tuple[str, bytes]], int, int]:
        """One correlated envelope exchange; returns
        ``(replies, reply envelope bytes, request envelope bytes)``."""
        conn, epoch = self._conn_for(key)
        timeout = self.reply_timeout_s if timeout_s is _UNSET else timeout_s
        try:
            waiter = conn.register()
        except AgentServerError as error:
            # The connection already died (EOF noticed by the reader with
            # no exchange in flight); surface it like a fresh failure so
            # supervision still kicks in.
            raise self._worker_failed(key, epoch, str(error),
                                      supervise=supervise) from error
        envelope = wire.encode_group_batch(waiter.cid, list(entries))
        self._chaos_send(key, conn, envelope, reseed)
        try:
            conn.send(envelope)
        except (OSError, ValueError) as error:
            conn.discard(waiter.cid)
            raise self._worker_failed(
                key, epoch,
                f"agent server group {key} unreachable: "
                f"{type(error).__name__}: {error}",
                supervise=supervise) from error
        with self._stats_lock:
            self.stats.envelopes_sent += 1
            self.stats.frames_sent += len(entries)
            self.stats.bytes_sent += len(envelope)
        if not waiter.event.wait(timeout):
            # The reply would still arrive eventually and desynchronise
            # nothing (it carries its cid) - but a wedged worker holds M
            # hosts hostage; declare the whole group dead like a timed-out
            # pipe worker.
            conn.discard(waiter.cid)
            self._kill_group_process(key)
            conn.close(f"group worker {key} timed out")
            raise self._worker_failed(
                key, epoch,
                f"agent server group {key} did not reply within "
                f"{timeout}s; worker killed", supervise=supervise)
        if waiter.error is not None:
            self._kill_group_process(key)
            raise self._worker_failed(key, epoch, waiter.error,
                                      supervise=supervise)
        assert waiter.replies is not None
        if len(waiter.replies) != len(entries):
            self._kill_group_process(key)
            conn.close(f"group worker {key} reply cardinality mismatch")
            raise self._worker_failed(
                key, epoch,
                f"agent server group {key} answered {len(waiter.replies)} "
                f"of {len(entries)} entries; worker killed",
                supervise=supervise)
        return waiter.replies, waiter.reply_bytes, len(envelope)

    def _reply_for(self, key: str, replies: List[Tuple[str, bytes]],
                   host: str) -> bytes:
        reply_host, reply = replies[0]
        if reply_host != host:
            raise self._desynced(key, host, reply_host)
        return reply

    def _desynced(self, key: str, host: str,
                  reply_host: str) -> AgentServerError:
        self._kill_group_process(key)
        return self._worker_failed(
            key, self._epochs[key],
            f"agent server group {key} answered for {reply_host} where "
            f"{host} was asked; worker killed")

    def _kill_group_process(self, key: str) -> None:
        process = self._procs.get(key)  # lint: disable=R3 -- kill-on-desync must not queue behind supervision
        if process is not None and process.is_alive():
            process.kill()

    def _worker_failed(self, key: str, epoch: int, detail: str,
                       supervise: bool = True) -> AgentServerError:
        """Handle a failed group exchange: hand the *group* to the
        supervisor (if any) and return the error for the caller to raise.

        Concurrent exchanges multiplex on one connection, so one dead
        worker fails many threads at once; the epoch compare under the
        group lock makes the first of them drive the restart and the
        rest just report their lost exchange (the restarted worker would
        otherwise be killed and re-seeded once per failed request).
        """
        if supervise and self.supervisor is not None and not self._closed:
            with self._locks[key]:
                if self._epochs[key] == epoch:
                    self.supervisor.handle_failure(self, key, detail)
        return AgentServerError(detail)

    def _checked_decode(self, key: str, reply: bytes, decoder, *args):
        """Decode an inner reply frame, treating corruption as group
        failure (the multiplexed stream is desynchronised; nothing later
        on it can be trusted)."""
        try:
            return decoder(reply, *args)
        except wire.WireError as error:
            self._count_decode_error()
            self._kill_group_process(key)
            conn = self._conns.get(key)  # lint: disable=R3 -- teardown of a worker already being killed
            if conn is not None:
                conn.close(f"group worker {key} sent an undecodable reply")
            raise self._worker_failed(
                key, self._epochs[key],
                f"agent server group {key} sent an undecodable reply; "
                f"worker killed: {error}") from error

    # ------------------------------------------------------ supervisor hooks
    def _respawn(self, key: str) -> None:  # holds: _locks[key]
        """Supervisor hook: replace ``key``'s worker with a fresh process
        over a fresh connection (restart-over-reconnect)."""
        self._discard(key)
        self._spawn(key)
        with self._stats_lock:
            self.stats.reconnects += 1

    def _discard(self, key: str) -> None:  # holds: _locks[key]
        """Kill ``key``'s worker and close its connection (no
        replacement); also the cleanup for a failed restart attempt."""
        conn = self._conns.get(key)
        if conn is not None:
            conn.close(f"group worker {key} discarded")
        process = self._procs.get(key)
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join(5.0)

    def _reseed(self, key: str, seed, timeout_s: float = 30.0) -> None:
        """Supervisor hook: replay ``seed`` (a
        :class:`~repro.core.supervisor.GroupSeed`, or anything without a
        ``seeds`` dict to restart the group empty) into ``key``'s fresh
        worker over the new connection, then barrier on a coalesced ping.

        Per-host replay order matches the pipe pool exactly - retention
        cap, record batches, monitor state, ping - but coalesced:
        retention caps for the whole group ride one envelope, record
        chunks batch across hosts up to the ingest chunk size, and one
        ping envelope barriers every host at once.  A short count on any
        host is a barrier miss failing the whole attempt.
        """
        key = self._key_for(key)
        if self.chaos is not None:
            self.chaos.begin_reseed(key)
        hosts = self.group_hosts(key)
        seeds: Dict[str, WorkerSeed] = dict(getattr(seed, "seeds", None)
                                            or {})
        retention = [(host, wire.encode_retention(*seeds[host].retention))
                     for host in hosts
                     if host in seeds and seeds[host].retention is not None]
        if retention:
            self._post(key, retention, supervise=False, reseed=True)
        pending: List[Tuple[str, bytes]] = []
        pending_records = 0
        chunk = self.INGEST_CHUNK_RECORDS
        for host in hosts:
            worker_seed = seeds.get(host)
            if worker_seed is None:
                continue
            records = worker_seed.records or ()
            for start in range(0, len(records), chunk):
                batch = records[start:start + chunk]
                pending.append((host, wire.encode_record_batch(batch)))
                pending_records += len(batch)
                if pending_records >= chunk:
                    self._post(key, pending, supervise=False, reseed=True)
                    pending, pending_records = [], 0
            if worker_seed.monitor is not None:
                pending.append(
                    (host, wire.encode_monitor_state(worker_seed.monitor)))
        if pending:
            self._post(key, pending, supervise=False, reseed=True)
        entries = [(host, wire.encode_ping()) for host in hosts]
        replies, _reply_bytes, _sent = self._request(
            key, entries, timeout_s=timeout_s, supervise=False, reseed=True)
        for (host, _frame), (reply_host, reply) in zip(entries, replies):
            if reply_host != host:
                raise AgentServerError(
                    f"group {key} re-seed barrier desync: {reply_host} "
                    f"answered for {host}")
            try:
                applied, monitor_flows = wire.decode_pong_state(reply)
            except wire.WireError as error:
                raise AgentServerError(
                    f"group {key} re-seed barrier pong for {host} "
                    f"undecodable: {error}") from error
            worker_seed = seeds.get(host) or WorkerSeed()
            expected_records = len(worker_seed.records or ())
            expected_flows = (len(worker_seed.monitor.flows)
                              if worker_seed.monitor is not None else 0)
            if applied < expected_records or monitor_flows < expected_flows:
                raise AgentServerError(
                    f"group {key} re-seed barrier miss on {host}: holds "
                    f"{applied}/{expected_records} records and "
                    f"{monitor_flows}/{expected_flows} monitor flows")


class SocketTransport(ModelTransport):
    """The model transport bound to a group agent pool.

    The socket-mode twin of
    :class:`~repro.core.agentserver.ProcessTransport`: the executor's
    request/response legs are priced by the same
    :class:`~repro.core.rpc.RpcChannel` model (so modelled response times
    stay comparable across modes), the *sizes* are the real encoded
    envelope lengths the cluster measured, and the per-leaf work is the
    real multiplexed socket exchange - its cost shows up in the measured
    ``exec_s``/``wall_s``, not the model.
    """

    def __init__(self, pool: GroupAgentPool,
                 channel: Optional[RpcChannel] = None) -> None:
        super().__init__(channel)
        self.pool = pool

    def reset_stats(self) -> None:
        """Zero the channel counters and the pool's envelope counters."""
        self.channel.reset()
        self.pool.reset_stats()
