"""Trajectory memory, trajectory cache and end-to-end path construction.

Figure 2 of the paper describes the edge pipeline that this module
implements:

1. the modified OVS extracts a packet's link-ID samples and updates a
   *per-path flow record* in the **trajectory memory**, keyed by
   ``(flow ID, link IDs)``;
2. like NetFlow, a record is evicted when a FIN/RST is seen or after an idle
   timeout (5 seconds by default);
3. the **trajectory construction** sub-module turns the record's raw link IDs
   into an end-to-end switch path, consulting a **trajectory cache** keyed by
   ``(srcIP, link IDs)`` before falling back to the topology-based
   reconstruction;
4. the finished ``<flow ID, path, stime, etime, #bytes, #pkts>`` record is
   written to the TIB.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.packet import FlowId
from repro.storage.records import PathFlowRecord, TrajectoryMemoryRecord
from repro.tracing.reconstruct import (PathReconstructor, ReconstructionError)

#: Default idle timeout after which a trajectory-memory record is evicted.
DEFAULT_IDLE_TIMEOUT_S = 5.0

#: Default capacity of the trajectory cache (entries).
DEFAULT_CACHE_ENTRIES = 4096


class TrajectoryCache:
    """An LRU cache mapping ``(src_host, link IDs)`` to a constructed path.

    The cache exists because many flows from the same source traverse the
    same sampled links; hitting the cache avoids re-running the topology
    search for every evicted record.  Its effectiveness is quantified by the
    cache ablation benchmark.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_ENTRIES) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, Tuple[int, ...]], Tuple[str, ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, src_host: str,
            link_ids: Sequence[int]) -> Optional[Tuple[str, ...]]:
        """Look up a cached path; updates hit/miss counters."""
        key = (src_host, tuple(link_ids))
        path = self._entries.get(key)
        if path is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return path

    def put(self, src_host: str, link_ids: Sequence[int],
            path: Sequence[str]) -> None:
        """Insert a constructed path."""
        key = (src_host, tuple(link_ids))
        self._entries[key] = tuple(path)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def estimated_bytes(self) -> int:
        """Rough memory footprint of the cache."""
        total = 0
        for (src, link_ids), path in self._entries.items():
            total += len(src) + 8 * len(link_ids)
            total += sum(len(node) + 2 for node in path)
        return total


class TrajectoryMemory:
    """Per-path flow records awaiting eviction to the TIB.

    Records are kept in **recency order** (a touched record moves to the
    end), so the periodic idle-eviction scan walks only the idle prefix and
    stops at the first record still fresh - O(evicted) per flush instead of
    a full O(n) scan.  The early stop is exact as long as packet
    timestamps arrive non-decreasing (the fabric delivers in time order);
    should an out-of-order timestamp ever be observed, the memory notices
    and falls back to the exhaustive scan, so the eviction *set* is always
    identical to the full scan's.

    Args:
        idle_timeout: seconds of inactivity after which a record is evicted.
    """

    def __init__(self, idle_timeout: float = DEFAULT_IDLE_TIMEOUT_S) -> None:
        self.idle_timeout = idle_timeout
        self._records: "OrderedDict[Tuple[FlowId, Tuple[int, ...]], TrajectoryMemoryRecord]" = OrderedDict()
        self.lookups = 0
        # Recency order equals etime order only while touch timestamps
        # never go backwards; flipped (permanently) on the first regression.
        self._monotonic = True
        self._last_when = float("-inf")

    # ----------------------------------------------------------------- writes
    def update(self, flow_id: FlowId, link_ids: Sequence[int], nbytes: int,
               when: float, terminate: bool = False
               ) -> Optional[TrajectoryMemoryRecord]:
        """Fold one packet into the memory.

        This is the per-packet fast path: the record is keyed directly by
        the (hashable) ``FlowId`` plus the sample tuple - no string key is
        derived and, for a resident record, no object is allocated.

        Args:
            flow_id: the packet's flow.
            link_ids: the packet's samples in traversal order.
            nbytes: payload bytes.
            when: arrival time.
            terminate: the packet carried FIN or RST; the record is evicted
                immediately (and returned).

        Returns:
            The evicted record when ``terminate`` is set, else ``None``.
        """
        samples = link_ids if type(link_ids) is tuple else tuple(link_ids)
        key = (flow_id, samples)
        self.lookups += 1
        if when < self._last_when:
            self._monotonic = False
        else:
            self._last_when = when
        records = self._records
        record = records.get(key)
        if record is None:
            record = TrajectoryMemoryRecord(
                flow_id=flow_id, link_ids=samples, stime=when,
                etime=when, bytes=0, pkts=0, src_host=flow_id.src_ip)
            records[key] = record  # new keys land at the end already
        else:
            records.move_to_end(key)  # touched: most recent again
        record.bytes += nbytes
        record.pkts += 1
        if when < record.stime:
            record.stime = when
        if when > record.etime:
            record.etime = when
        if terminate:
            del records[key]
            return record
        return None

    def evict_idle(self, now: float) -> List[TrajectoryMemoryRecord]:
        """Evict records idle for longer than the timeout.

        Walks the recency order from the oldest end and stops at the first
        record still fresh - records behind it were touched even later, so
        with monotone timestamps none of them can be idle.  The one-time
        fallback (timestamps observed going backwards) scans exhaustively;
        either way the eviction set equals the full scan's.
        """
        records = self._records
        timeout = self.idle_timeout
        if not self._monotonic:
            evicted = []
            for key, record in list(records.items()):
                if now - record.etime >= timeout:
                    evicted.append(record)
                    del records[key]
            return evicted
        evicted = []
        while records:
            key = next(iter(records))
            record = records[key]
            if now - record.etime < timeout:
                break
            del records[key]
            evicted.append(record)
        return evicted

    def evict_all(self) -> List[TrajectoryMemoryRecord]:
        """Evict every record (end of experiment / shutdown)."""
        evicted = list(self._records.values())
        self._records.clear()
        return evicted

    # ------------------------------------------------------------------ reads
    def __len__(self) -> int:
        return len(self._records)

    def live_records(self) -> List[TrajectoryMemoryRecord]:
        """Records currently resident (for queries needing fresh data)."""
        return list(self._records.values())

    def estimated_bytes(self) -> int:
        """Rough memory footprint."""
        total = 0
        for record in self._records.values():
            total += 64 + 8 * len(record.link_ids)
        return total


class TrajectoryConstructor:
    """Turns raw trajectory-memory records into TIB path records.

    Args:
        reconstructor: the topology-backed path reconstructor.
        cache: the trajectory cache (a private one is created if omitted).
        on_invalid: callback invoked with (record, error) whenever a record's
            samples are inconsistent with the topology - the signal used to
            detect incorrect header modification (Section 2.4).
    """

    def __init__(self, reconstructor: PathReconstructor,
                 cache: Optional[TrajectoryCache] = None,
                 on_invalid: Optional[Callable[[TrajectoryMemoryRecord,
                                                ReconstructionError],
                                               None]] = None) -> None:
        self.reconstructor = reconstructor
        # Note: an empty cache is falsy (len() == 0), so test against None.
        self.cache = cache if cache is not None else TrajectoryCache()
        self.on_invalid = on_invalid
        self.constructed = 0
        self.invalid = 0

    def construct(self, record: TrajectoryMemoryRecord
                  ) -> Optional[PathFlowRecord]:
        """Construct the TIB record for one evicted memory record.

        Returns ``None`` (and reports via ``on_invalid``) when the samples
        cannot be mapped onto any feasible path.
        """
        src = record.flow_id.src_ip
        dst = record.flow_id.dst_ip
        path = self.cache.get(src, record.link_ids)
        if path is None:
            try:
                reconstructed = self.reconstructor.reconstruct(
                    src, dst, list(record.link_ids))
            except ReconstructionError as error:
                self.invalid += 1
                if self.on_invalid is not None:
                    self.on_invalid(record, error)
                return None
            path = tuple(reconstructed.path)
            self.cache.put(src, record.link_ids, path)
        self.constructed += 1
        return PathFlowRecord(
            flow_id=record.flow_id, path=tuple(path), stime=record.stime,
            etime=record.etime, bytes=record.bytes, pkts=record.pkts)
