"""The PathDump end-host agent (the "server stack" of Section 3.2).

One agent runs on every end host and glues together the edge components:

* the :class:`~repro.core.vswitch.EdgeVSwitch` fast path (tag extraction and
  trajectory-memory updates),
* the :class:`~repro.core.trajectory.TrajectoryMemory`, with NetFlow-style
  eviction into the TIB via the
  :class:`~repro.core.trajectory.TrajectoryConstructor`,
* the :class:`~repro.core.tib.Tib` storage and query engine,
* the :class:`~repro.core.monitor.ActiveMonitor` TCP health monitor,
* the host API of Table 1 (``getFlows``, ``getPaths``, ``getCount``,
  ``getDuration``, ``getPoorTCPFlows``, ``Alarm``), answered for *local*
  flows (flows whose destination is this host),
* installed queries, executed periodically or on packet arrival.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.alarms import INVALID_TRAJECTORY, Alarm
from repro.core.monitor import ActiveMonitor
from repro.core.query import Query, QueryEngine, QueryResult
from repro.core.tib import (Flow, LinkId, Tib, TimeRange, link_matches,
                            normalise_time_range, record_in_range)
from repro.core.trajectory import (TrajectoryCache, TrajectoryConstructor,
                                   TrajectoryMemory)
from repro.core.vswitch import EdgeVSwitch
from repro.network.packet import FlowId, Packet
from repro.storage.archive import RetentionPolicy
from repro.storage.records import PathFlowRecord
from repro.tracing.reconstruct import PathReconstructor
from repro.topology.graph import Topology
from repro.topology.linkid import LinkIdAssignment


@dataclass
class InstalledQuery:
    """A query installed on this agent by the controller."""

    query: Query
    period: Optional[float]
    last_run: float = float("-inf")
    runs: int = 0
    results: List[QueryResult] = field(default_factory=list)


class PathDumpAgent:
    """The PathDump instance of one end host.

    Args:
        host: the host name.
        topo: the static topology view (ground truth).
        assignment: the fabric-wide link ID assignment.
        alarm_sink: callable receiving alarms (wired to the controller bus).
        reconstructor: optional shared path reconstructor (one per cluster
            avoids recomputing shortest paths per agent).
        cache: optional shared trajectory cache.
        idle_timeout: trajectory-memory idle eviction timeout (seconds).
        retention: optional hot-tier bounds for the TIB; when set the TIB
            runs two-tiered (bounded hot memory, cold archive - see
            :mod:`repro.storage.archive`).
    """

    def __init__(self, host: str, topo: Topology,
                 assignment: LinkIdAssignment,
                 alarm_sink: Optional[Callable[[Alarm], None]] = None,
                 reconstructor: Optional[PathReconstructor] = None,
                 cache: Optional[TrajectoryCache] = None,
                 idle_timeout: float = 5.0,
                 retention: Optional["RetentionPolicy"] = None) -> None:
        self.host = host
        self.topo = topo
        self.alarm_sink = alarm_sink
        self.tib = Tib(host, retention=retention)
        self.trajectory_memory = TrajectoryMemory(idle_timeout=idle_timeout)
        self.constructor = TrajectoryConstructor(
            reconstructor or PathReconstructor(topo, assignment),
            cache=cache, on_invalid=self._on_invalid_trajectory)
        self.vswitch = EdgeVSwitch(host, self.trajectory_memory)
        self.monitor = ActiveMonitor(host, alarm_sink=self._forward_alarm)
        self.engine = QueryEngine()
        self.installed: Dict[str, InstalledQuery] = {}
        self.alarms_raised: List[Alarm] = []
        #: Optional mirror for TIB writes: every batch of records stored in
        #: the local TIB is also handed to this callable.  The cluster's
        #: process mode uses it to stream encoded record batches to the
        #: host's agent-server worker, keeping the worker TIB in sync with
        #: every ingest path (fabric deliveries, flow outcomes, direct
        #: inserts through the agent).
        self.record_sink: Optional[Callable[[Sequence[PathFlowRecord]],
                                            None]] = None

    # --------------------------------------------------------------- ingest
    def on_packet_delivered(self, host: str, packet: Packet,
                            when: float) -> None:
        """Fabric delivery callback: run the packet through the edge stack."""
        if host != self.host:
            raise ValueError(f"packet for {host} delivered to agent "
                             f"{self.host}")
        self.vswitch.receive(packet, when)
        self._export(self.vswitch.drain_evictions())
        self._run_event_driven(when)

    def ingest_path_record(self, record: PathFlowRecord) -> None:
        """Directly insert a finished per-path flow record into the TIB.

        Used by the flow-level traffic simulator, which produces aggregate
        per-path statistics rather than individual packets.  The caller's
        record is copied on insert (never mutated or retained).
        """
        self.tib.add_record(record)
        if self.record_sink is not None:
            self.record_sink((record,))

    def flush(self, now: Optional[float] = None) -> int:
        """Evict trajectory-memory records into the TIB.

        Args:
            now: evict only records idle since ``now``; evict everything when
                omitted (end of an experiment).

        Returns:
            Number of records exported.
        """
        if now is None:
            evicted = self.trajectory_memory.evict_all()
        else:
            evicted = self.trajectory_memory.evict_idle(now)
        return self._export(evicted)

    def _export(self, evicted: Sequence) -> int:
        construct = self.constructor.construct
        constructed = [record for record in map(construct, evicted)
                       if record is not None]
        if not constructed:
            return 0
        sink = self.record_sink
        if sink is None:
            # The constructor built these records solely for this TIB:
            # transfer ownership instead of copy-on-insert (the eviction
            # fast path).
            return self.tib.add_records(constructed, adopt=True)
        # With a mirror attached, the local TIB must be written FIRST and
        # by copy: first, so a supervised worker restart triggered by the
        # mirror delivery re-seeds from local state that already includes
        # this batch (the sink then skips it instead of double-counting);
        # by copy, because adopted records can be merged in place during
        # the add (same-key records within one batch) and the mirror must
        # ship the pre-merge records the worker will re-play identically.
        count = self.tib.add_records(constructed)
        sink(constructed)
        return count

    def _on_invalid_trajectory(self, memory_record, error) -> None:
        """An extracted trajectory is inconsistent with the topology."""
        self.alarm(memory_record.flow_id, INVALID_TRAJECTORY, [],
                   detail=str(error))

    # ------------------------------------------------------------ host API
    def records(self, flow_id: Optional[FlowId] = None,
                link: Optional[LinkId] = None,
                time_range: Optional[TimeRange] = None,
                include_live: bool = False) -> List[PathFlowRecord]:
        """All matching per-path records (TIB plus, optionally, live memory).

        ``include_live`` corresponds to the IPC lookup of the trajectory
        memory that alert-driven debugging uses for the freshest data.
        """
        results = self.tib.records(flow_id=flow_id, link=link,
                                   time_range=time_range)
        if include_live:
            window = normalise_time_range(time_range)
            for memory_record in self.trajectory_memory.live_records():
                if flow_id is not None and memory_record.flow_id != flow_id:
                    continue
                record = self.constructor.construct(memory_record)
                if record is None:
                    continue
                if not record_in_range(record, window):
                    continue
                if not link_matches(record, link):
                    continue
                results.append(record)
        return results

    def get_flows(self, link: Optional[LinkId] = None,
                  time_range: Optional[TimeRange] = None,
                  include_live: bool = False) -> List[Flow]:
        """``getFlows(linkID, timeRange)`` over local flows."""
        flows: List[Flow] = []
        seen = set()
        for record in self.records(link=link, time_range=time_range,
                                   include_live=include_live):
            key = (record.flow_id, record.path)
            if key not in seen:
                seen.add(key)
                flows.append((record.flow_id, record.path))
        return flows

    def get_paths(self, flow_id: FlowId, link: Optional[LinkId] = None,
                  time_range: Optional[TimeRange] = None,
                  include_live: bool = False) -> List[Tuple[str, ...]]:
        """``getPaths(flowID, linkID, timeRange)``."""
        paths: List[Tuple[str, ...]] = []
        seen = set()
        for record in self.records(flow_id=flow_id, link=link,
                                   time_range=time_range,
                                   include_live=include_live):
            if record.path not in seen:
                seen.add(record.path)
                paths.append(record.path)
        return paths

    def get_count(self, flow: Union[Flow, FlowId],
                  time_range: Optional[TimeRange] = None,
                  include_live: bool = False) -> Tuple[int, int]:
        """``getCount(Flow, timeRange)``: (bytes, packets)."""
        flow_id, path = self._split_flow(flow)
        nbytes = npkts = 0
        for record in self.records(flow_id=flow_id, time_range=time_range,
                                   include_live=include_live):
            if path is not None and record.path != path:
                continue
            nbytes += record.bytes
            npkts += record.pkts
        return nbytes, npkts

    def get_duration(self, flow: Union[Flow, FlowId],
                     time_range: Optional[TimeRange] = None,
                     include_live: bool = False) -> float:
        """``getDuration(Flow, timeRange)``.

        Record extents are clamped to the requested window (see
        :meth:`repro.core.tib.Tib.get_duration`): overlap qualifies a
        record, but only its in-window portion counts.
        """
        flow_id, path = self._split_flow(flow)
        start, end = normalise_time_range(time_range)
        stimes: List[float] = []
        etimes: List[float] = []
        for record in self.records(flow_id=flow_id, time_range=time_range,
                                   include_live=include_live):
            if path is not None and record.path != path:
                continue
            stime = record.stime if start is None else max(record.stime, start)
            etime = record.etime if end is None else min(record.etime, end)
            stimes.append(stime)
            etimes.append(etime)
        if not stimes:
            return 0.0
        return max(etimes) - min(stimes)

    def get_poor_tcp_flows(self, threshold: Optional[int] = None
                           ) -> List[FlowId]:
        """``getPoorTCPFlows(Threshold)``."""
        return self.monitor.get_poor_tcp_flows(threshold)

    def alarm(self, flow_id: FlowId, reason: str,
              paths: Sequence[Tuple[str, ...]],
              detail: str = "", when: float = 0.0) -> Alarm:
        """``Alarm(flowID, Reason, Paths)``: raise an alarm to the controller."""
        alarm = Alarm(flow_id=flow_id, reason=reason,
                      paths=[tuple(p) for p in paths], host=self.host,
                      time=when, detail=detail)
        self.alarms_raised.append(alarm)
        self._forward_alarm(alarm)
        return alarm

    def _forward_alarm(self, alarm: Alarm) -> None:
        if self.alarm_sink is not None:
            self.alarm_sink(alarm)

    # -------------------------------------------------------------- queries
    def execute_query(self, query: Query) -> QueryResult:
        """Execute a query shipped by the controller."""
        return self.engine.execute(self, query)

    def install_query(self, query: Query,
                      period: Optional[float] = None) -> None:
        """Install a query for periodic or event-driven execution."""
        self.installed[query.name] = InstalledQuery(
            query=query, period=period if period is not None else query.period)

    def uninstall_query(self, name: str) -> bool:
        """Remove an installed query; returns whether it existed."""
        return self.installed.pop(name, None) is not None

    def run_installed(self, now: float) -> List[QueryResult]:
        """Run installed periodic queries whose period has elapsed."""
        results = []
        for installed in self.installed.values():
            if installed.period is None:
                continue
            if now - installed.last_run + 1e-12 < installed.period:
                continue
            result = self.engine.execute(self, installed.query)
            installed.last_run = now
            installed.runs += 1
            installed.results.append(result)
            results.append(result)
        return results

    def _run_event_driven(self, now: float) -> None:
        """Run event-driven installed queries (no period) on packet arrival."""
        for installed in self.installed.values():
            if installed.period is not None:
                continue
            result = self.engine.execute(self, installed.query)
            installed.last_run = now
            installed.runs += 1
            installed.results.append(result)

    def run_monitor(self, now: float,
                    threshold: Optional[int] = None) -> List[Alarm]:
        """Run one periodic TCP health check."""
        return self.monitor.run_check(now, threshold)

    # ------------------------------------------------------------ accounting
    def reset_stats(self) -> None:
        """Zero this agent's per-experiment counters: the storage engine's
        instrumentation and the monitor's alert counters/latches."""
        self.tib.reset_stats()
        self.monitor.reset_stats()

    def configure_retention(self, max_records: Optional[int] = None,
                            max_bytes: Optional[int] = None) -> None:
        """(Re)configure the TIB's hot-tier bounds (see
        :meth:`repro.core.tib.Tib.configure_retention`)."""
        self.tib.configure_retention(max_records=max_records,
                                     max_bytes=max_bytes)

    def memory_footprint_bytes(self) -> Dict[str, int]:
        """Approximate RAM/disk usage of the agent's components.

        ``tib`` is the hot (in-memory) tier; ``tib_archive`` is the cold
        archive's measured log size (the "disk" tier - 0 when unbounded).
        """
        return {
            "trajectory_memory": self.trajectory_memory.estimated_bytes(),
            "trajectory_cache": self.constructor.cache.estimated_bytes(),
            "tib": self.tib.estimated_bytes(),
            "tib_archive": self.tib.archive_bytes(),
        }

    @staticmethod
    def _split_flow(flow: Union[Flow, FlowId]
                    ) -> Tuple[FlowId, Optional[Tuple[str, ...]]]:
        if isinstance(flow, FlowId):
            return flow, None
        flow_id, path = flow
        return flow_id, tuple(path) if path is not None else None
