"""The edge virtual switch: trajectory extraction on the packet fast path.

In the original system this is "about 150 lines of C" added to Open vSwitch
running on DPDK: for every arriving packet it extracts the link-ID samples,
strips them from the header (they are irrelevant to the upper stack), and
creates/updates the per-path flow record in the trajectory memory.  The
Figure 13 evaluation shows the addition costs at most ~4 % forwarding
throughput versus the vanilla vSwitch.

:class:`EdgeVSwitch` is the Python counterpart.  It can run in two modes so
the same benchmark can be reproduced:

* ``pathdump_enabled=True`` - full extraction + trajectory-memory update;
* ``pathdump_enabled=False`` - "vanilla vSwitch": the packet is only counted
  and forwarded to the upper stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.network.packet import Packet
from repro.core.trajectory import TrajectoryMemory


@dataclass
class VSwitchStats:
    """Forwarding-path counters of the edge vswitch."""

    packets: int = 0
    bytes: int = 0
    tagged_packets: int = 0
    samples_extracted: int = 0
    records_terminated: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.packets = 0
        self.bytes = 0
        self.tagged_packets = 0
        self.samples_extracted = 0
        self.records_terminated = 0


class EdgeVSwitch:
    """The per-host edge datapath.

    Args:
        host: the owning end host.
        trajectory_memory: where per-path flow records are maintained.
        pathdump_enabled: when ``False`` the vswitch behaves like the vanilla
            datapath (no extraction, no record updates); used as the baseline
            in the Figure 13 throughput comparison.
        upper_stack: optional callback receiving the stripped packet (models
            delivery to the transport layer / application).
    """

    def __init__(self, host: str, trajectory_memory: TrajectoryMemory,
                 pathdump_enabled: bool = True,
                 upper_stack: Optional[Callable[[Packet, float], None]] = None
                 ) -> None:
        self.host = host
        self.trajectory_memory = trajectory_memory
        self.pathdump_enabled = pathdump_enabled
        self.upper_stack = upper_stack
        self.stats = VSwitchStats()
        #: evicted-by-FIN/RST records produced on the fast path, drained by
        #: the agent and handed to trajectory construction.
        self.pending_evictions: List = []

    def receive(self, packet: Packet, when: float) -> Sequence[int]:
        """Process one arriving packet.

        The PathDump branch is the "150 lines of C" fast path: the sample
        extraction and header strip are inlined (no helper calls, no
        intermediate lists beyond the sample tuple itself) so the per-packet
        added cost over the vanilla datapath stays minimal.

        Returns:
            The extracted samples (empty when PathDump is disabled), mainly
            for tests; the real consumers are the trajectory memory and the
            upper stack callback.
        """
        stats = self.stats
        stats.packets += 1
        stats.bytes += packet.size

        samples: Tuple[int, ...] = ()
        if self.pathdump_enabled:
            # Inlined CherryPickTagger.samples_in_traversal_order: the DSCP
            # sample (if any) was recorded first; VLAN tags were pushed onto
            # the front of the stack, so the stack is read back to front.
            stack = packet.vlan_stack
            dscp = packet.dscp
            if dscp is not None:
                samples = (dscp, *(tag.vid for tag in reversed(stack)))
                stats.tagged_packets += 1
            elif stack:
                samples = tuple(tag.vid for tag in reversed(stack))
                stats.tagged_packets += 1
            stats.samples_extracted += len(samples)
            # Strip trajectory state before the packet goes up the stack.
            packet.vlan_stack = []
            packet.dscp = None
            evicted = self.trajectory_memory.update(
                packet.flow, samples, packet.size, when,
                terminate=packet.flags.terminates_flow)
            if evicted is not None:
                stats.records_terminated += 1
                self.pending_evictions.append(evicted)

        if self.upper_stack is not None:
            self.upper_stack(packet, when)
        return samples

    def drain_evictions(self) -> List:
        """Return and clear the FIN/RST-evicted records."""
        evicted = self.pending_evictions
        self.pending_evictions = []
        return evicted

    def throughput_counters(self) -> Tuple[int, int]:
        """(packets, bytes) processed so far."""
        return self.stats.packets, self.stats.bytes
