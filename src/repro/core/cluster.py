"""A cluster of PathDump agents plus the distributed query executor.

The TIB is "maintained in a distributed fashion (across all servers in the
datacenter)"; the controller collects results either with a *direct query*
(ask every host, aggregate everything at the controller) or a *multi-level
query* along an aggregation tree where intermediate hosts merge their
children's partial results (Section 3.2).  Figures 11 and 12 compare the two
mechanisms on response time and generated network traffic.

:class:`QueryCluster` owns the per-host agents, wires them to the fabric (or
to the flow-level simulator), and maps both query mechanisms onto the
:class:`~repro.core.executor.ScatterGatherExecutor`:

* a direct query is a one-level scatter plan (controller -> every host); a
  multi-level query maps the aggregation tree onto the plan one to one,
  with the query and the subtree description *batched* into a single
  request message per child;
* per-host query execution and per-node aggregation costs are *measured*
  (wall-clock) on the real in-memory TIBs, and partial results stream into
  each node's accumulator as they arrive - no full-level barrier;
* message latencies and byte counts come from the pluggable
  :class:`~repro.core.executor.Transport` (by default the
  :class:`~repro.core.rpc.RpcChannel` latency/bandwidth model), and the
  modelled response time combines them with the measured execution/merge
  times over the plan tree - reproducing the scaling behaviour the paper
  reports;
* hosts that are dead, time out or lose messages surface as structured
  warnings with ``partial=True`` instead of failing the whole query.

The cluster defaults to the executor's deterministic *serial* mode so the
figure benchmarks are reproducible run to run; pass ``mode="concurrent"``
(or call :meth:`QueryCluster.configure_executor`) for real thread-pool
fan-out, or ``mode="process"`` to move every host's TIB into its own
agent-server worker process (:mod:`repro.core.agentserver`): ingest streams
encoded record batches over a pipe, queries travel as encoded
query+subtree-spec frames, and CPU-bound scatters escape the GIL.  All
modes merge in the same canonical order, so they produce byte-identical
query payloads.

Process mode also carries the paper's *event plane* (Sections 3.2 and 4):
transfer observations stream to the workers alongside record batches (the
monitor's ``observation_sink`` mirror), :meth:`QueryCluster.run_monitors`
scatters monitor-tick frames whose replies are alarm batches, and alarms
raised by worker-side query handlers piggyback on query replies - all
decoded into the controller's :class:`AlarmBus`, so event-driven debugging
applications run unchanged in every mode and see identical alarm streams.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core import wire
from repro.core.agent import PathDumpAgent
from repro.core.aggregation import PAPER_TREE_FANOUT, AggregationTree, TreeNode
from repro.core.agentserver import (AgentServerError, AgentServerPool,
                                    PoolStats, ProcessTransport,
                                    SERVED_QUERIES)
from repro.core.alarms import Alarm, AlarmBus, POOR_PERF
from repro.core.executor import (ExecWarning, GatherResult, MODE_CONCURRENT,
                                 MODE_SERIAL, ModelTransport, PlanNode,
                                 ScatterGatherExecutor, Transport,
                                 W_CIRCUIT_OPEN, W_MIRROR_DETACHED,
                                 W_WORKER_RESTARTED)
from repro.core.groupserver import (GroupAgentPool, SocketTransport,
                                    TRANSPORT_UNIX)
from repro.core.supervisor import (ChaosPolicy, EVENT_CIRCUIT_OPEN,
                                   EVENT_RESTARTED, GroupSeed, Supervisor,
                                   WorkerSeed)
from repro.core.query import (Query, QueryEngine, QueryResult,
                              measured_result_wire_bytes)
from repro.core.rpc import RpcChannel
from repro.core.trajectory import TrajectoryCache
from repro.network.simulator import Fabric
from repro.storage.archive import RetentionPolicy
from repro.storage.records import PathFlowRecord
from repro.tracing.reconstruct import PathReconstructor
from repro.topology.graph import Topology
from repro.topology.linkid import LinkIdAssignment, assign_link_ids
from repro.transport.flows import FlowOutcome
from repro.transport.tcp import TcpTransferResult

#: The query mechanisms.
MECHANISM_DIRECT = "direct"
MECHANISM_MULTILEVEL = "multilevel"

#: Cluster execution mode: per-host work runs in agent-server worker
#: processes (the executor itself fans out on threads that merely block on
#: the workers' pipes).  See :mod:`repro.core.agentserver`.
MODE_PROCESS = "process"

#: Cluster execution mode: hosts are sharded into worker groups, each
#: group's TIBs live in one worker process behind a single multiplexed
#: stream connection (Unix/TCP socket, or a pipe carrying the same
#: coalesced envelopes), and monitor sweeps / direct queries pack one
#: ``MSG_GROUP_BATCH`` envelope per group instead of one frame per host.
#: See :mod:`repro.core.groupserver`.
MODE_SOCKET = "socket"

#: Valid cluster execution modes.
CLUSTER_MODES = (MODE_SERIAL, MODE_CONCURRENT, MODE_PROCESS, MODE_SOCKET)

#: Modes whose per-host state lives in worker processes.
_WORKER_MODES = (MODE_PROCESS, MODE_SOCKET)


@dataclass
class DistributedQueryResult:
    """Outcome of a distributed query execution.

    Attributes:
        query: the query.
        mechanism: ``"direct"`` or ``"multilevel"``.
        payload: the fully aggregated result.
        response_time_s: modelled end-to-end response time.
        traffic_bytes: total bytes moved over the management network.
        host_count: number of hosts the query was scattered to.
        breakdown: named components of the response time (for reports).
        partial: whether one or more hosts' partial results are missing.
        hosts_failed: the hosts whose results are missing.
        warnings: structured warnings describing failures/hedges/retries.
        wall_clock_s: *measured* end-to-end duration of the scatter-gather
            (the real number, as opposed to the modelled
            ``response_time_s``).
        mode: cluster mode the query ran under (serial/concurrent/process).
        duplicate_traffic_bytes: bytes moved by non-winning duplicate
            attempts (hedge twins that lost the race, retries whose work
            failed) - overhead, deliberately kept out of ``traffic_bytes``.
        scan_stats: cluster-wide pushdown counters of a plan query (per-host
            hot-index routing + cold pruning work, summed key-wise across
            every partial); empty for legacy named queries.
    """

    query: Query
    mechanism: str
    payload: object
    response_time_s: float
    traffic_bytes: int
    host_count: int
    breakdown: Dict[str, float] = field(default_factory=dict)
    partial: bool = False
    hosts_failed: List[str] = field(default_factory=list)
    warnings: Tuple[ExecWarning, ...] = ()
    wall_clock_s: float = 0.0
    mode: str = MODE_SERIAL
    duplicate_traffic_bytes: int = 0
    scan_stats: Dict[str, int] = field(default_factory=dict)


class MonitorSweep(list):
    """Alarms raised by one cluster-wide monitor sweep.

    A plain ``list`` of :class:`~repro.core.alarms.Alarm` (so existing
    callers iterate it unchanged), annotated with the scatter's outcome in
    process mode - a worker that dies mid-tick surfaces here exactly like a
    dead agent does on a query:

    Attributes:
        mode: cluster mode the sweep ran under.
        partial: whether one or more hosts' ticks are missing.
        hosts_failed: the hosts whose ticks failed.
        warnings: structured :class:`~repro.core.executor.ExecWarning`\\ s.
        traffic_bytes: measured wire bytes moved by the tick scatter
            (encoded tick frames out, encoded alarm-batch replies back);
            zero for in-process sweeps, which need no wire.
        wall_clock_s: measured duration of the scatter (process mode).
    """

    def __init__(self, alarms: Iterable[Alarm] = (), *,
                 mode: str = MODE_SERIAL, partial: bool = False,
                 hosts_failed: Iterable[str] = (),
                 warnings: Iterable[ExecWarning] = (),
                 traffic_bytes: int = 0,
                 wall_clock_s: float = 0.0) -> None:
        super().__init__(alarms)
        self.mode = mode
        self.partial = partial
        self.hosts_failed = list(hosts_failed)
        self.warnings = tuple(warnings)
        self.traffic_bytes = traffic_bytes
        self.wall_clock_s = wall_clock_s


class _AlarmCollector:
    """Parks worker-raised alarms during a scatter, dispatches them into
    the controller's bus in canonical host order afterwards.

    The agent -> controller alert channel is asynchronous while the pipe
    protocol is strict request/reply, so alarms ride reply frames that the
    executor may *discard* (per-host timeout fired, a hedge twin won, the
    reply landed after the gather returned).  The worker has already
    latched its flows by then - a dropped reply would lose its alarms
    forever - so ``park`` captures them the moment the reply lands, and
    anything arriving after the ordered dispatch is delivered directly
    (late, but never lost).

    ``latch``: monitor sweeps latch the local mirror of each POOR_PERF
    alarm's flow (``run_check`` latched it worker-side); query piggybacks
    do not, matching the in-process behaviour where ``Alarm(...)`` from a
    handler never touches the monitor.
    """

    def __init__(self, cluster: "QueryCluster", latch: bool) -> None:
        self._cluster = cluster
        self._latch = latch
        self._lock = threading.Lock()
        self._parked: Dict[str, Tuple[Alarm, ...]] = {}
        self._dispatched = False

    def park(self, host: str, alarms: Sequence[Alarm]) -> None:
        """Capture one host's alarms, at most once per host.

        A hedge twin's duplicate attempt re-runs the host's work and can
        raise the same (unlatched) alarms again; only the first reply per
        host surrenders its alarms, whether it lands before the ordered
        dispatch or after it (out-of-band delivery, late but never lost
        and never doubled).
        """
        if not alarms:
            return
        with self._lock:
            if host in self._parked:
                return  # a duplicate attempt's reply; already captured
            self._parked[host] = tuple(alarms)
            deliver_now = self._dispatched
        if deliver_now:
            self._deliver(alarms)

    def dispatch(self, host_order: Sequence[str]) -> List[Alarm]:
        """Dispatch everything parked, in canonical host order."""
        with self._lock:
            self._dispatched = True
            parked = self._parked
        alarms = [alarm for host in host_order
                  for alarm in parked.get(host, ())]
        self._deliver(alarms)
        return alarms

    def _deliver(self, alarms: Sequence[Alarm]) -> None:
        cluster = self._cluster
        for alarm in alarms:
            if self._latch and alarm.reason == POOR_PERF:
                agent = cluster.agents.get(alarm.host)
                if agent is not None:
                    # The worker latched this flow when it alerted; latch
                    # the local mirror too so a later in-process check
                    # cannot re-raise an alarm the controller already has.
                    agent.monitor.mark_alerted(alarm.flow_id)
            cluster.alarm_bus.raise_alarm(alarm)


class QueryCluster:
    """All PathDump agents of a deployment plus the distributed query logic.

    Args:
        topo: the topology.
        assignment: link ID assignment; computed from ``topo`` when omitted.
        hosts: hosts to instantiate agents for (defaults to every host).
        fabric: when given, agents are registered as delivery handlers so
            packet-level traffic feeds the TIBs automatically.
        rpc: management-channel model (a default one is created if omitted).
        shared_cache: share one trajectory cache across agents (saves memory
            in large clusters; per-agent caches when ``False``).
        transport: pluggable query transport; defaults to a
            :class:`ModelTransport` over ``rpc``.
        mode: execution mode - ``"serial"`` (deterministic, the default, so
            figures reproduce), ``"concurrent"`` (real thread-pool
            fan-out), ``"process"`` (per-host agent-server worker
            processes speaking the binary wire protocol; CPU-bound
            scatters run genuinely in parallel) or ``"socket"`` (hosts
            sharded into worker groups, one multiplexed stream connection
            per group, monitor ticks and direct-query scatters coalesced
            into one ``MSG_GROUP_BATCH`` envelope per group).  All modes
            produce byte-identical query payloads.
        max_workers: worker-pool cap for concurrent/process/socket mode.
        group_count: socket mode only - number of worker groups the hosts
            are sharded into (deterministic contiguous shards; defaults to
            :data:`~repro.core.groupserver.DEFAULT_GROUP_COUNT`, clamped
            to the host count).
        socket_transport: socket mode only - ``"unix"`` (default),
            ``"tcp"``, or ``"pipe"`` (the same coalesced envelopes over a
            multiprocessing pipe; no listener, useful for tests).
        timeout_s: per-host query deadline (see the executor docs).
        hedge_after_s: straggler-hedging threshold (concurrent mode).
        retries: bounded per-host retry budget for transport errors.
        retention: optional hot-tier bounds applied to every agent's TIB
            (two-tier mode: bounded hot memory, cold archive); in process
            mode the same cap is shipped to the agent-server workers over
            the wire so they age records host-side identically.
        supervisor: optional :class:`~repro.core.supervisor.Supervisor`
            attached to the worker pool when process mode starts; the
            cluster wires its ``seed_source`` to the local dual-write
            mirrors (so restarted workers answer byte-identically) and
            re-attaches the ingest mirrors after every restart.
        chaos: optional :class:`~repro.core.supervisor.ChaosPolicy`
            injected into the worker pool (gray-failure testing).
        reply_timeout_s: default worker reply deadline for the pool
            (see :class:`AgentServerPool`).
    """

    def __init__(self, topo: Topology,
                 assignment: Optional[LinkIdAssignment] = None,
                 hosts: Optional[Sequence[str]] = None,
                 fabric: Optional[Fabric] = None,
                 rpc: Optional[RpcChannel] = None,
                 shared_cache: bool = True,
                 transport: Optional[Transport] = None,
                 mode: str = MODE_SERIAL,
                 max_workers: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 hedge_after_s: Optional[float] = None,
                 retries: int = 0,
                 retention: Optional[RetentionPolicy] = None,
                 supervisor: Optional[Supervisor] = None,
                 chaos: Optional[ChaosPolicy] = None,
                 reply_timeout_s: Optional[float] = None,
                 group_count: Optional[int] = None,
                 socket_transport: str = TRANSPORT_UNIX) -> None:
        if mode not in CLUSTER_MODES:
            raise ValueError(f"unknown cluster mode {mode!r}")
        self.topo = topo
        self.assignment = assignment or assign_link_ids(topo)
        self.hosts = list(hosts) if hosts is not None else list(topo.hosts)
        self.alarm_bus = AlarmBus()
        self.rpc = rpc or RpcChannel()
        self.mode = mode
        self.supervisor = supervisor
        self.chaos = chaos
        self.reply_timeout_s = reply_timeout_s
        self.group_count = group_count
        self.socket_transport = socket_transport
        self._pending_warnings: List[ExecWarning] = []  # guarded-by: _warning_lock
        self._warning_lock = threading.Lock()
        self._process_pool: Optional[Union[AgentServerPool,
                                           GroupAgentPool]] = None
        self.transport: Transport = transport or ModelTransport(self.rpc)
        self._adopt_transport(self.transport)
        self.executor = ScatterGatherExecutor(
            self.transport, mode=self._executor_mode(),
            max_workers=max_workers, timeout_s=timeout_s,
            hedge_after_s=hedge_after_s, retries=retries)
        self.engine = QueryEngine()
        self._reconstructor = PathReconstructor(topo, self.assignment)
        self.retention = retention or RetentionPolicy()
        cache = TrajectoryCache() if shared_cache else None
        self.agents: Dict[str, PathDumpAgent] = {}
        for host in self.hosts:
            agent = PathDumpAgent(
                host, topo, self.assignment,
                alarm_sink=self.alarm_bus.raise_alarm,
                reconstructor=self._reconstructor,
                cache=cache if shared_cache else None,
                retention=self.retention if self.retention.bounded else None)
            self.agents[host] = agent
        if fabric is not None:
            self.attach_fabric(fabric)
        if mode in _WORKER_MODES:
            # Through configure_executor so the executor is rebuilt over
            # the adopted worker transport (it was constructed above with
            # the default transport).
            self.configure_executor(mode=mode)

    # ---------------------------------------------------------------- wiring
    def attach_fabric(self, fabric: Fabric) -> None:
        """Register every agent as its host's delivery handler."""
        for host, agent in self.agents.items():
            fabric.register_delivery_handler(host, agent.on_packet_delivered)

    def agent(self, host: str) -> PathDumpAgent:
        """The agent running on ``host``."""
        return self.agents[host]

    def configure_executor(self, mode: Optional[str] = None,
                           max_workers: Optional[int] = None,
                           timeout_s: Optional[float] = None,
                           hedge_after_s: Optional[float] = None,
                           retries: Optional[int] = None,
                           transport: Optional[Transport] = None) -> None:
        """Rebuild the query executor with new settings (``None`` keeps the
        current value; ``transport`` replaces the delivery protocol).

        ``mode="process"`` starts the agent-server workers (if not already
        running) and installs a :class:`ProcessTransport`; ``mode="socket"``
        starts the group worker pool behind a :class:`SocketTransport`.
        Switching between the two worker modes replaces the running pool
        (the fresh one re-syncs from the local mirrors); switching back to
        ``"serial"``/``"concurrent"`` keeps the workers alive and in sync
        (ingest mirrors to them), so modes can be flipped per experiment.
        """
        current = self.executor
        if mode is not None:
            if mode not in CLUSTER_MODES:
                raise ValueError(f"unknown cluster mode {mode!r}")
            self.mode = mode
            if mode in _WORKER_MODES:
                pool = self._process_pool
                wants_groups = mode == MODE_SOCKET
                if pool is not None and \
                        isinstance(pool, GroupAgentPool) != wants_groups:
                    # The running pool speaks the wrong plane; replace it
                    # (the restart re-syncs the fresh pool from the local
                    # mirrors, so answers stay byte-identical).
                    self._detach_mirrors()
                    pool.shutdown()
                    self._process_pool = None
                self.start_agent_servers()
        if transport is not None:
            self._adopt_transport(transport)
        self.executor = ScatterGatherExecutor(
            self.transport,
            mode=self._executor_mode(),
            max_workers=(max_workers if max_workers is not None
                         else current.max_workers),
            timeout_s=timeout_s if timeout_s is not None
            else current.timeout_s,
            hedge_after_s=(hedge_after_s if hedge_after_s is not None
                           else current.hedge_after_s),
            retries=retries if retries is not None else current.retries)

    def _executor_mode(self) -> str:
        """The executor-level mode implementing the cluster mode (process
        mode fans out on threads that block on the workers' pipes)."""
        return MODE_SERIAL if self.mode == MODE_SERIAL else MODE_CONCURRENT

    def _adopt_transport(self, transport: Transport) -> None:
        """Install ``transport`` and keep ``self.rpc`` pointing at the
        channel that actually carries query traffic, so its counters (and
        :meth:`reset_stats`) stay meaningful with custom transports."""
        self.transport = transport
        if isinstance(transport, ModelTransport):
            self.rpc = transport.channel

    # ----------------------------------------------------------- process mode
    @property
    def agent_servers(self) -> Optional[Union[AgentServerPool,
                                              GroupAgentPool]]:
        """The agent-server worker pool (``None`` until a worker mode is
        enabled)."""
        return self._process_pool

    def start_agent_servers(self, context=None,
                            reply_timeout_s: Optional[float] = None,
                            supervisor: Optional[Supervisor] = None,
                            chaos: Optional[ChaosPolicy] = None
                            ) -> Union[AgentServerPool, GroupAgentPool]:
        """Spawn one agent-server worker per host and bring it in sync.

        Each worker receives a snapshot of its host's current TIB as
        encoded record batches and of its monitor as an encoded state
        frame; afterwards every agent's TIB writes are mirrored to its
        worker through ``record_sink`` and every monitor observation
        through ``monitor.observation_sink``, so all ingest paths (fabric
        deliveries, flow outcomes, direct inserts/observations through the
        agent) keep both sides identical.  Records written straight into
        ``agent.tib`` - and monitor state mutated outside ``observe_flow``
        (e.g. changing ``poor_threshold``) - bypass the mirror; do that
        only before starting the workers.  Idempotent: an already-running
        pool is returned as is.

        ``supervisor``/``chaos``/``reply_timeout_s`` fall back to the
        values given at construction.  An attached supervisor makes the
        pool self-healing: its ``seed_source`` (wired here to the local
        mirrors unless already set) rebuilds a restarted worker's state,
        and the cluster re-attaches that worker's ingest mirrors and
        surfaces a ``W_WORKER_RESTARTED`` warning on the next result.
        """
        if self._process_pool is not None:
            return self._process_pool
        supervisor = supervisor if supervisor is not None else self.supervisor
        chaos = chaos if chaos is not None else self.chaos
        if reply_timeout_s is None:
            reply_timeout_s = self.reply_timeout_s
        group_mode = self.mode == MODE_SOCKET
        if supervisor is not None:
            self.supervisor = supervisor
            wanted_seed = self._group_seed if group_mode else self._worker_seed
            if supervisor.seed_source is None or supervisor.seed_source in \
                    (self._worker_seed, self._group_seed):
                # Unset, or wired by us for the other worker mode (a mode
                # flip reuses the supervisor): point it at the seed builder
                # matching the pool's keying (host vs group).
                supervisor.seed_source = wanted_seed
            supervisor.subscribe(self._on_supervisor_event)
        if group_mode:
            pool: Union[AgentServerPool, GroupAgentPool] = GroupAgentPool(
                self.hosts, group_count=self.group_count,
                transport=self.socket_transport, context=context,
                reply_timeout_s=reply_timeout_s,
                supervisor=supervisor, chaos=chaos)
        else:
            pool = AgentServerPool(self.hosts, context=context,
                                   reply_timeout_s=reply_timeout_s,
                                   supervisor=supervisor, chaos=chaos)
        try:
            synced = []
            for host in self.hosts:
                agent = self.agents.get(host)
                if agent is None:
                    continue
                retention = agent.tib.retention
                if retention.bounded:
                    # Cap first (pipe FIFO): the worker ages records into
                    # its own cold archive while the snapshot streams in,
                    # so its hot tier never exceeds the bound either.
                    pool.set_retention(host, retention.max_records,
                                       retention.max_bytes)
                if agent.tib.archive is not None and \
                        agent.tib.archive.dead_ratio > 0:
                    # The worker rebuilds its archive from the snapshot,
                    # which never replays tombstoned log garbage; compact
                    # the local log too so both sides' measured
                    # archive_bytes stay directly comparable.
                    agent.tib.archive.compact()
                snapshot = agent.tib.records()
                if snapshot:
                    pool.add_records(host, snapshot)
                pool.seed_monitor(host, agent.monitor.snapshot())
                agent.record_sink = self._make_record_sink(pool, host)
                agent.monitor.observation_sink = \
                    self._make_observation_sink(pool, host)
                synced.append((host, len(snapshot),
                               len(agent.monitor.flows)))
            # Barrier: a ping round-trip drains each worker's ingest queue
            # (FIFO ordering), so callers - and benchmarks - start from
            # workers that are actually in sync instead of racing their
            # background ingest.  Group pools answer one coalesced
            # ping envelope per group (one round-trip per worker process
            # instead of one per host - at 1024 hosts that matters).
            if isinstance(pool, GroupAgentPool):
                states: Dict[str, Tuple[int, int]] = {}
                for key in pool.group_keys():
                    states.update(pool.group_ping_state(key))
            else:
                states = {host: pool.ping_state(host)
                          for host, _count, _flows in synced}
            for host, count, flows in synced:
                applied, monitor_flows = states.get(host, (0, 0))
                if applied < count:
                    raise AgentServerError(
                        f"agent server on {host} applied {applied} of "
                        f"{count} snapshot records")
                if monitor_flows < flows:
                    raise AgentServerError(
                        f"agent server on {host} holds {monitor_flows} of "
                        f"{flows} monitored flows")
        except BaseException:
            # Don't leak a half-started pool: detach any sinks installed so
            # far and stop every worker before re-raising.
            self._detach_mirrors()
            pool.shutdown()
            raise
        self._process_pool = pool
        if isinstance(pool, GroupAgentPool):
            self.process_transport: ModelTransport = \
                SocketTransport(pool, self.rpc)
        else:
            self.process_transport = ProcessTransport(pool, self.rpc)
        self._adopt_transport(self.process_transport)
        return pool

    def _make_record_sink(self, pool: AgentServerPool, host: str):
        """An ingest mirror for ``host`` that degrades instead of raising.

        A dead worker must not break the *local* ingest path (the query
        path already reports it as ``partial`` + ``W_HOST_FAILED``).  On a
        delivery failure there are two cases:

        * the pool's supervisor recovered the worker (``healthy`` again):
          the restart re-seeded it from local state, which - every ingest
          path writes locally before it mirrors - already includes this
          very batch, so nothing is lost and the mirror stays attached
          (re-sending would double-count the upsert);
        * no recovery (unsupervised, restart budget exhausted, restart
          failed): the mirror detaches itself so the simulator keeps
          running against the local TIB, counts the detach in
          ``PoolStats`` and leaves a ``W_MIRROR_DETACHED`` warning for
          the next result - callers can tell "degraded" from "healthy".
        """
        def sink(records) -> None:
            try:
                pool.add_records(host, records)
            except AgentServerError as error:
                if pool.healthy(host):
                    return  # recovered; the re-seed covered this batch
                agent = self.agents.get(host)
                if agent is not None and agent.record_sink is sink:
                    agent.record_sink = None
                    pool.note_mirror_detach(host)
                    self._note_warning(
                        W_MIRROR_DETACHED, host,
                        f"record mirror detached after delivery failure "
                        f"({error}); worker state is stale")
        return sink

    def _make_observation_sink(self, pool: AgentServerPool, host: str):
        """The observation mirror for ``host``; degrades like the record
        sink (a dead worker detaches the mirror instead of breaking the
        local monitor, a supervised recovery keeps it attached)."""
        def sink(observations) -> None:
            try:
                pool.add_observations(host, observations)
            except AgentServerError as error:
                if pool.healthy(host):
                    return  # recovered; the re-seed covered this batch
                agent = self.agents.get(host)
                if agent is not None and \
                        agent.monitor.observation_sink is sink:
                    agent.monitor.observation_sink = None
                    pool.note_mirror_detach(host)
                    self._note_warning(
                        W_MIRROR_DETACHED, host,
                        f"observation mirror detached after delivery "
                        f"failure ({error}); worker state is stale")
        return sink

    def _worker_seed(self, host: str) -> WorkerSeed:
        """Build a restart seed for ``host`` from the local dual-write
        mirrors - the same snapshot (and the same order of parts) the
        startup sync ships, so a re-seeded worker answers later queries
        byte-identically to one that never died."""
        agent = self.agents.get(host)
        if agent is None:
            return WorkerSeed()
        retention = agent.tib.retention
        bounds = ((retention.max_records, retention.max_bytes)
                  if retention.bounded else None)
        if agent.tib.archive is not None and agent.tib.archive.dead_ratio > 0:
            # The fresh worker rebuilds its archive from the snapshot with
            # no tombstoned garbage; compact the local log too so both
            # sides' measured archive_bytes stay comparable.
            agent.tib.archive.compact()
        return WorkerSeed(retention=bounds, records=agent.tib.records(),
                          monitor=agent.monitor.snapshot())

    def _group_seed(self, key: str) -> GroupSeed:
        """Build a restart seed for a whole worker group (socket mode):
        one :class:`WorkerSeed` per member host, from the same local
        mirrors :meth:`_worker_seed` reads, so a re-seeded group answers
        byte-identically to one that never died."""
        pool = self._process_pool
        members = (pool.group_hosts(key)
                   if isinstance(pool, GroupAgentPool) else (key,))
        return GroupSeed(seeds={host: self._worker_seed(host)
                                for host in members})

    def _on_supervisor_event(self, pool, host: str, event) -> None:
        """Supervisor callback: re-attach the ingest mirrors of a restarted
        worker (they may have detached while it was dead, and their
        closures bind the pool) and surface restart / circuit-open events
        as warnings on the next query result or monitor sweep.  On a group
        pool ``host`` is a group key; the mirrors of every member host are
        re-attached."""
        if event.kind == EVENT_RESTARTED:
            expand = getattr(pool, "expand_key", None)
            members = expand(host) if expand is not None else (host,)
            for member in members:
                agent = self.agents.get(member)
                if agent is not None:
                    agent.record_sink = self._make_record_sink(pool, member)
                    agent.monitor.observation_sink = \
                        self._make_observation_sink(pool, member)
            self._note_warning(
                W_WORKER_RESTARTED, host,
                f"worker restarted (attempt {event.attempt}) and re-seeded "
                f"{event.records} records / {event.monitor_flows} monitor "
                f"flows in {event.reseed_ms:.1f}ms after: {event.reason}")
        elif event.kind == EVENT_CIRCUIT_OPEN:
            self._note_warning(W_CIRCUIT_OPEN, host,
                               event.detail or "restart budget exhausted")

    def _note_warning(self, code: str, host: str, detail: str) -> None:
        with self._warning_lock:
            self._pending_warnings.append(
                ExecWarning(code=code, host=host, detail=detail))

    def _drain_warnings(self) -> Tuple[ExecWarning, ...]:
        """Take the pending infrastructure warnings (mirror detaches,
        restarts, circuit opens); they ride the next result returned."""
        with self._warning_lock:
            if not self._pending_warnings:
                return ()
            drained = tuple(self._pending_warnings)
            self._pending_warnings.clear()
        return drained

    def _detach_mirrors(self) -> None:
        for agent in self.agents.values():
            agent.record_sink = None
            agent.monitor.observation_sink = None

    def stop_agent_servers(self) -> None:
        """Shut the worker pool down and detach the ingest mirrors."""
        if self._process_pool is None:
            return
        self._detach_mirrors()
        self._process_pool.shutdown()
        self._process_pool = None
        if self.mode in _WORKER_MODES:
            self.mode = MODE_CONCURRENT
            self.configure_executor(transport=ModelTransport(self.rpc))

    def close(self) -> None:
        """Release external resources (the agent-server workers)."""
        self.stop_agent_servers()

    def __enter__(self) -> "QueryCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- ingest
    def ingest_flow_outcomes(self, outcomes: Iterable[FlowOutcome]) -> int:
        """Feed flow-level simulation results into the TIBs and monitors.

        Per-path deliveries become TIB records at the *destination* agent;
        retransmission statistics feed the *source* agent's monitor (that is
        where TCP symptoms are sensed).
        """
        count = 0
        for outcome in outcomes:
            dst_agent = self.agents.get(outcome.spec.dst)
            src_agent = self.agents.get(outcome.spec.src)
            finish = outcome.finish_time
            etime = finish if finish is not None else outcome.start_time
            if dst_agent is not None:
                for delivery in outcome.deliveries:
                    if delivery.packets_delivered <= 0:
                        continue
                    record = PathFlowRecord(
                        flow_id=outcome.flow_id, path=delivery.path,
                        stime=outcome.start_time, etime=etime,
                        bytes=delivery.bytes_delivered,
                        pkts=delivery.packets_delivered)
                    dst_agent.ingest_path_record(record)
                    count += 1
            if src_agent is not None:
                src_agent.monitor.observe_transfer(outcome)
        return count

    def ingest_tcp_results(self, results: Iterable[TcpTransferResult]) -> None:
        """Feed packet-level TCP results into the source-side monitors.

        (The destination TIBs are already updated by the fabric delivery
        handlers while the packets were being injected.)
        """
        for result in results:
            agent = self.agents.get(result.flow_id.src_ip)
            if agent is not None:
                agent.monitor.observe_transfer(result)

    def flush_all(self, now: Optional[float] = None) -> int:
        """Flush every agent's trajectory memory into its TIB."""
        return sum(agent.flush(now) for agent in self.agents.values())

    def configure_retention(self, max_records: Optional[int] = None,
                            max_bytes: Optional[int] = None) -> None:
        """(Re)configure the hot-tier bounds on every agent's TIB.

        In process mode the same cap travels to each agent-server worker
        as an encoded retention frame, so both sides of the ingest mirror
        age records identically.
        """
        self.retention = RetentionPolicy(max_records=max_records,
                                         max_bytes=max_bytes)
        for agent in self.agents.values():
            agent.configure_retention(max_records=max_records,
                                      max_bytes=max_bytes)
        if self._process_pool is not None:
            for host in self.hosts:
                try:
                    self._process_pool.set_retention(host, max_records,
                                                     max_bytes)
                except AgentServerError:
                    pass  # dead worker: the query path reports it already

    def configure_cold_scan(self, mode: str = "serial",
                            max_workers: Optional[int] = None) -> None:
        """Select the cold tier's spanning-scan strategy on every local
        agent's archive (segment-parallel for any executor mode, inline
        for ``"serial"``).

        Local agents only: process-mode workers keep the serial scan -
        results are identical by construction, and the identity tests pin
        parallel-local scans against serial worker answers byte for byte.
        Agents whose TIB has no archive yet (unbounded retention) are
        skipped; configure retention first.
        """
        for agent in self.agents.values():
            agent.tib.configure_cold_scan(mode, max_workers)

    def tier_report(self, from_workers: bool = False) -> Dict[str, int]:
        """Aggregate two-tier stats across the cluster.

        ``from_workers=True`` (process mode) reads each worker's tier
        stats off a liveness probe instead of the local mirrors - the
        measured worker-side counterpart for cap-verification.
        """
        totals: Dict[str, int] = {}
        if from_workers and self._process_pool is not None:
            for host in self.hosts:
                stats = self._process_pool.tier_stats(host)
                for key, value in stats.items():
                    totals[key] = totals.get(key, 0) + value
            return totals
        for agent in self.agents.values():
            for key, value in agent.tib.tier_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def run_monitors(self, now: float,
                     threshold: Optional[int] = None) -> MonitorSweep:
        """Run one monitoring check on every host; returns raised alarms.

        In serial/concurrent mode the in-process monitors run directly and
        raise into the alarm bus as they go.  In process mode this is a
        *scatter of monitor-tick frames*: every worker runs the check
        host-side, replies with an encoded alarm batch, and the decoded
        alarms are dispatched into the bus in canonical host order - the
        same order the serial loop produces, so alarm streams are identical
        across modes.  A worker that dies mid-tick surfaces on the returned
        :class:`MonitorSweep` exactly like a dead agent does on a query
        (``partial`` / ``hosts_failed`` / a ``W_HOST_FAILED`` warning).
        In socket mode the scatter is coalesced: one ``MSG_GROUP_BATCH``
        envelope per worker group carries every member host's tick, and a
        dead group surfaces as *all* of its hosts failed.
        """
        if self.mode in _WORKER_MODES and self._process_pool is not None:
            if isinstance(self._process_pool, GroupAgentPool):
                return self._run_monitors_group(now, threshold)
            return self._run_monitors_process(now, threshold)
        alarms: List[Alarm] = []
        for agent in self.agents.values():
            alarms.extend(agent.run_monitor(now, threshold))
        if alarms and self._process_pool is not None:
            # Workers alive but the sweep ran locally (mode flipped off
            # process): push the freshly latched state to the workers so a
            # later wire tick cannot re-raise alarms the bus already has.
            self._seed_worker_monitors()
        return MonitorSweep(alarms, mode=self.mode,
                            warnings=self._drain_warnings())

    def _seed_worker_monitors(self) -> None:
        """Push every agent's current monitor state to its worker."""
        for host, agent in self.agents.items():
            try:
                self._process_pool.seed_monitor(host,
                                                agent.monitor.snapshot())
            except AgentServerError:
                pass  # dead worker: the query path reports it already

    def _run_monitors_process(self, now: float,
                              threshold: Optional[int]) -> MonitorSweep:
        """Scatter tick frames to the workers and gather their alarms."""
        pool = self._process_pool
        tick_bytes = len(wire.encode_monitor_tick(now, threshold))
        plan = PlanNode(host=None, children=[
            PlanNode(host=host, request_parts=(tick_bytes,))
            for host in self.hosts])
        sink = _AlarmCollector(self, latch=True)

        def work(host: str):
            result = pool.monitor_tick(host, now, threshold)
            # Hand the alarms over as soon as the reply lands: the worker
            # already latched its flows, so even if the executor discards
            # this reply (per-host timeout fired, hedge twin won, reply
            # arrived after the gather returned) they must still reach the
            # bus - the alert channel is asynchronous, the query is not.
            sink.park(host, result[0])
            return result

        def merge(acc, value):
            return acc[0] + value[0], acc[1] + value[1]

        gather = self.executor.run(plan, work, merge,
                                   response_bytes=lambda value: value[1])
        alarms = sink.dispatch(self.hosts)
        return MonitorSweep(alarms, mode=self.mode, partial=gather.partial,
                            hosts_failed=gather.hosts_failed,
                            warnings=(tuple(gather.warnings)
                                      + self._drain_warnings()),
                            traffic_bytes=gather.traffic_bytes,
                            wall_clock_s=gather.wall_s)

    def _run_monitors_group(self, now: float,
                            threshold: Optional[int]) -> MonitorSweep:
        """Scatter one coalesced tick envelope per worker group.

        The frame-coalescing twin of :meth:`_run_monitors_process`: each
        leaf of the plan is a *group*, its request is one
        ``MSG_GROUP_BATCH`` envelope carrying every member host's tick
        frame, and its reply envelope carries every member's alarm batch.
        Alarms still dispatch in canonical host order, so the alarm
        stream is byte-identical to the serial sweep; a dead group
        expands to all of its member hosts in ``hosts_failed``.
        """
        pool = self._process_pool
        tick = wire.encode_monitor_tick(now, threshold)
        keys = pool.group_keys()
        plan = PlanNode(host=None, children=[
            PlanNode(host=key, request_parts=(len(wire.encode_group_batch(
                1, [(host, tick) for host in pool.group_hosts(key)])),))
            for key in keys])
        sink = _AlarmCollector(self, latch=True)

        def work(key: str):
            per_host, reply_bytes, _sent = pool.group_monitor_tick(
                key, now, threshold)
            count = 0
            for host, alarms in per_host:
                # Same hand-over-on-landing rule as the per-host path: the
                # workers already latched, so a discarded reply must still
                # surrender its alarms.
                sink.park(host, alarms)
                count += len(alarms)
            return count, reply_bytes

        def merge(acc, value):
            return acc[0] + value[0], acc[1] + value[1]

        gather = self.executor.run(plan, work, merge,
                                   response_bytes=lambda value: value[1])
        alarms = sink.dispatch(self.hosts)
        hosts_failed = [host for key in gather.hosts_failed
                        for host in pool.expand_key(key)]
        return MonitorSweep(alarms, mode=self.mode, partial=gather.partial,
                            hosts_failed=hosts_failed,
                            warnings=(tuple(gather.warnings)
                                      + self._drain_warnings()),
                            traffic_bytes=gather.traffic_bytes,
                            wall_clock_s=gather.wall_s)

    # ------------------------------------------------------- distributed query
    def execute_direct(self, query: Query,
                       hosts: Optional[Sequence[str]] = None
                       ) -> DistributedQueryResult:
        """Direct query: every host answers the controller directly.

        In socket mode the scatter is coalesced - one request envelope
        per worker group instead of one frame per host - and the group's
        partials are folded in canonical order before the root merge, so
        the aggregate stays byte-identical to the serial fold.
        """
        targets = list(hosts) if hosts is not None else list(self.hosts)
        pool = self._process_pool
        if self._uses_agent_servers(query) and \
                isinstance(pool, GroupAgentPool):
            return self._execute_direct_group(query, targets, pool)
        request_len = query.request_bytes()  # one encode for all hosts
        plan = PlanNode(host=None, children=[
            PlanNode(host=host, request_parts=(request_len,))
            for host in targets])
        gather = self._gather(plan, query)
        merged = self._finalise(query, gather)
        network = max(
            (report.request_latency_s + report.respond_latency_s
             for report in gather.reports.values() if report.ok),
            default=0.0)
        return self._distributed_result(
            query, MECHANISM_DIRECT, merged, gather, len(targets),
            breakdown={"network": network,
                       "host_execution": gather.max_exec_s,
                       "controller_aggregation": gather.root_merge_s})

    def _execute_direct_group(self, query: Query, targets: List[str],
                              pool: GroupAgentPool
                              ) -> DistributedQueryResult:
        """Direct query over coalesced group envelopes (socket mode).

        The plan's leaves are *runs* of consecutive same-group targets
        (for the canonical full-host scatter that is exactly one leaf per
        group, since shards are contiguous): each leaf ships one
        ``MSG_GROUP_BATCH`` request envelope for its run and folds the
        per-host partials left-to-right in request order before the root
        merge - the same order the per-host fold visits them, so the
        aggregate payload is byte-identical.  A failed leaf expands to
        all of its run's hosts in ``hosts_failed`` (the group connection
        is the failure domain).
        """
        runs: List[Tuple[str, List[str]]] = []
        for host in targets:
            key = pool._key_for(host)
            if runs and runs[-1][0] == key:
                runs[-1][1].append(host)
            else:
                runs.append((key, [host]))
        request_frame = wire.encode_query_request(query, None)
        labels: Dict[str, Tuple[str, List[str]]] = {}
        children = []
        for index, (key, run_hosts) in enumerate(runs):
            label = key if key not in labels else f"{key}#{index}"
            labels[label] = (key, run_hosts)
            # Sized with a small correlation id; the live envelope's id
            # varint may grow a byte on long-lived pools - noise next to
            # the coalesced payload.
            envelope_len = len(wire.encode_group_batch(
                1, [(host, request_frame) for host in run_hosts]))
            children.append(PlanNode(host=label,
                                     request_parts=(envelope_len,)))
        plan = PlanNode(host=None, children=children)
        sink = _AlarmCollector(self, latch=False)

        def work(label: str) -> QueryResult:
            key, run_hosts = labels[label]
            results, reply_bytes, _sent = pool.group_query(
                key, query, hosts=run_hosts)
            folded: Optional[QueryResult] = None
            for host, result in results:
                if result.alarms:
                    sink.park(host, result.alarms)
                    result.alarms = ()
                folded = (result if folded is None
                          else self.engine.merge(query, (folded, result),
                                                 measure_wire=False))
            # What travelled back is the reply envelope, not the folded
            # accumulator; price the response leg with the real bytes.
            folded.wire_bytes = reply_bytes
            return folded

        def merge(acc: QueryResult, value: QueryResult) -> QueryResult:
            return self.engine.merge(query, (acc, value),
                                     measure_wire=False)

        def response_bytes(result: QueryResult) -> int:
            if not result.wire_bytes:  # an unmeasured merge accumulator
                result.wire_bytes = measured_result_wire_bytes(result)
            return result.wire_bytes

        gather = self.executor.run(plan, work, merge,
                                   response_bytes=response_bytes)
        sink.dispatch(targets)
        gather.hosts_failed = [
            host for label in gather.hosts_failed
            for host in labels.get(label, (label, [label]))[1]]
        merged = self._finalise(query, gather)
        network = max(
            (report.request_latency_s + report.respond_latency_s
             for report in gather.reports.values() if report.ok),
            default=0.0)
        return self._distributed_result(
            query, MECHANISM_DIRECT, merged, gather, len(targets),
            breakdown={"network": network,
                       "host_execution": gather.max_exec_s,
                       "controller_aggregation": gather.root_merge_s})

    def execute_multilevel(self, query: Query,
                           hosts: Optional[Sequence[str]] = None,
                           fanout: Sequence[int] = PAPER_TREE_FANOUT
                           ) -> DistributedQueryResult:
        """Multi-level query along an aggregation tree."""
        targets = list(hosts) if hosts is not None else list(self.hosts)
        tree = AggregationTree(targets, fanout=fanout)
        specs: Dict[str, wire.SubtreeSpec] = {}
        plan = self._plan_from_tree(tree.root, query, specs,
                                    request_len=query.request_bytes())
        gather = self._gather(plan, query, specs)
        merged = self._finalise(query, gather)
        return self._distributed_result(
            query, MECHANISM_MULTILEVEL, merged, gather, len(targets),
            breakdown={"tree_depth": float(tree.depth()),
                       "merge_total": gather.merge_s_total,
                       "controller_aggregation": gather.root_merge_s})

    def execute(self, query: Query, hosts: Optional[Sequence[str]] = None,
                mechanism: str = MECHANISM_DIRECT) -> DistributedQueryResult:
        """Execute a query with the chosen mechanism."""
        if mechanism == MECHANISM_DIRECT:
            return self.execute_direct(query, hosts)
        if mechanism == MECHANISM_MULTILEVEL:
            return self.execute_multilevel(query, hosts)
        raise ValueError(f"unknown query mechanism {mechanism!r}")

    # ------------------------------------------------------------- internals
    def _plan_from_tree(self, node: TreeNode, query: Query,
                        specs: Optional[Dict[str, wire.SubtreeSpec]] = None,
                        request_len: Optional[int] = None) -> PlanNode:
        """Map an aggregation (sub)tree onto a scatter plan.

        Every non-root edge batches the query and the child's subtree
        description into one request message; the part sizes are measured
        so that their sum is exactly the length of the combined
        ``encode_query_request(query, spec)`` frame that process mode
        actually ships (the spec part is its frame body - the batched
        message pays the fixed header once).  ``request_len`` carries the
        query frame's length down the recursion (one encode per plan, not
        one per host); ``specs`` (when given) collects each host's subtree
        description so process mode can ship the real thing.
        """
        if request_len is None:
            request_len = query.request_bytes()
        parts: Tuple[int, ...] = ()
        if node.host is not None:
            spec = node.subtree_spec()
            if specs is not None:
                specs[node.host] = spec
            parts = (request_len,
                     len(wire.encode_subtree_spec(spec)) - wire.HEADER_BYTES)
        return PlanNode(
            host=node.host, request_parts=parts,
            children=[self._plan_from_tree(child, query, specs, request_len)
                      for child in node.children])

    def _uses_agent_servers(self, query: Query) -> bool:
        """Whether this query's per-host work runs on the worker pool.

        Every built-in runs host-side: the workers own the TIB *and* the
        monitor, and alarms their handlers raise ride the reply frames back
        to the controller's bus.  Only custom handlers registered on
        individual in-process agents fall back local (the worker cannot
        know them).
        """
        return (self.mode in _WORKER_MODES
                and self._process_pool is not None
                and query.name in SERVED_QUERIES)

    @staticmethod
    def _plan_hosts(plan: PlanNode) -> List[str]:
        """Plan hosts in canonical (depth-first, serial-execution) order."""
        hosts: List[str] = []

        def walk(node: PlanNode) -> None:
            if node.host is not None:
                hosts.append(node.host)
            for child in node.children:
                walk(child)

        walk(plan)
        return hosts

    def _gather(self, plan: PlanNode, query: Query,
                specs: Optional[Dict[str, wire.SubtreeSpec]] = None
                ) -> GatherResult:
        """Run a scatter plan: per-host query execution + streaming merge."""
        agents = self.agents
        alarm_sink: Optional[_AlarmCollector] = None

        if self._uses_agent_servers(query):
            pool = self._process_pool
            spec_map = specs or {}
            alarm_sink = _AlarmCollector(self, latch=False)
            sink = alarm_sink

            def work(host: str) -> QueryResult:
                if host not in agents:
                    raise KeyError(f"no agent running on {host}")
                result = pool.query(host, query, spec_map.get(host))
                if result.alarms:
                    # Piggybacked host alarms: parked here and dispatched
                    # after the gather in canonical host order, so the
                    # controller's alarm stream is deterministic (identical
                    # to the serial in-process stream) regardless of which
                    # worker replied first - and a reply the executor
                    # discards still surrenders its alarms.
                    sink.park(host, result.alarms)
                    result.alarms = ()
                return result
        else:
            def work(host: str) -> QueryResult:
                agent = agents.get(host)
                if agent is None:
                    raise KeyError(f"no agent running on {host}")
                return agent.execute_query(query)

        def merge(acc: QueryResult, value: QueryResult) -> QueryResult:
            # Intermediate pairwise merges are not sized (that would
            # re-encode a growing payload per merge - quadratic); only a
            # node's final accumulator is measured, in response_bytes.
            return self.engine.merge(query, (acc, value),
                                     measure_wire=False)

        def response_bytes(result: QueryResult) -> int:
            if not result.wire_bytes:  # an unmeasured merge accumulator
                result.wire_bytes = measured_result_wire_bytes(result)
            return result.wire_bytes

        gather = self.executor.run(plan, work, merge,
                                   response_bytes=response_bytes)
        if alarm_sink is not None:
            alarm_sink.dispatch(self._plan_hosts(plan))
        return gather

    def _finalise(self, query: Query, gather: GatherResult) -> QueryResult:
        """Normalise the gathered accumulator into one aggregate result."""
        if gather.value is None:
            # Nothing gathered (no hosts targeted, or every host failed):
            # the canonical empty aggregate, with ``partial``/``warnings``
            # telling the two cases apart.
            merged = self.engine.merge(query, ())
        elif gather.root_merges == 0:
            # A single partial reached the root unmerged; run it through the
            # merger once so the aggregate has canonical shape.
            merged = self.engine.merge(query, (gather.value,))
        else:
            merged = gather.value
        if not merged.wire_bytes:
            # The root accumulator never travels, so the streaming merge
            # left it unsized; measure it here for API consumers.
            merged.wire_bytes = measured_result_wire_bytes(merged)
        merged.partial = gather.partial
        merged.warnings = tuple(gather.warnings)
        return merged

    def _distributed_result(self, query: Query, mechanism: str,
                            merged: QueryResult, gather: GatherResult,
                            host_count: int,
                            breakdown: Dict[str, float]
                            ) -> DistributedQueryResult:
        # Pending infrastructure warnings (mirror detaches, worker
        # restarts, circuit opens) ride the next result so callers see
        # degradation without polling the pool's counters.
        return DistributedQueryResult(
            query=query, mechanism=mechanism, payload=merged.payload,
            response_time_s=gather.model_time_s,
            traffic_bytes=gather.traffic_bytes, host_count=host_count,
            breakdown=breakdown, partial=gather.partial,
            hosts_failed=list(gather.hosts_failed),
            warnings=tuple(gather.warnings) + self._drain_warnings(),
            wall_clock_s=gather.wall_s,
            mode=self.mode,
            duplicate_traffic_bytes=gather.duplicate_traffic_bytes,
            scan_stats=dict(merged.scan_stats))

    # ------------------------------------------------------------ accounting
    def total_tib_records(self) -> int:
        """Total records across every agent's TIB (both tiers)."""
        return sum(a.tib.total_record_count() for a in self.agents.values())

    def storage_report(self) -> Dict[str, int]:
        """Aggregate storage footprint across the cluster.

        (Worker-plane health - restarts, re-seed cost, open circuits,
        mirror detaches - is reported by :meth:`recovery_report`.)
        """
        report = {"tib": 0, "tib_archive": 0, "trajectory_memory": 0,
                  "trajectory_cache": 0}
        for agent in self.agents.values():
            footprint = agent.memory_footprint_bytes()
            for key in report:
                report[key] += footprint[key]
        return report

    def recovery_report(self) -> Dict[str, object]:
        """Self-healing counters of the worker plane.

        Mirrors :class:`~repro.core.agentserver.PoolStats`: completed
        restarts and their total re-seed cost, circuits opened (restart
        budget exhausted -> dead-agent semantics), ingest mirrors that
        detached, and undecodable replies - plus which hosts are
        currently degraded.  All zeros for a healthy (or serial-mode)
        cluster.
        """
        pool = self._process_pool
        stats = pool.stats if pool is not None else PoolStats()
        supervisor = pool.supervisor if pool is not None else self.supervisor
        return {
            "supervised": supervisor is not None,
            "restarts": stats.restarts,
            "reseed_ms": round(stats.reseed_ms, 3),
            "circuit_open": stats.circuit_open,
            "open_circuits": (supervisor.open_circuits()
                              if supervisor is not None else []),
            "mirror_detaches": stats.mirror_detaches,
            "decode_errors": stats.decode_errors,
            "restart_events": (len(supervisor.events)
                               if supervisor is not None else 0),
        }

    def reset_stats(self) -> None:
        """Zero every per-experiment counter in one place.

        Resets the RPC channel's message/byte counters, each agent's
        storage-engine counters (document-store full-scan / index-rebuild /
        compaction counts) and each monitor's alert counters/latches, so
        repeated runs against the same cluster can't double-count and a new
        measurement interval re-alerts still-poor flows.  In process mode
        the reset monitor state is re-seeded to the workers, keeping both
        sides of the mirror identical.  Call once per experiment.
        """
        for agent in self.agents.values():
            agent.reset_stats()
        if self._process_pool is not None:
            # Re-seed before zeroing the traffic counters: the sync frames
            # are reset bookkeeping, not part of the next experiment.
            self._seed_worker_monitors()
        self.rpc.reset()
        reset_transport = getattr(self.transport, "reset_stats", None)
        if callable(reset_transport):
            reset_transport()
