"""A cluster of PathDump agents plus the distributed query executor.

The TIB is "maintained in a distributed fashion (across all servers in the
datacenter)"; the controller collects results either with a *direct query*
(ask every host, aggregate everything at the controller) or a *multi-level
query* along an aggregation tree where intermediate hosts merge their
children's partial results (Section 3.2).  Figures 11 and 12 compare the two
mechanisms on response time and generated network traffic.

:class:`QueryCluster` owns the per-host agents, wires them to the fabric (or
to the flow-level simulator), and implements both query mechanisms with an
explicit response-time/traffic model:

* per-host query execution and per-node aggregation costs are *measured*
  (wall-clock) on the real in-memory TIBs;
* message latencies and byte counts come from the
  :class:`~repro.core.rpc.RpcChannel` model;
* hosts work in parallel, so a level's contribution to response time is the
  maximum over its nodes, while the direct mechanism pays the controller-side
  aggregation serially - reproducing the scaling behaviour the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.agent import PathDumpAgent
from repro.core.aggregation import PAPER_TREE_FANOUT, AggregationTree, TreeNode
from repro.core.alarms import AlarmBus
from repro.core.query import Query, QueryEngine, QueryResult
from repro.core.rpc import RpcChannel
from repro.core.trajectory import TrajectoryCache
from repro.network.simulator import Fabric
from repro.storage.records import PathFlowRecord
from repro.tracing.reconstruct import PathReconstructor
from repro.topology.graph import Topology
from repro.topology.linkid import LinkIdAssignment, assign_link_ids
from repro.transport.flows import FlowOutcome
from repro.transport.tcp import TcpTransferResult

#: The query mechanisms.
MECHANISM_DIRECT = "direct"
MECHANISM_MULTILEVEL = "multilevel"


@dataclass
class DistributedQueryResult:
    """Outcome of a distributed query execution.

    Attributes:
        query: the query.
        mechanism: ``"direct"`` or ``"multilevel"``.
        payload: the fully aggregated result.
        response_time_s: modelled end-to-end response time.
        traffic_bytes: total bytes moved over the management network.
        host_count: number of hosts that executed the query.
        breakdown: named components of the response time (for reports).
    """

    query: Query
    mechanism: str
    payload: object
    response_time_s: float
    traffic_bytes: int
    host_count: int
    breakdown: Dict[str, float] = field(default_factory=dict)


class QueryCluster:
    """All PathDump agents of a deployment plus the distributed query logic.

    Args:
        topo: the topology.
        assignment: link ID assignment; computed from ``topo`` when omitted.
        hosts: hosts to instantiate agents for (defaults to every host).
        fabric: when given, agents are registered as delivery handlers so
            packet-level traffic feeds the TIBs automatically.
        rpc: management-channel model (a default one is created if omitted).
        shared_cache: share one trajectory cache across agents (saves memory
            in large clusters; per-agent caches when ``False``).
    """

    def __init__(self, topo: Topology,
                 assignment: Optional[LinkIdAssignment] = None,
                 hosts: Optional[Sequence[str]] = None,
                 fabric: Optional[Fabric] = None,
                 rpc: Optional[RpcChannel] = None,
                 shared_cache: bool = True) -> None:
        self.topo = topo
        self.assignment = assignment or assign_link_ids(topo)
        self.hosts = list(hosts) if hosts is not None else list(topo.hosts)
        self.alarm_bus = AlarmBus()
        self.rpc = rpc or RpcChannel()
        self.engine = QueryEngine()
        self._reconstructor = PathReconstructor(topo, self.assignment)
        cache = TrajectoryCache() if shared_cache else None
        self.agents: Dict[str, PathDumpAgent] = {}
        for host in self.hosts:
            agent = PathDumpAgent(
                host, topo, self.assignment,
                alarm_sink=self.alarm_bus.raise_alarm,
                reconstructor=self._reconstructor,
                cache=cache if shared_cache else None)
            self.agents[host] = agent
        if fabric is not None:
            self.attach_fabric(fabric)

    # ---------------------------------------------------------------- wiring
    def attach_fabric(self, fabric: Fabric) -> None:
        """Register every agent as its host's delivery handler."""
        for host, agent in self.agents.items():
            fabric.register_delivery_handler(host, agent.on_packet_delivered)

    def agent(self, host: str) -> PathDumpAgent:
        """The agent running on ``host``."""
        return self.agents[host]

    # ---------------------------------------------------------------- ingest
    def ingest_flow_outcomes(self, outcomes: Iterable[FlowOutcome]) -> int:
        """Feed flow-level simulation results into the TIBs and monitors.

        Per-path deliveries become TIB records at the *destination* agent;
        retransmission statistics feed the *source* agent's monitor (that is
        where TCP symptoms are sensed).
        """
        count = 0
        for outcome in outcomes:
            dst_agent = self.agents.get(outcome.spec.dst)
            src_agent = self.agents.get(outcome.spec.src)
            finish = outcome.finish_time
            etime = finish if finish is not None else outcome.start_time
            if dst_agent is not None:
                for delivery in outcome.deliveries:
                    if delivery.packets_delivered <= 0:
                        continue
                    record = PathFlowRecord(
                        flow_id=outcome.flow_id, path=delivery.path,
                        stime=outcome.start_time, etime=etime,
                        bytes=delivery.bytes_delivered,
                        pkts=delivery.packets_delivered)
                    dst_agent.ingest_path_record(record)
                    count += 1
            if src_agent is not None:
                src_agent.monitor.observe_transfer(outcome)
        return count

    def ingest_tcp_results(self, results: Iterable[TcpTransferResult]) -> None:
        """Feed packet-level TCP results into the source-side monitors.

        (The destination TIBs are already updated by the fabric delivery
        handlers while the packets were being injected.)
        """
        for result in results:
            agent = self.agents.get(result.flow_id.src_ip)
            if agent is not None:
                agent.monitor.observe_transfer(result)

    def flush_all(self, now: Optional[float] = None) -> int:
        """Flush every agent's trajectory memory into its TIB."""
        return sum(agent.flush(now) for agent in self.agents.values())

    def run_monitors(self, now: float) -> List:
        """Run one monitoring check on every agent; returns raised alarms."""
        alarms = []
        for agent in self.agents.values():
            alarms.extend(agent.run_monitor(now))
        return alarms

    # ------------------------------------------------------- distributed query
    def execute_direct(self, query: Query,
                       hosts: Optional[Sequence[str]] = None
                       ) -> DistributedQueryResult:
        """Direct query: every host answers the controller directly."""
        targets = list(hosts) if hosts is not None else list(self.hosts)
        traffic = 0
        exec_times: List[float] = []
        results: List[QueryResult] = []
        network_time = 0.0
        for host in targets:
            agent = self.agents[host]
            network_time = max(network_time, self.rpc.round_trip(
                query.request_bytes(), 0))
            result, elapsed = self._timed_execute(agent, query)
            exec_times.append(elapsed)
            traffic += query.request_bytes() + result.wire_bytes
            results.append(result)
        merged, merge_time = self._timed_merge(query, results)
        # Hosts execute in parallel; the controller merges serially.
        response_time = (network_time + (max(exec_times) if exec_times else 0.0)
                         + merge_time)
        return DistributedQueryResult(
            query=query, mechanism=MECHANISM_DIRECT, payload=merged.payload,
            response_time_s=response_time, traffic_bytes=traffic,
            host_count=len(targets),
            breakdown={"network": network_time,
                       "host_execution": max(exec_times) if exec_times else 0.0,
                       "controller_aggregation": merge_time})

    def execute_multilevel(self, query: Query,
                           hosts: Optional[Sequence[str]] = None,
                           fanout: Sequence[int] = PAPER_TREE_FANOUT
                           ) -> DistributedQueryResult:
        """Multi-level query along an aggregation tree."""
        targets = list(hosts) if hosts is not None else list(self.hosts)
        tree = AggregationTree(targets, fanout=fanout)
        traffic_box = {"bytes": 0}
        total_time, result = self._run_subtree(tree.root, query, traffic_box)
        return DistributedQueryResult(
            query=query, mechanism=MECHANISM_MULTILEVEL,
            payload=result.payload if result is not None else None,
            response_time_s=total_time, traffic_bytes=traffic_box["bytes"],
            host_count=len(targets),
            breakdown={"tree_depth": float(tree.depth())})

    def execute(self, query: Query, hosts: Optional[Sequence[str]] = None,
                mechanism: str = MECHANISM_DIRECT) -> DistributedQueryResult:
        """Execute a query with the chosen mechanism."""
        if mechanism == MECHANISM_DIRECT:
            return self.execute_direct(query, hosts)
        if mechanism == MECHANISM_MULTILEVEL:
            return self.execute_multilevel(query, hosts)
        raise ValueError(f"unknown query mechanism {mechanism!r}")

    # ------------------------------------------------------------- internals
    def _run_subtree(self, node: TreeNode, query: Query,
                     traffic_box: Dict[str, int]
                     ) -> Tuple[float, Optional[QueryResult]]:
        """Recursively execute the query over an aggregation subtree.

        Returns the subtree's completion time (from when the node receives
        the query) and its merged partial result.
        """
        # Local execution at this node (the controller root has no TIB).
        local_result: Optional[QueryResult] = None
        local_time = 0.0
        if node.host is not None:
            agent = self.agents[node.host]
            local_result, local_time = self._timed_execute(agent, query)

        if not node.children:
            return local_time, local_result

        # Forward query + tree description to the children (in parallel),
        # wait for the slowest subtree, then merge at this node.
        child_results: List[QueryResult] = []
        slowest_child = 0.0
        for child in node.children:
            request_latency = self.rpc.send(query.request_bytes())
            traffic_box["bytes"] += query.request_bytes()
            child_time, child_result = self._run_subtree(child, query,
                                                         traffic_box)
            if child_result is not None:
                response_latency = self.rpc.send(child_result.wire_bytes)
                traffic_box["bytes"] += child_result.wire_bytes
                child_results.append(child_result)
            else:
                response_latency = self.rpc.send(0)
            slowest_child = max(slowest_child,
                                request_latency + child_time
                                + response_latency)

        to_merge = child_results + ([local_result]
                                    if local_result is not None else [])
        merged, merge_time = self._timed_merge(query, to_merge)
        # The node can run its local query while children work.
        return max(local_time, slowest_child) + merge_time, merged

    def _timed_execute(self, agent: PathDumpAgent,
                       query: Query) -> Tuple[QueryResult, float]:
        start = time.perf_counter()
        result = agent.execute_query(query)
        return result, time.perf_counter() - start

    def _timed_merge(self, query: Query, results: Sequence[QueryResult]
                     ) -> Tuple[QueryResult, float]:
        start = time.perf_counter()
        merged = self.engine.merge(query, results)
        return merged, time.perf_counter() - start

    # ------------------------------------------------------------ accounting
    def total_tib_records(self) -> int:
        """Total records across every agent's TIB."""
        return sum(a.tib.record_count() for a in self.agents.values())

    def storage_report(self) -> Dict[str, int]:
        """Aggregate storage footprint across the cluster."""
        report = {"tib": 0, "trajectory_memory": 0, "trajectory_cache": 0}
        for agent in self.agents.values():
            footprint = agent.memory_footprint_bytes()
            for key in report:
                report[key] += footprint[key]
        return report
