"""Versioned binary wire codec for PathDump's control-plane messages.

Until this module existed, every "wire byte" in the query traffic accounting
was an *estimate*: per-payload-kind size constants in :mod:`repro.core.query`,
a fixed-plus-per-hop formula in :mod:`repro.storage.records`, a
bytes-per-host guess in :mod:`repro.core.aggregation`.  This module defines
the real thing - a compact, struct-packed binary encoding of every message
that crosses the controller <-> agent boundary - and the accounting layers
now report ``len(encoded)`` of these frames (the old estimators survive as
cross-checks only).

The same frames are what actually travels to the
:mod:`~repro.core.agentserver` worker processes in ``mode="process"``:
**no pickle is used anywhere on the query path** (pickle would both distort
the byte accounting and execute arbitrary code on unpacking).

Frame layout
------------

Every frame starts with a 4-byte header::

    +----+----+---------+----------+
    | 'P'| 'D'| version | msg type |
    +----+----+---------+----------+

followed by a message-type specific body.  Integers are LEB128 varints
(zigzag for signed values, so huge Python ints round-trip losslessly),
floats are little-endian IEEE doubles, strings are UTF-8 with a varint
length prefix.  Arbitrary query parameters and result payloads use a
tagged-value encoding (``NONE``/``TRUE``/``FALSE``/``INT``/``FLOAT``/
``STR``/``BYTES``/``LIST``/``TUPLE``/``DICT``/``SET``/``FROZENSET``/
``FLOWID``) that preserves container and :class:`FlowId` types exactly -
the property the "payload-identical across execution modes" guarantee is
verified against, byte for byte.

Message kinds: query requests (query + optional aggregation-subtree spec,
batched into one frame exactly as the executor batches the logical edge
payloads), record batches (the simulator -> agent-server ingest stream),
query results / partial aggregates (with any pending host alarms
piggybacked - the asynchronous agent -> controller alert channel drains on
the reply), the event-plane frames (transfer-observation batches, monitor
ticks, alarm batches, monitor-state snapshots/pulls), and the small control
frames of the agent-server protocol (error, ping/pong, reset, sleep,
shutdown).
"""

from __future__ import annotations

import functools
import struct
import zlib
from typing import (Any, Iterable, List, NamedTuple, Optional, Sequence,
                    Tuple)

from repro.core.alarms import Alarm
from repro.core.monitor import (MonitorSnapshot, TcpFlowStats,
                                TransferObservation)
from repro.core import plan as _plan
from repro.network.packet import FlowId
from repro.storage.records import PathFlowRecord, parse_flow_key

#: Frame magic + codec version (bump on any incompatible layout change).
#: Version 2: result frames carry a piggybacked alarm batch, pongs carry
#: the worker's monitor flow count, and the event-plane frame kinds exist.
#: Version 3: pongs carry the worker TIB's two-tier stats (hot/cold record
#: counts and bytes) and the retention-config frame kind exists.
#: Version 4: archive log entries use the field-offset layout (fixed
#: ``stime/etime/link-bloom`` header at known offsets + a body-length
#: prefix) so cold-tier predicates evaluate on encoded bytes and full
#: records decode lazily.
#: Version 5: the group transport exists - hello frames, correlated
#: ``MSG_GROUP_BATCH`` envelopes that coalesce per-host frames for a whole
#: worker group, the torn-close debug command, and the length-delimited
#: stream framing socket mode speaks.
#: Version 6: the generic plan frames exist - ``MSG_PLAN_REQUEST`` carries
#: a declarative :mod:`repro.core.plan` pipeline (one frame kind for *any*
#: question, so new questions never add frames again) and
#: ``MSG_PLAN_RESULT`` extends the result layout with the per-plan
#: scan-stat counters (hot-index routing + cold pruning work).
MAGIC = b"PD"
WIRE_VERSION = 6

_HEADER = struct.Struct("<2sBB")
#: Bytes of the fixed frame header.
HEADER_BYTES = _HEADER.size

#: Message types.
MSG_QUERY_REQUEST = 1
MSG_SUBTREE_SPEC = 2
MSG_RECORD_BATCH = 3
MSG_QUERY_RESULT = 4
MSG_ERROR = 5
MSG_PING = 6
MSG_PONG = 7
MSG_RESET = 8
MSG_SHUTDOWN = 9
MSG_SLEEP = 10
MSG_OBSERVATION_BATCH = 11
MSG_MONITOR_TICK = 12
MSG_ALARM_BATCH = 13
MSG_MONITOR_STATE = 14
MSG_MONITOR_PULL = 15
MSG_RETENTION = 16
MSG_GROUP_HELLO = 17
MSG_GROUP_BATCH = 18
MSG_CLOSE_TORN = 19
MSG_PLAN_REQUEST = 20
MSG_PLAN_RESULT = 21

#: Tagged-value type codes.
_V_NONE = 0
_V_TRUE = 1
_V_FALSE = 2
_V_INT = 3
_V_FLOAT = 4
_V_STR = 5
_V_BYTES = 6
_V_LIST = 7
_V_TUPLE = 8
_V_DICT = 9
_V_SET = 10
_V_FROZENSET = 11
_V_FLOWID = 12

_DOUBLE = struct.Struct("<d")


class WireError(ValueError):
    """A message could not be encoded or decoded."""


class WireDecodeError(WireError):
    """A frame was corrupt in a way a decoder did not anticipate.

    The reader's explicit validations raise :class:`WireError` directly;
    anything else a truncated or bit-flipped frame provokes deep inside a
    decoder (``struct.error``, ``IndexError``, ``UnicodeDecodeError``,
    ``OverflowError``, ...) is wrapped into this subclass by the decode
    entry points - callers handle every corruption uniformly with
    ``except WireError`` and never see a raw internal exception.  The
    agent-server pool treats it as a worker failure: an undecodable reply
    means the strict request/reply protocol is desynchronised, so the
    worker is killed (and, when supervised, restarted and re-seeded).
    """


def _guarded(decoder):
    """Wrap a decode entry point so unexpected corruption surfaces as
    :class:`WireDecodeError` instead of a raw internal exception."""
    @functools.wraps(decoder)
    def decode(*args, **kwargs):
        try:
            return decoder(*args, **kwargs)
        except WireError:
            raise
        except Exception as error:
            raise WireDecodeError(
                f"corrupt frame: {type(error).__name__}: {error}") from error
    return decode


class SubtreeSpec(NamedTuple):
    """The aggregation-subtree description shipped with a multi-level query.

    Attributes:
        root: the host responsible for this subtree.
        hosts: every host in the subtree (including ``root``), pre-order.
    """

    root: str
    hosts: Tuple[str, ...]


# --------------------------------------------------------------------------
# Primitive writers
# --------------------------------------------------------------------------
def _w_uvarint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise WireError(f"negative value {value} for unsigned varint")
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _w_varint(buf: bytearray, value: int) -> None:
    # Zigzag: arbitrary-precision safe in both directions.
    _w_uvarint(buf, value << 1 if value >= 0 else ((-value) << 1) - 1)


def _w_str(buf: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    _w_uvarint(buf, len(data))
    buf += data


def _w_flow_id(buf: bytearray, flow_id: FlowId) -> None:
    _w_str(buf, flow_id.src_ip)
    _w_str(buf, flow_id.dst_ip)
    _w_varint(buf, flow_id.src_port)
    _w_varint(buf, flow_id.dst_port)
    _w_varint(buf, flow_id.protocol)


def _w_value(buf: bytearray, value: Any) -> None:
    kind = type(value)
    if value is None:
        buf.append(_V_NONE)
    elif kind is bool:
        buf.append(_V_TRUE if value else _V_FALSE)
    elif kind is int:
        buf.append(_V_INT)
        _w_varint(buf, value)
    elif kind is float:
        buf.append(_V_FLOAT)
        buf += _DOUBLE.pack(value)
    elif kind is str:
        buf.append(_V_STR)
        _w_str(buf, value)
    elif kind is FlowId:
        buf.append(_V_FLOWID)
        _w_flow_id(buf, value)
    elif kind is tuple or kind is list:
        buf.append(_V_TUPLE if kind is tuple else _V_LIST)
        _w_uvarint(buf, len(value))
        for item in value:
            _w_value(buf, item)
    elif kind is dict:
        buf.append(_V_DICT)
        _w_uvarint(buf, len(value))
        for key, item in value.items():
            _w_value(buf, key)
            _w_value(buf, item)
    elif kind is set or kind is frozenset:
        buf.append(_V_SET if kind is set else _V_FROZENSET)
        _w_uvarint(buf, len(value))
        # Sorted by encoding so equal sets encode to equal bytes.
        chunks = []
        for item in value:
            chunk = bytearray()
            _w_value(chunk, item)
            chunks.append(bytes(chunk))
        for chunk in sorted(chunks):
            buf += chunk
    elif kind is bytes or kind is bytearray:
        buf.append(_V_BYTES)
        _w_uvarint(buf, len(value))
        buf += value
    # Slow path: subclasses (bool already handled; NamedTuples other than
    # FlowId encode as plain tuples).
    elif isinstance(value, bool):
        buf.append(_V_TRUE if value else _V_FALSE)
    elif isinstance(value, int):
        buf.append(_V_INT)
        _w_varint(buf, value)
    elif isinstance(value, float):
        buf.append(_V_FLOAT)
        buf += _DOUBLE.pack(value)
    elif isinstance(value, FlowId):
        buf.append(_V_FLOWID)
        _w_flow_id(buf, value)
    elif isinstance(value, (tuple, list)):
        buf.append(_V_TUPLE if isinstance(value, tuple) else _V_LIST)
        _w_uvarint(buf, len(value))
        for item in value:
            _w_value(buf, item)
    else:
        raise WireError(f"cannot encode value of type {kind.__name__}")


def _w_record(buf: bytearray, record: PathFlowRecord) -> None:
    _w_flow_id(buf, record.flow_id)
    _w_uvarint(buf, len(record.path))
    for node in record.path:
        _w_str(buf, node)
    buf += _DOUBLE.pack(record.stime)
    buf += _DOUBLE.pack(record.etime)
    _w_varint(buf, record.bytes)
    _w_varint(buf, record.pkts)


def _w_spec(buf: bytearray, spec: SubtreeSpec) -> None:
    _w_str(buf, spec.root)
    _w_uvarint(buf, len(spec.hosts))
    for host in spec.hosts:
        _w_str(buf, host)


def _w_alarm(buf: bytearray, alarm: Alarm) -> None:
    _w_flow_id(buf, alarm.flow_id)
    _w_str(buf, alarm.reason)
    _w_uvarint(buf, len(alarm.paths))
    for path in alarm.paths:
        _w_uvarint(buf, len(path))
        for node in path:
            _w_str(buf, node)
    _w_str(buf, alarm.host)
    buf += _DOUBLE.pack(alarm.time)
    _w_str(buf, alarm.detail)


def _w_observation(buf: bytearray, obs: TransferObservation) -> None:
    _w_flow_id(buf, obs.flow_id)
    _w_varint(buf, obs.retransmissions)
    _w_varint(buf, obs.consecutive)
    _w_varint(buf, obs.timeouts)
    _w_varint(buf, obs.bytes_sent)
    buf += _DOUBLE.pack(obs.when)


def _w_flow_stats(buf: bytearray, stats: TcpFlowStats) -> None:
    _w_flow_id(buf, stats.flow_id)
    _w_varint(buf, stats.retransmissions)
    _w_varint(buf, stats.consecutive_retransmissions)
    _w_varint(buf, stats.max_consecutive_retransmissions)
    _w_varint(buf, stats.timeouts)
    _w_varint(buf, stats.bytes_sent)
    buf += _DOUBLE.pack(stats.last_update)
    buf.append(1 if stats.alerted else 0)


# --------------------------------------------------------------------------
# Reader
# --------------------------------------------------------------------------
class _Reader:
    """Sequential decoder over one frame's bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def _need(self, count: int) -> None:
        if self.pos + count > len(self.data):
            raise WireError("truncated frame")

    def u8(self) -> int:
        self._need(1)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def uvarint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.u8()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def varint(self) -> int:
        value = self.uvarint()
        return -((value + 1) >> 1) if value & 1 else value >> 1

    def double(self) -> float:
        self._need(8)
        value = _DOUBLE.unpack_from(self.data, self.pos)[0]
        self.pos += 8
        return value

    def str_(self) -> str:
        count = self.uvarint()
        self._need(count)
        value = self.data[self.pos:self.pos + count]
        self.pos += count
        try:
            return bytes(value).decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireError(f"invalid UTF-8 string: {error}") from None

    def bytes_(self) -> bytes:
        count = self.uvarint()
        self._need(count)
        value = bytes(self.data[self.pos:self.pos + count])
        self.pos += count
        return value

    def flow_id(self) -> FlowId:
        return FlowId(self.str_(), self.str_(), self.varint(),
                      self.varint(), self.varint())

    def value(self) -> Any:
        tag = self.u8()
        if tag == _V_NONE:
            return None
        if tag == _V_TRUE:
            return True
        if tag == _V_FALSE:
            return False
        if tag == _V_INT:
            return self.varint()
        if tag == _V_FLOAT:
            return self.double()
        if tag == _V_STR:
            return self.str_()
        if tag == _V_BYTES:
            return self.bytes_()
        if tag == _V_FLOWID:
            return self.flow_id()
        if tag in (_V_LIST, _V_TUPLE):
            count = self.uvarint()
            items = [self.value() for _ in range(count)]
            return tuple(items) if tag == _V_TUPLE else items
        if tag == _V_DICT:
            count = self.uvarint()
            return {self.value(): self.value() for _ in range(count)}
        if tag in (_V_SET, _V_FROZENSET):
            count = self.uvarint()
            items = {self.value() for _ in range(count)}
            return items if tag == _V_SET else frozenset(items)
        raise WireError(f"unknown value tag {tag}")

    def record(self) -> PathFlowRecord:
        flow_id = self.flow_id()
        count = self.uvarint()
        path = tuple(self.str_() for _ in range(count))
        stime = self.double()
        etime = self.double()
        nbytes = self.varint()
        pkts = self.varint()
        return PathFlowRecord(flow_id=flow_id, path=path, stime=stime,
                              etime=etime, bytes=nbytes, pkts=pkts)

    def spec(self) -> SubtreeSpec:
        root = self.str_()
        count = self.uvarint()
        return SubtreeSpec(root, tuple(self.str_() for _ in range(count)))

    def alarm(self) -> Alarm:
        flow_id = self.flow_id()
        reason = self.str_()
        paths = []
        for _ in range(self.uvarint()):
            hops = self.uvarint()
            paths.append(tuple(self.str_() for _ in range(hops)))
        host = self.str_()
        when = self.double()
        detail = self.str_()
        return Alarm(flow_id=flow_id, reason=reason, paths=paths, host=host,
                     time=when, detail=detail)

    def observation(self) -> TransferObservation:
        return TransferObservation(
            flow_id=self.flow_id(), retransmissions=self.varint(),
            consecutive=self.varint(), timeouts=self.varint(),
            bytes_sent=self.varint(), when=self.double())

    def flow_stats(self) -> TcpFlowStats:
        flow_id = self.flow_id()
        retransmissions = self.varint()
        consecutive = self.varint()
        max_consecutive = self.varint()
        timeouts = self.varint()
        bytes_sent = self.varint()
        last_update = self.double()
        alerted = bool(self.u8())
        return TcpFlowStats(
            flow_id=flow_id, retransmissions=retransmissions,
            consecutive_retransmissions=consecutive,
            max_consecutive_retransmissions=max_consecutive,
            timeouts=timeouts, bytes_sent=bytes_sent,
            last_update=last_update, alerted=alerted)


# --------------------------------------------------------------------------
# Frames
# --------------------------------------------------------------------------
def _frame(msg_type: int, body: bytes = b"") -> bytes:
    return _HEADER.pack(MAGIC, WIRE_VERSION, msg_type) + body


@_guarded
def open_frame(data: bytes) -> Tuple[int, _Reader]:
    """Validate a frame header; return ``(msg_type, body reader)``."""
    if len(data) < HEADER_BYTES:
        raise WireError("frame shorter than header")
    magic, version, msg_type = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version} "
                        f"(speaking {WIRE_VERSION})")
    return msg_type, _Reader(data, HEADER_BYTES)


def frame_type(data: bytes) -> int:
    """The message type of a frame (header validated)."""
    return open_frame(data)[0]


def _expect(data: bytes, msg_type: int) -> _Reader:
    kind, reader = open_frame(data)
    if kind != msg_type:
        raise WireError(f"expected message type {msg_type}, got {kind}")
    return reader


# ------------------------------------------------------------------- values
def encode_value(value: Any) -> bytes:
    """Encode one tagged value (payloads, parameters)."""
    buf = bytearray()
    _w_value(buf, value)
    return bytes(buf)


@_guarded
def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`."""
    reader = _Reader(data)
    value = reader.value()
    if reader.pos != len(data):
        raise WireError("trailing bytes after value")
    return value


def payload_wire_bytes(payload: Any) -> int:
    """Measured serialized size of a result payload."""
    buf = bytearray()
    _w_value(buf, payload)
    return len(buf)


# ------------------------------------------------------------------ queries
def _w_query(buf: bytearray, query) -> None:
    _w_str(buf, query.name)
    params = query.params
    _w_uvarint(buf, len(params))
    for key, value in params.items():
        _w_str(buf, key)
        _w_value(buf, value)
    _w_value(buf, query.period)


def encode_query(query) -> bytes:
    """Encode a bare query request (no subtree spec)."""
    return encode_query_request(query, None)


def encode_query_request(query, spec: Optional[SubtreeSpec]) -> bytes:
    """Encode the batched parent->child edge message: query + optional
    aggregation-subtree description in one frame.

    Plan queries (``query.name == "plan"``) route to the generic
    :func:`encode_plan_request` frame; every other name keeps the legacy
    ``MSG_QUERY_REQUEST`` layout byte for byte.
    """
    if query.name == _plan.PLAN_QUERY_NAME:
        return encode_plan_request(query, spec)
    body = bytearray()
    _w_query(body, query)
    if spec is None:
        body.append(0)
    else:
        body.append(1)
        _w_spec(body, spec)
    return _frame(MSG_QUERY_REQUEST, bytes(body))


@_guarded
def decode_query_request(data: bytes):
    """Decode a query request; returns ``(Query, Optional[SubtreeSpec])``.

    Accepts both frame kinds a controller ships: the legacy
    ``MSG_QUERY_REQUEST`` layout and the generic ``MSG_PLAN_REQUEST``.
    """
    kind, reader = open_frame(data)
    if kind == MSG_PLAN_REQUEST:
        return _read_plan_request(reader)
    if kind != MSG_QUERY_REQUEST:
        raise WireError(f"expected message type {MSG_QUERY_REQUEST}, "
                        f"got {kind}")
    from repro.core.query import Query
    name = reader.str_()
    params = {}
    for _ in range(reader.uvarint()):
        key = reader.str_()
        params[key] = reader.value()
    period = reader.value()
    spec = reader.spec() if reader.u8() else None
    return Query(name=name, params=params, period=period), spec


def encode_subtree_spec(spec: SubtreeSpec) -> bytes:
    """Encode a standalone subtree description (used for sizing the spec
    part of a batched request)."""
    body = bytearray()
    _w_spec(body, spec)
    return _frame(MSG_SUBTREE_SPEC, bytes(body))


@_guarded
def decode_subtree_spec(data: bytes) -> SubtreeSpec:
    """Inverse of :func:`encode_subtree_spec`."""
    return _expect(data, MSG_SUBTREE_SPEC).spec()


# -------------------------------------------------------------------- plans
def _w_plan(buf: bytearray, plan: "_plan.Plan") -> None:
    """Encode one declarative plan: op count, then one tagged op body per
    pipeline stage.  Every registered ``OP_*`` has its encoder leg here
    (lint rule R9 ``plan-op-completeness`` gates exactly that)."""
    _w_uvarint(buf, len(plan.ops))
    for op in plan.ops:
        if isinstance(op, _plan.Filter):
            buf.append(_plan.OP_FILTER)
            _w_value(buf, op.start)
            _w_value(buf, op.end)
            _w_uvarint(buf, len(op.links))
            for a, b in op.links:
                _w_value(buf, a)
                _w_value(buf, b)
            _w_uvarint(buf, len(op.flow_keys))
            for fkey in op.flow_keys:
                _w_str(buf, fkey)
            _w_value(buf, op.path)
        elif isinstance(op, _plan.Project):
            buf.append(_plan.OP_PROJECT)
            _w_uvarint(buf, len(op.fields))
            for name in op.fields:
                _w_str(buf, name)
        elif isinstance(op, _plan.Aggregate):
            buf.append(_plan.OP_AGGREGATE)
            _w_str(buf, op.func)
            _w_uvarint(buf, len(op.fields))
            for name in op.fields:
                _w_str(buf, name)
            _w_uvarint(buf, len(op.by))
            for name in op.by:
                _w_str(buf, name)
            _w_uvarint(buf, op.binsize)
        elif isinstance(op, _plan.TopK):
            buf.append(_plan.OP_TOPK)
            _w_uvarint(buf, op.k)
            _w_str(buf, op.key)
            _w_str(buf, op.order)
        else:
            raise WireError(f"unencodable plan op {type(op).__name__}")


def _r_plan(reader: _Reader) -> "_plan.Plan":
    """Decoder legs of the plan ops; the decoded plan is re-validated so a
    corrupt or hostile frame can never smuggle an ill-formed pipeline past
    the constructor normalisation."""
    ops: List[Any] = []
    for _ in range(reader.uvarint()):
        code = reader.u8()
        if code == _plan.OP_FILTER:
            start = reader.value()
            end = reader.value()
            links = tuple((reader.value(), reader.value())
                          for _ in range(reader.uvarint()))
            flow_keys = tuple(reader.str_()
                              for _ in range(reader.uvarint()))
            path = reader.value()
            ops.append(_plan.Filter(start=start, end=end, links=links,
                                    flow_keys=flow_keys, path=path))
        elif code == _plan.OP_PROJECT:
            fields = tuple(reader.str_() for _ in range(reader.uvarint()))
            ops.append(_plan.Project(fields=fields))
        elif code == _plan.OP_AGGREGATE:
            func = reader.str_()
            fields = tuple(reader.str_() for _ in range(reader.uvarint()))
            by = tuple(reader.str_() for _ in range(reader.uvarint()))
            binsize = reader.uvarint()
            ops.append(_plan.Aggregate(func=func, fields=fields, by=by,
                                       binsize=binsize))
        elif code == _plan.OP_TOPK:
            k = reader.uvarint()
            key = reader.str_()
            order = reader.str_()
            ops.append(_plan.TopK(k=k, key=key, order=order))
        else:
            raise WireError(f"unknown plan op code {code}")
    plan = _plan.Plan(ops=tuple(ops))
    try:
        _plan.validate(plan)
    except _plan.PlanError as exc:
        raise WireError(f"invalid plan: {exc}") from exc
    return plan


def encode_plan_request(query, spec: Optional[SubtreeSpec] = None) -> bytes:
    """Encode the generic plan request frame: the declarative pipeline plus
    the same period / optional-subtree tail a legacy query request carries,
    so plans ride every transport (pipe, socket, ``MSG_GROUP_BATCH``
    coalescing) without transport changes."""
    plan = query.params.get("plan")
    if query.name != _plan.PLAN_QUERY_NAME or \
            not isinstance(plan, _plan.Plan):
        raise WireError("a plan request needs name 'plan' and a Plan "
                        "under params['plan']")
    body = bytearray()
    _w_plan(body, plan)
    _w_value(body, query.period)
    if spec is None:
        body.append(0)
    else:
        body.append(1)
        _w_spec(body, spec)
    return _frame(MSG_PLAN_REQUEST, bytes(body))


def _read_plan_request(reader: _Reader):
    from repro.core.query import Query
    plan = _r_plan(reader)
    period = reader.value()
    spec = reader.spec() if reader.u8() else None
    return Query(name=_plan.PLAN_QUERY_NAME, params={"plan": plan},
                 period=period), spec


@_guarded
def decode_plan_request(data: bytes):
    """Inverse of :func:`encode_plan_request`; returns
    ``(Query, Optional[SubtreeSpec])`` like :func:`decode_query_request`."""
    return _read_plan_request(_expect(data, MSG_PLAN_REQUEST))


def encode_plan_result(result) -> bytes:
    """Encode a (partial) plan result.

    Same layout as :func:`encode_result` plus a tail of per-plan scan-stat
    counters (sorted key/value pairs): how the hot tier routed the pushed
    filter and how much decode work cold pruning avoided on *this* plan.
    """
    body = bytearray()
    _w_str(body, result.query.name)
    _w_str(body, result.host)
    _w_varint(body, result.records_scanned)
    _w_varint(body, result.estimated_wire_bytes)
    _w_value(body, result.payload)
    alarms = getattr(result, "alarms", ())
    _w_uvarint(body, len(alarms))
    for alarm in alarms:
        _w_alarm(body, alarm)
    scan_stats = getattr(result, "scan_stats", None) or {}
    _w_uvarint(body, len(scan_stats))
    for key in sorted(scan_stats):
        _w_str(body, key)
        _w_varint(body, scan_stats[key])
    return _frame(MSG_PLAN_RESULT, bytes(body))


@_guarded
def decode_plan_result(data: bytes, query=None):
    """Inverse of :func:`encode_plan_result`; returns a
    :class:`~repro.core.query.QueryResult` with ``scan_stats`` populated."""
    from repro.core.query import Query, QueryResult
    reader = _expect(data, MSG_PLAN_RESULT)
    name = reader.str_()
    host = reader.str_()
    scanned = reader.varint()
    estimated = reader.varint()
    payload = reader.value()
    alarms = tuple(reader.alarm() for _ in range(reader.uvarint()))
    scan_stats = {}
    for _ in range(reader.uvarint()):
        key = reader.str_()
        scan_stats[key] = reader.varint()
    if query is not None and query.name != name:
        raise WireError(f"result for query {name!r} does not answer "
                        f"{query.name!r}")
    return QueryResult(query=query if query is not None else Query(name),
                       payload=payload, wire_bytes=len(data),
                       records_scanned=scanned, estimated_wire_bytes=estimated,
                       host=host, alarms=alarms, scan_stats=scan_stats)


# ------------------------------------------------------------------ records
def record_wire_bytes(record: PathFlowRecord) -> int:
    """Measured serialized size of one record (its batch-body bytes)."""
    buf = bytearray()
    _w_record(buf, record)
    return len(buf)


def encode_record_batch(records: Sequence[PathFlowRecord]) -> bytes:
    """Encode a record batch (the simulator -> agent-server ingest frame)."""
    body = bytearray()
    _w_uvarint(body, len(records))
    for record in records:
        _w_record(body, record)
    return _frame(MSG_RECORD_BATCH, bytes(body))


@_guarded
def decode_record_batch(data: bytes) -> List[PathFlowRecord]:
    """Inverse of :func:`encode_record_batch`."""
    reader = _expect(data, MSG_RECORD_BATCH)
    return [reader.record() for _ in range(reader.uvarint())]


# The cold archive's log-entry layout (:mod:`repro.storage.archive`)::
#
#     uvarint(record id) + uvarint(body length) + body
#     body = stime f64 | etime f64 | link bloom u64 | flow id | path |
#            varint(bytes) | varint(pkts)
#
# The body leads with a fixed-offset header (two IEEE doubles and a 64-bit
# per-entry link bloom) so a cold scan evaluates time and link predicates
# with one ``unpack_from`` per entry, and the body-length prefix lets it
# step over rejected entries without decoding them; only survivors pay the
# full record decode.  The flow id sits at a fixed body offset too: varints
# and length-prefixed strings are prefix-free, so a flow-key predicate is an
# exact byte comparison of the encoded flow id (no bloom, no false
# positives).  Archive sizes stay *measured* codec bytes, directly
# comparable with the record-batch accounting.

#: The fixed body header: ``stime, etime`` doubles + ``u64`` link bloom.
ENTRY_FIXED = struct.Struct("<ddQ")
#: Body offset of the encoded flow id (the flow-key probe target).
ENTRY_FLOWID_OFFSET = ENTRY_FIXED.size

#: crc32 salts of the per-entry 64-bit link bloom (k=2 bits per key).
#: Python's ``hash()`` is per-process randomized and therefore unusable:
#: blooms baked into encoded entries must mean the same thing in every
#: worker process.
_ENTRY_BLOOM_SALTS = (0x00000000, 0x9E3779B9)


@functools.lru_cache(maxsize=1 << 12)
def link_bloom_mask(a: str, b: str) -> int:
    """Bloom mask of one concrete (undirected) link ``a``-``b``."""
    if b < a:
        a, b = b, a
    key = (a + "\x00" + b).encode("utf-8")
    mask = 0
    for salt in _ENTRY_BLOOM_SALTS:
        mask |= 1 << (zlib.crc32(key, salt) & 63)
    return mask


@functools.lru_cache(maxsize=1 << 12)
def node_bloom_mask(node: str) -> int:
    """Bloom mask of one path node (wildcard-endpoint link queries).

    Node keys live in their own namespace (``\\x01`` prefix, which cannot
    start a link key's ``name\\x00name`` form) so a node never aliases a
    link.
    """
    key = ("\x01" + node).encode("utf-8")
    mask = 0
    for salt in _ENTRY_BLOOM_SALTS:
        mask |= 1 << (zlib.crc32(key, salt) & 63)
    return mask


@functools.lru_cache(maxsize=1 << 14)
def entry_link_bloom(path: Tuple[str, ...]) -> int:
    """The 64-bit per-entry bloom over a path's links and nodes.

    Zero for degenerate (< 2 hop) paths, which traverse no link - matching
    the TIB's link semantics, where such records never match any link
    constraint.  Memoized per path tuple: the datacenter topology yields a
    small closed set of paths, so eviction-time bloom computation is a dict
    hit, not |path| crc32 calls.
    """
    if len(path) < 2:
        return 0
    bloom = 0
    for a, b in zip(path, path[1:]):
        bloom |= link_bloom_mask(a, b)
    for node in set(path):
        bloom |= node_bloom_mask(node)
    return bloom


@functools.lru_cache(maxsize=1 << 12)
def flow_key_probe(fkey: str) -> bytes:
    """The exact encoded-byte probe for one canonical flow key.

    Returns the codec encoding of the parsed flow id; an entry matches the
    flow key iff its body bytes at :data:`ENTRY_FLOWID_OFFSET` equal this
    probe (prefix-freeness of the flow-id encoding makes the slice
    comparison equivalent to flow-id equality).
    """
    buf = bytearray()
    _w_flow_id(buf, parse_flow_key(fkey))
    return bytes(buf)


@functools.lru_cache(maxsize=1 << 14)
def _entry_key_bytes(flow_id: FlowId, path: Tuple[str, ...]) -> bytes:
    """Encoded flow-id + path section of an entry body, memoized per
    (flow, path) - the tier key.  Records for one key are re-encoded every
    time they age out again after a promotion, and this whole section is
    immutable per key, so churn pays two tail varints instead of a field-
    by-field re-encode."""
    buf = bytearray()
    _w_flow_id(buf, flow_id)
    _w_uvarint(buf, len(path))
    for node in path:
        _w_str(buf, node)
    return bytes(buf)


def append_record_entry(buf: bytearray, record_id: int,
                        record: PathFlowRecord) -> int:
    """Append one archive log entry to ``buf``; returns the body's offset
    within ``buf`` (the lazy-decode / predicate-probe anchor the archive
    indexes per entry)."""
    body = bytearray(ENTRY_FIXED.pack(record.stime, record.etime,
                                      entry_link_bloom(record.path)))
    body += _entry_key_bytes(record.flow_id, record.path)
    _w_varint(body, record.bytes)
    _w_varint(body, record.pkts)
    _w_uvarint(buf, record_id)
    _w_uvarint(buf, len(body))
    body_offset = len(buf)
    buf += body
    return body_offset


def record_entry_bytes(record_id: int, record: PathFlowRecord) -> int:
    """Measured size of one archive log entry (id + length prefix + body)."""
    buf = bytearray()
    append_record_entry(buf, record_id, record)
    return len(buf)


@_guarded
def read_entry_record(data: bytes, body_offset: int) -> PathFlowRecord:
    """Decode the full record of the entry whose body starts at
    ``body_offset`` - the lazy half of the scan path, paid only by entries
    that survived the encoded-byte predicates."""
    stime, etime, _bloom = ENTRY_FIXED.unpack_from(data, body_offset)
    reader = _Reader(data, body_offset + ENTRY_FIXED.size)
    flow_id = reader.flow_id()
    count = reader.uvarint()
    path = tuple(reader.str_() for _ in range(count))
    nbytes = reader.varint()
    pkts = reader.varint()
    return PathFlowRecord(flow_id=flow_id, path=path, stime=stime,
                          etime=etime, bytes=nbytes, pkts=pkts)


@_guarded
def read_entry_tail(data: bytes, entry_start: int, flow_id: FlowId,
                    path: Tuple[str, ...]) -> PathFlowRecord:
    """Decode the entry at ``entry_start`` whose flow id and path the
    caller already knows.

    The archive's promotion path resolves entries through its key index -
    ``(flow key, path) -> record id`` - so by the time the entry bytes are
    read, the very fields that dominate decode cost (the flow id and the
    path strings) are in hand.  The entry was encoded from that exact key,
    so the key section is skipped wholesale (its memoized encoded length)
    and only the fixed header and the two tail varints are read.
    """
    reader = _Reader(data, entry_start)
    reader.uvarint()  # record id
    reader.uvarint()  # body length; the tail below self-delimits
    body_offset = reader.pos
    stime, etime, _bloom = ENTRY_FIXED.unpack_from(data, body_offset)
    reader.pos = body_offset + ENTRY_FIXED.size + \
        len(_entry_key_bytes(flow_id, path))
    nbytes = reader.varint()
    pkts = reader.varint()
    return PathFlowRecord(flow_id=flow_id, path=path, stime=stime,
                          etime=etime, bytes=nbytes, pkts=pkts)


def iter_entry_headers(data: bytes) -> Iterable[Tuple[int, int, int]]:
    """Walk a log blob without decoding records.

    Yields ``(record id, body offset, body length)`` per entry - the
    archive builds its per-segment entry arrays from this shape, and the
    pruning-soundness tests use it for brute-force comparison scans.
    """
    reader = _Reader(data)
    length = len(data)
    while reader.pos < length:
        record_id = reader.uvarint()
        body_len = reader.uvarint()
        yield record_id, reader.pos, body_len
        reader.pos += body_len


def iter_record_entries(data: bytes
                        ) -> Iterable[Tuple[int, PathFlowRecord]]:
    """Decode a blob of :func:`append_record_entry` log entries in order."""
    for record_id, body_offset, _body_len in iter_entry_headers(data):
        yield record_id, read_entry_record(data, body_offset)


@_guarded
def read_record_entry(data: bytes, offset: int
                      ) -> Tuple[int, PathFlowRecord]:
    """Decode the single log entry starting at ``offset`` in ``data``.

    This is the point-lookup half of the archive's per-segment offset
    index: one entry is decoded, not the whole segment.
    """
    reader = _Reader(data, offset)
    record_id = reader.uvarint()
    reader.uvarint()  # body length; the record decode below self-delimits
    return record_id, read_entry_record(data, reader.pos)


# ------------------------------------------------------------------ results
def encode_result(result) -> bytes:
    """Encode a (partial) query result.

    ``wire_bytes`` itself is *not* part of the encoding - it is defined as
    the length of this frame, so the field is reconstructed on decode
    (and :meth:`~repro.core.query.QueryEngine.execute` sets it the same
    way), keeping the accounting identical on both sides of the pipe.

    Any alarms on ``result.alarms`` are piggybacked at the tail of the
    frame: an agent-server worker has no channel of its own back to the
    controller's alarm bus, so alarms its query handlers raise (e.g.
    ``path_conformance``'s PC_FAIL) ride the reply and are dispatched on
    decode - the strict request/reply pipe's version of the asynchronous
    agent -> controller alert channel.  A result without alarms (every
    in-process execution) pays one count byte, so sizes stay identical
    across execution modes for alarm-free queries.

    Plan results route to the generic :func:`encode_plan_result` frame
    (same layout plus the per-plan scan-stat tail); every other query
    keeps the legacy ``MSG_QUERY_RESULT`` bytes untouched.
    """
    if result.query.name == _plan.PLAN_QUERY_NAME:
        return encode_plan_result(result)
    body = bytearray()
    _w_str(body, result.query.name)
    _w_str(body, result.host)
    _w_varint(body, result.records_scanned)
    _w_varint(body, result.estimated_wire_bytes)
    _w_value(body, result.payload)
    alarms = getattr(result, "alarms", ())
    _w_uvarint(body, len(alarms))
    for alarm in alarms:
        _w_alarm(body, alarm)
    return _frame(MSG_QUERY_RESULT, bytes(body))


def result_wire_bytes(result) -> int:
    """Measured serialized size of a result frame (defines ``wire_bytes``)."""
    return len(encode_result(result))


@_guarded
def decode_result(data: bytes, query=None):
    """Decode a result frame into a :class:`~repro.core.query.QueryResult`.

    ``query`` supplies the caller's query object (the frame carries only the
    name); when omitted a parameter-less placeholder is reconstructed.
    ``wire_bytes`` is set to ``len(data)`` - the measured frame size.
    Accepts both result kinds: the legacy ``MSG_QUERY_RESULT`` layout and
    the generic ``MSG_PLAN_RESULT``.
    """
    if frame_type(data) == MSG_PLAN_RESULT:
        return decode_plan_result(data, query)
    from repro.core.query import Query, QueryResult
    reader = _expect(data, MSG_QUERY_RESULT)
    name = reader.str_()
    host = reader.str_()
    scanned = reader.varint()
    estimated = reader.varint()
    payload = reader.value()
    alarms = tuple(reader.alarm() for _ in range(reader.uvarint()))
    if query is not None and query.name != name:
        raise WireError(f"result for query {name!r} does not answer "
                        f"{query.name!r}")
    return QueryResult(query=query if query is not None else Query(name),
                       payload=payload, wire_bytes=len(data),
                       records_scanned=scanned, estimated_wire_bytes=estimated,
                       host=host, alarms=alarms)


# ------------------------------------------------------------------ control
def encode_error(detail: str) -> bytes:
    """Encode an agent-server error reply."""
    body = bytearray()
    _w_str(body, detail)
    return _frame(MSG_ERROR, bytes(body))


@_guarded
def decode_error(data: bytes) -> str:
    """Inverse of :func:`encode_error`."""
    return _expect(data, MSG_ERROR).str_()


def encode_ping() -> bytes:
    """Encode a liveness probe."""
    return _frame(MSG_PING)


def encode_pong(record_count: int, monitor_flows: int = 0,
                hot_records: int = 0, hot_bytes: int = 0,
                cold_records: int = 0, cold_bytes: int = 0) -> bytes:
    """Encode a liveness reply.

    Carries the worker TIB's *total* record count (hot + cold - the
    ingest sync barrier checks it) and the monitor's flow-ledger size,
    plus the two-tier stats: hot/cold record counts and measured bytes,
    so the controller reads a capped worker's tier split straight off the
    liveness probe instead of needing a separate exchange.
    """
    body = bytearray()
    _w_uvarint(body, record_count)
    _w_uvarint(body, monitor_flows)
    _w_uvarint(body, hot_records)
    _w_uvarint(body, hot_bytes)
    _w_uvarint(body, cold_records)
    _w_uvarint(body, cold_bytes)
    return _frame(MSG_PONG, bytes(body))


@_guarded
def decode_pong(data: bytes) -> int:
    """The (total) TIB record count of a pong frame."""
    return _expect(data, MSG_PONG).uvarint()


@_guarded
def decode_pong_state(data: bytes) -> Tuple[int, int]:
    """The ``(record_count, monitor_flows)`` prefix of a pong frame."""
    reader = _expect(data, MSG_PONG)
    return reader.uvarint(), reader.uvarint()


@_guarded
def decode_pong_tiers(data: bytes) -> Tuple[int, int, int, int, int, int]:
    """Inverse of :func:`encode_pong`: ``(record_count, monitor_flows,
    hot_records, hot_bytes, cold_records, cold_bytes)``."""
    reader = _expect(data, MSG_PONG)
    return (reader.uvarint(), reader.uvarint(), reader.uvarint(),
            reader.uvarint(), reader.uvarint(), reader.uvarint())


def encode_retention(max_records: Optional[int],
                     max_bytes: Optional[int]) -> bytes:
    """Encode a hot-tier retention config (``None`` = unbounded bound).

    Sent to an agent-server worker so it applies the same record-count /
    byte cap host-side that the controller's local agents apply - the
    capped worker ages records into its own cold archive exactly like the
    in-process TIB does.
    """
    body = bytearray()
    for bound in (max_records, max_bytes):
        if bound is None:
            body.append(0)
        else:
            body.append(1)
            _w_uvarint(body, bound)
    return _frame(MSG_RETENTION, bytes(body))


@_guarded
def decode_retention(data: bytes) -> Tuple[Optional[int], Optional[int]]:
    """Inverse of :func:`encode_retention`: ``(max_records, max_bytes)``."""
    reader = _expect(data, MSG_RETENTION)
    max_records = reader.uvarint() if reader.u8() else None
    max_bytes = reader.uvarint() if reader.u8() else None
    return max_records, max_bytes


def encode_reset() -> bytes:
    """Encode a TIB-clear command."""
    return _frame(MSG_RESET)


def encode_shutdown() -> bytes:
    """Encode a clean-shutdown command."""
    return _frame(MSG_SHUTDOWN)


def encode_sleep(seconds: float) -> bytes:
    """Encode a debug stall: the worker sleeps before its next frame.

    Used by tests and benchmarks to turn a worker into a deterministic
    straggler (e.g. to hold a query in flight while the process is killed).
    """
    return _frame(MSG_SLEEP, _DOUBLE.pack(seconds))


@_guarded
def decode_sleep(data: bytes) -> float:
    """Inverse of :func:`encode_sleep`."""
    return _expect(data, MSG_SLEEP).double()


# -------------------------------------------------------------- event plane
def alarm_wire_bytes(alarm: Alarm) -> int:
    """Measured serialized size of one alarm (its batch-body bytes)."""
    buf = bytearray()
    _w_alarm(buf, alarm)
    return len(buf)


def encode_alarm_batch(alarms: Sequence[Alarm]) -> bytes:
    """Encode an alarm batch (the agent -> controller alert event frame)."""
    body = bytearray()
    _w_uvarint(body, len(alarms))
    for alarm in alarms:
        _w_alarm(body, alarm)
    return _frame(MSG_ALARM_BATCH, bytes(body))


@_guarded
def decode_alarm_batch(data: bytes) -> List[Alarm]:
    """Inverse of :func:`encode_alarm_batch`."""
    reader = _expect(data, MSG_ALARM_BATCH)
    return [reader.alarm() for _ in range(reader.uvarint())]


def encode_observation_batch(observations: Sequence[TransferObservation]
                             ) -> bytes:
    """Encode a transfer-observation batch (the monitor ingest stream,
    batched like record batches)."""
    body = bytearray()
    _w_uvarint(body, len(observations))
    for obs in observations:
        _w_observation(body, obs)
    return _frame(MSG_OBSERVATION_BATCH, bytes(body))


@_guarded
def decode_observation_batch(data: bytes) -> List[TransferObservation]:
    """Inverse of :func:`encode_observation_batch`."""
    reader = _expect(data, MSG_OBSERVATION_BATCH)
    return [reader.observation() for _ in range(reader.uvarint())]


def encode_monitor_tick(now: float,
                        threshold: Optional[int] = None) -> bytes:
    """Encode a monitor-tick command: run one periodic check at ``now``.

    The worker replies with an alarm batch carrying every alarm the check
    raised plus any alarms still pending from earlier activity.
    """
    body = bytearray()
    body += _DOUBLE.pack(now)
    if threshold is None:
        body.append(0)
    else:
        body.append(1)
        _w_varint(body, threshold)
    return _frame(MSG_MONITOR_TICK, bytes(body))


@_guarded
def decode_monitor_tick(data: bytes) -> Tuple[float, Optional[int]]:
    """Inverse of :func:`encode_monitor_tick`: ``(now, threshold)``."""
    reader = _expect(data, MSG_MONITOR_TICK)
    now = reader.double()
    threshold = reader.varint() if reader.u8() else None
    return now, threshold


def encode_monitor_state(snapshot: MonitorSnapshot) -> bytes:
    """Encode a full monitor-state snapshot (startup sync / state pull)."""
    body = bytearray()
    _w_str(body, snapshot.host)
    body += _DOUBLE.pack(snapshot.period)
    _w_varint(body, snapshot.poor_threshold)
    _w_varint(body, snapshot.alerts_raised)
    _w_uvarint(body, len(snapshot.flows))
    for stats in snapshot.flows:
        _w_flow_stats(body, stats)
    return _frame(MSG_MONITOR_STATE, bytes(body))


@_guarded
def decode_monitor_state(data: bytes) -> MonitorSnapshot:
    """Inverse of :func:`encode_monitor_state`."""
    reader = _expect(data, MSG_MONITOR_STATE)
    host = reader.str_()
    period = reader.double()
    threshold = reader.varint()
    alerts = reader.varint()
    flows = tuple(reader.flow_stats() for _ in range(reader.uvarint()))
    return MonitorSnapshot(host=host, period=period, poor_threshold=threshold,
                           alerts_raised=alerts, flows=flows)


def encode_monitor_pull() -> bytes:
    """Encode a monitor-state pull request (reply: a state snapshot)."""
    return _frame(MSG_MONITOR_PULL)


# ----------------------------------------------------------- group transport
def encode_group_hello(group_id: int, hosts: Sequence[str]) -> bytes:
    """Encode the worker -> controller greeting of the group transport.

    A group worker owns a deterministic shard of hosts
    (``WORKER_GROUP_ID`` of ``WORKER_GROUP_COUNT``); the first frame it
    writes after connecting names that shard so the controller's accept
    loop can route the connection - and reject one whose claimed hosts
    disagree with the shard the controller computed.
    """
    body = bytearray()
    _w_uvarint(body, group_id)
    _w_uvarint(body, len(hosts))
    for host in hosts:
        _w_str(body, host)
    return _frame(MSG_GROUP_HELLO, bytes(body))


@_guarded
def decode_group_hello(data: bytes) -> Tuple[int, Tuple[str, ...]]:
    """Inverse of :func:`encode_group_hello`: ``(group_id, hosts)``."""
    reader = _expect(data, MSG_GROUP_HELLO)
    group_id = reader.uvarint()
    hosts = tuple(reader.str_() for _ in range(reader.uvarint()))
    return group_id, hosts


def encode_group_batch(correlation_id: int,
                       entries: Sequence[Tuple[str, bytes]]) -> bytes:
    """Encode a coalesced per-group envelope.

    ``entries`` is ``(host, inner frame)`` per host - monitor ticks, ingest
    batches, or query requests for every host a worker group owns packed
    into *one* message, amortizing the per-frame transport cost the
    event-plane bench exposed.  ``correlation_id`` tags the envelope so one
    multiplexed connection can interleave request/reply pairs: the reply is
    a ``MSG_GROUP_BATCH`` echoing the same id with one reply frame per
    entry, in entry order.  Id ``0`` marks a fire-and-forget envelope
    (ingest streams) that produces no reply.
    """
    body = bytearray()
    _w_uvarint(body, correlation_id)
    _w_uvarint(body, len(entries))
    for host, inner in entries:
        _w_str(body, host)
        _w_uvarint(body, len(inner))
        body += inner
    return _frame(MSG_GROUP_BATCH, bytes(body))


@_guarded
def decode_group_batch(data: bytes
                       ) -> Tuple[int, List[Tuple[str, bytes]]]:
    """Inverse of :func:`encode_group_batch`:
    ``(correlation_id, [(host, inner frame), ...])``."""
    reader = _expect(data, MSG_GROUP_BATCH)
    correlation_id = reader.uvarint()
    entries = []
    for _ in range(reader.uvarint()):
        host = reader.str_()
        inner = reader.bytes_()
        if len(inner) < HEADER_BYTES:
            raise WireError("group-batch entry shorter than a frame header")
        entries.append((host, inner))
    return correlation_id, entries


def encode_close_torn() -> bytes:
    """Encode the torn-close debug command (chaos harness).

    A group worker receiving this writes a *deliberately torn* stream
    frame - a length prefix promising more bytes than it sends - and then
    closes its connection, reproducing a worker dying mid-frame.  The
    controller's stream reader must surface that as
    :class:`WireDecodeError`-driven worker failure, never a hang or a
    desynchronised read.
    """
    return _frame(MSG_CLOSE_TORN)


# ------------------------------------------------------------ stream framing
# Socket mode carries frames over a byte stream, so unlike the pipe
# transport (where ``recv_bytes`` preserves message boundaries) each frame
# travels length-delimited: a 4-byte little-endian length prefix, then the
# frame bytes.  The reader below reassembles frames from arbitrarily split
# reads and converts every malformed stream - oversized lengths, EOF inside
# a prefix or a frame, garbage where a header should be - into
# :class:`WireDecodeError`, the same worker-failure signal the pipe
# transport raises for corrupt replies.

_STREAM_PREFIX = struct.Struct("<I")
#: Bytes of the stream length prefix.
STREAM_PREFIX_BYTES = _STREAM_PREFIX.size
#: Upper bound on one stream frame; a length prefix beyond it means the
#: stream is corrupt (or adversarial) and the connection is torn down
#: rather than buffered against.
MAX_FRAME_BYTES = 64 << 20


def stream_frame(frame: bytes) -> bytes:
    """Length-delimit one frame for a stream transport."""
    if len(frame) < HEADER_BYTES:
        raise WireError("stream frame shorter than a frame header")
    if len(frame) > MAX_FRAME_BYTES:
        raise WireError(f"stream frame of {len(frame)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte cap")
    return _STREAM_PREFIX.pack(len(frame)) + frame


class StreamFrameReader:
    """Incremental reassembler of length-delimited frames.

    Feed it whatever ``recv`` returned; it yields every frame completed so
    far and buffers the rest.  All validation failures poison the reader:
    once a stream has produced garbage there is no resynchronisation
    point, so every later ``feed``/``eof`` raises too.
    """

    __slots__ = ("_buf", "_failed")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._failed = False

    def _fail(self, detail: str) -> WireDecodeError:
        self._failed = True
        return WireDecodeError(detail)

    def feed(self, data: bytes) -> List[bytes]:
        """Buffer ``data``; return the frames it completed (possibly [])."""
        if self._failed:
            raise WireDecodeError("stream reader already failed")
        self._buf += data
        frames: List[bytes] = []
        while True:
            if len(self._buf) < STREAM_PREFIX_BYTES:
                return frames
            length = _STREAM_PREFIX.unpack_from(self._buf, 0)[0]
            if length > MAX_FRAME_BYTES:
                raise self._fail(
                    f"stream frame length {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte cap")
            if length < HEADER_BYTES:
                raise self._fail(
                    f"stream frame length {length} shorter than a header")
            if len(self._buf) < STREAM_PREFIX_BYTES + length:
                return frames
            frame = bytes(
                self._buf[STREAM_PREFIX_BYTES:STREAM_PREFIX_BYTES + length])
            del self._buf[:STREAM_PREFIX_BYTES + length]
            try:
                open_frame(frame)
            except WireError as error:
                raise self._fail(f"corrupt frame in stream: {error}")
            frames.append(frame)

    def eof(self) -> None:
        """Declare end-of-stream; raises if it cut a frame short."""
        if self._failed:
            raise WireDecodeError("stream reader already failed")
        if self._buf:
            raise self._fail(
                f"stream truncated mid-frame ({len(self._buf)} dangling "
                f"bytes)")

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (diagnostics)."""
        return len(self._buf)
