"""Self-healing supervision and chaos injection for the agent-server plane.

The paper's debugger only earns its keep when the fabric is misbehaving,
so the agent plane itself must tolerate misbehaviour: before this module a
worker that died (or merely hung) was killed once and every later query
reported that host failed forever.  The :class:`Supervisor` closes that
gap - it is attached to an :class:`~repro.core.agentserver.AgentServerPool`
and, whenever an exchange with a worker fails (reply timeout, EOF,
undecodable reply, ping-barrier miss during re-seed), it

1. respawns the worker process with exponential backoff
   (:class:`RestartPolicy`),
2. **re-seeds** the fresh worker from the local dual-write mirrors - the
   retention cap, the TIB snapshot as record batches and the monitor state
   including the at-most-once alerted latches, in exactly the startup-sync
   order - and barriers on a ping before the worker serves anything, so a
   restarted host answers later queries byte-identically to one that never
   died;
3. gives up once the per-host restart budget is exhausted: the circuit
   opens and the pool degrades to the pre-supervision dead-agent semantics
   (``partial`` / ``hosts_failed`` / ``W_HOST_FAILED``), surfaced through
   a ``W_CIRCUIT_OPEN`` warning and the pool's ``circuit_open`` counter.

The in-flight exchange that detected the failure is still reported as an
:class:`~repro.core.agentserver.AgentServerError` (its request died with
the old worker and must not be answered by a desynchronised fresh one),
but the restart completes *before* the error surfaces - an executor retry
budget of one therefore makes even the failing scatter succeed, and the
next query always lands on a healthy worker.

Alarm semantics across a restart: alarms a worker had raised but not yet
delivered die with it, and the local monitor mirror only latches a flow
when the controller actually dispatches its alarm - so the re-seeded
monitor state is unlatched for exactly those flows, the restarted worker
re-raises their alarms on the next sweep, and the controller's bus still
sees every alert at most once.

:class:`ChaosPolicy` is the matching gray-failure harness: injected into
the pool it kills workers at the Nth frame (also mid-re-seed), makes them
hang *without* an EOF (the reply-timeout path), slows replies without
killing anything, and truncates/garbage-fills/bit-flips reply frames to
exercise the :class:`~repro.core.wire.WireDecodeError` path.  All choices
are deterministic (seeded RNG, per-host frame counters) so chaos tests
reproduce run to run.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Set, Tuple)

from repro.core import wire
from repro.core.monitor import MonitorSnapshot
from repro.storage.records import PathFlowRecord

#: Supervision event kinds (``RestartEvent.kind``).
EVENT_RESTARTED = "restarted"
EVENT_RESTART_FAILED = "restart_failed"
EVENT_CIRCUIT_OPEN = "circuit_open"

#: Reply-corruption modes for :class:`ChaosPolicy`.
CORRUPT_TRUNCATE = "truncate"
CORRUPT_BITFLIP = "bitflip"
CORRUPT_GARBAGE = "garbage"


@dataclass(frozen=True)
class RestartPolicy:
    """Restart budget and backoff schedule for supervised workers.

    Attributes:
        max_restarts: per-host restart budget (successful *and* failed
            attempts both consume it).  ``0`` disables recovery entirely:
            the circuit opens on the first failure and the pool behaves
            exactly like an unsupervised one (regression-locked).
        backoff_base_s: delay before the *second* restart attempt; the
            first is immediate (the common case is a single crash, and
            queries are waiting).
        backoff_factor: exponential growth factor between attempts.
        backoff_max_s: backoff ceiling.
        reseed_timeout_s: deadline for the re-seed ping barrier (a fresh
            worker that cannot replay its state within this is itself
            treated as a failed attempt).
    """

    max_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    reseed_timeout_s: float = 30.0

    def backoff_s(self, attempt: int) -> float:
        """Delay before restart ``attempt`` (1-based); the first is free."""
        if attempt <= 1:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 2)
        return min(delay, self.backoff_max_s)


@dataclass
class WorkerSeed:
    """State replayed into a fresh worker before it serves requests.

    Built from the *local* side of the dual-write mirrors (the cluster's
    ``seed_source``); because every ingest path writes locally before it
    mirrors, the seed always covers everything the dead worker had seen -
    including any batch whose mirror delivery triggered the restart.

    Attributes:
        retention: ``(max_records, max_bytes)`` hot-tier bounds, or
            ``None`` for an unbounded TIB.  Shipped first (pipe FIFO) so
            the worker ages the snapshot into its own cold archive while
            it streams in.
        records: the TIB snapshot (both tiers, canonical id order).
        monitor: the monitor state including alerted latches, preserving
            at-most-once alerting across the restart.
    """

    retention: Optional[Tuple[Optional[int], Optional[int]]] = None
    records: Sequence[PathFlowRecord] = ()
    monitor: Optional[MonitorSnapshot] = None


@dataclass
class GroupSeed:
    """Seeds for every host of a group worker, keyed by host.

    The group pool's ``seed_source`` returns one of these; the supervisor
    treats seeds as opaque (the pool's ``_reseed`` knows how to replay
    them) and only counts records/flows for the restart event.
    """

    seeds: Dict[str, WorkerSeed] = field(default_factory=dict)


def _seed_record_count(seed) -> int:
    """Records in a :class:`WorkerSeed` or :class:`GroupSeed`."""
    seeds = getattr(seed, "seeds", None)
    if seeds is not None:
        return sum(len(ws.records or ()) for ws in seeds.values())
    return len(seed.records or ())


def _seed_flow_count(seed) -> int:
    """Monitor flows in a :class:`WorkerSeed` or :class:`GroupSeed`."""
    seeds = getattr(seed, "seeds", None)
    if seeds is not None:
        return sum(len(ws.monitor.flows) for ws in seeds.values()
                   if ws.monitor is not None)
    return len(seed.monitor.flows) if seed.monitor is not None else 0


@dataclass(frozen=True)
class RestartEvent:
    """One supervision decision, kept on :attr:`Supervisor.events`.

    Attributes:
        host: the worker's host.
        kind: one of the ``EVENT_*`` constants.
        reason: the failure that triggered supervision (exception text).
        attempt: which restart attempt this was (0 for a circuit that
            opened with the budget already spent).
        reseed_ms: wall-clock milliseconds spent respawning + re-seeding
            (``EVENT_RESTARTED`` only).
        records: TIB records replayed into the fresh worker.
        monitor_flows: monitor flows replayed into the fresh worker.
        detail: extra context (the re-seed error, the exhausted budget).
    """

    host: str
    kind: str
    reason: str
    attempt: int
    reseed_ms: float = 0.0
    records: int = 0
    monitor_flows: int = 0
    detail: str = ""


class Supervisor:
    """Restart-with-recovery for agent-server workers.

    Attach one to a pool (``AgentServerPool(..., supervisor=...)`` or
    ``QueryCluster(..., supervisor=...)``); the pool calls
    :meth:`handle_failure` from its failure paths.  The supervisor is
    deliberately pool-agnostic: it drives the pool through its
    ``_respawn``/``_reseed``/``note_restart``/``note_circuit_open``
    surface and sources seeds through the injectable ``seed_source``
    callable (the cluster wires this to its local agents).

    Args:
        policy: restart budget and backoff (defaults to
            :class:`RestartPolicy`).
        seed_source: ``host -> WorkerSeed`` used to rebuild a fresh
            worker's state; ``None`` restarts workers empty (standalone
            pools with no local mirror).
    """

    def __init__(self, policy: Optional[RestartPolicy] = None,
                 seed_source: Optional[Callable[[str], WorkerSeed]] = None
                 ) -> None:
        self.policy = policy or RestartPolicy()
        self.seed_source = seed_source
        self.events: List[RestartEvent] = []  # guarded-by: _lock
        self.restarts: Dict[str, int] = {}  # guarded-by: _lock
        self._open: Set[str] = set()  # guarded-by: _lock
        self._observers: List[Callable] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    # -------------------------------------------------------------- queries
    def circuit_open(self, host: str) -> bool:
        """Whether ``host``'s restart budget is exhausted."""
        with self._lock:
            return host in self._open

    def open_circuits(self) -> List[str]:
        """Hosts whose circuits are open, sorted."""
        with self._lock:
            return sorted(self._open)

    def restart_count(self, host: str) -> int:
        """Restart attempts consumed for ``host``."""
        with self._lock:
            return self.restarts.get(host, 0)

    def subscribe(self, callback: Callable) -> None:
        """Register ``callback(pool, host, event)`` for every supervision
        event (restart, failed attempt, circuit open).  Idempotent."""
        with self._lock:
            if callback not in self._observers:
                self._observers.append(callback)

    def reset(self) -> None:
        """Forget budgets, circuits and history (new experiment)."""
        with self._lock:
            self.events.clear()
            self.restarts.clear()
            self._open.clear()

    # ------------------------------------------------------------- recovery
    def handle_failure(self, pool, host: str, reason: str) -> bool:
        """React to a failed exchange with ``host``'s worker.

        Called by the pool with the host's exchange lock held (restart and
        re-seed must not interleave with other threads' exchanges on the
        same worker).  Loops restart attempts - backoff, respawn, re-seed,
        ping barrier - until one succeeds or the budget runs out.

        Returns:
            ``True`` when the worker was restarted and re-seeded (the next
            exchange lands on a healthy worker), ``False`` when the
            circuit is (now) open and the pool should degrade to
            dead-agent semantics.
        """
        while True:
            with self._lock:
                if host in self._open:
                    return False
                used = self.restarts.get(host, 0)
                exhausted = used >= self.policy.max_restarts
                if exhausted:
                    self._open.add(host)
                else:
                    attempt = self.restarts[host] = used + 1
            if exhausted:
                pool.note_circuit_open()
                self._record(pool, host, RestartEvent(
                    host=host, kind=EVENT_CIRCUIT_OPEN, reason=reason,
                    attempt=used,
                    detail=f"restart budget ({self.policy.max_restarts}) "
                           f"exhausted; degrading to dead-agent semantics"))
                return False
            delay = self.policy.backoff_s(attempt)
            if delay > 0.0:
                time.sleep(delay)
            started = time.perf_counter()
            try:
                pool._respawn(host)
                source = self.seed_source
                seed = source(host) if source is not None else WorkerSeed()
                pool._reseed(host, seed,
                             timeout_s=self.policy.reseed_timeout_s)
            except Exception as error:
                # The fresh worker (if the respawn got that far) is only
                # partially seeded; kill it so it degrades loudly instead
                # of serving wrong state.
                pool._discard(host)
                self._record(pool, host, RestartEvent(
                    host=host, kind=EVENT_RESTART_FAILED, reason=reason,
                    attempt=attempt,
                    detail=f"{type(error).__name__}: {error}"))
                continue
            reseed_ms = (time.perf_counter() - started) * 1e3
            pool.note_restart(reseed_ms)
            self._record(pool, host, RestartEvent(
                host=host, kind=EVENT_RESTARTED, reason=reason,
                attempt=attempt, reseed_ms=reseed_ms,
                records=_seed_record_count(seed),
                monitor_flows=_seed_flow_count(seed)))
            return True

    def _record(self, pool, host: str, event: RestartEvent) -> None:
        with self._lock:
            self.events.append(event)
            observers = list(self._observers)
        for callback in observers:
            callback(pool, host, event)


def corrupt_frame(frame: bytes, mode: str, rng: random.Random) -> bytes:
    """Damage a wire frame the way a gray link/host would.

    ``truncate`` cuts the frame in half (header survives, body decode
    fails), ``garbage`` replaces every byte (header magic fails),
    ``bitflip`` flips one random bit (may or may not decode - the fuzz
    contract is "decodes or raises ``WireError``, never anything else").
    """
    if mode == CORRUPT_TRUNCATE:
        return frame[:len(frame) // 2]
    if mode == CORRUPT_GARBAGE:
        return bytes(rng.getrandbits(8) for _ in range(len(frame)))
    if mode == CORRUPT_BITFLIP:
        if not frame:
            return frame
        data = bytearray(frame)
        position = rng.randrange(len(data))
        data[position] ^= 1 << rng.randrange(8)
        return bytes(data)
    raise ValueError(f"unknown corruption mode {mode!r}")


class ChaosPolicy:
    """Deterministic gray-failure injection for the agent-server plane.

    Injected into a pool (``AgentServerPool(..., chaos=...)``) it sits on
    the send/receive paths:

    * ``kill_at_frame={host: n}`` - kill the worker right before its
      ``n``-th outbound frame (crash mid-ingest, mid-scatter, ...);
      fires once per entry.
    * ``kill_at_reseed_frame={host: n}`` - kill the *fresh* worker at the
      ``n``-th frame of a supervised re-seed (frame 1 is the retention
      cap when one is configured, then the snapshot batches, the monitor
      state and the ping barrier), exercising restart-during-recovery.
    * ``hang_at_frame={host: n}`` - make the worker sleep ``hang_s``
      before serving its ``n``-th frame *without* dying: no EOF, the
      failure only surfaces through the pool's reply timeout (the
      canonical gray failure).
    * ``slow_reply_s`` (optionally restricted to ``slow_hosts``) - delay
      every reply by that much while staying alive; below the reply
      timeout this must NOT trigger supervision.
    * ``corrupt_reply_at={host: n}`` - damage the ``n``-th reply frame
      with ``corrupt_mode`` (:data:`CORRUPT_TRUNCATE`,
      :data:`CORRUPT_GARBAGE` or :data:`CORRUPT_BITFLIP`), exercising the
      ``WireDecodeError`` -> worker-failure path; fires once per entry.
    * ``close_torn_at_frame={host: n}`` - connection-level fault for the
      stream transports: right before the ``n``-th outbound frame the
      worker is told (via ``MSG_CLOSE_TORN``) to write a *partial* stream
      frame - a length prefix promising more bytes than it sends - and
      close the connection, so the controller's
      :class:`~repro.core.wire.StreamFrameReader` sees a mid-frame
      truncation (``WireDecodeError``) rather than a clean EOF.  On group
      pools the key is the group key (``group-N``); the stalled-socket
      twin is ``hang_at_frame`` + a pool reply timeout.  Fires once per
      entry.

    Frame counters are per host and only protocol frames count (injected
    fault frames do not), so scripts are deterministic.  ``injected``
    records every action taken, for assertions.
    """

    def __init__(self, kill_at_frame: Optional[Dict[str, int]] = None,
                 hang_at_frame: Optional[Dict[str, int]] = None,
                 hang_s: float = 60.0,
                 slow_reply_s: float = 0.0,
                 slow_hosts: Optional[Sequence[str]] = None,
                 corrupt_reply_at: Optional[Dict[str, int]] = None,
                 corrupt_mode: str = CORRUPT_TRUNCATE,
                 kill_at_reseed_frame: Optional[Dict[str, int]] = None,
                 close_torn_at_frame: Optional[Dict[str, int]] = None,
                 seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._kill_at = dict(kill_at_frame or {})  # guarded-by: _lock
        self._hang_at = dict(hang_at_frame or {})  # guarded-by: _lock
        self._close_torn_at = dict(close_torn_at_frame or {})  # guarded-by: _lock
        self.hang_s = hang_s
        self.slow_reply_s = slow_reply_s
        self.slow_hosts = (None if slow_hosts is None else set(slow_hosts))
        self._corrupt_at = dict(corrupt_reply_at or {})  # guarded-by: _lock
        self.corrupt_mode = corrupt_mode
        self._kill_at_reseed = dict(kill_at_reseed_frame or {})  # guarded-by: _lock
        self.frames_sent: Dict[str, int] = {}  # guarded-by: _lock
        self.replies_seen: Dict[str, int] = {}  # guarded-by: _lock
        self._reseed_frames: Dict[str, int] = {}  # guarded-by: _lock
        self.injected: List[Tuple[str, str]] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    def reset_stats(self) -> None:
        """Zero the per-host frame/reply counters and the injection log.

        Per-phase stats resets for multi-phase chaos runs: zeroing the
        frame counters also re-bases ``kill_at_frame``-style schedules,
        so a script armed after the reset counts frames from the new
        phase's start.  Pending fault schedules themselves are
        configuration, not stats - they stay armed.
        """
        with self._lock:
            self.frames_sent.clear()
            self.replies_seen.clear()
            self._reseed_frames.clear()
            self.injected.clear()

    # ------------------------------------------------------------ pool hooks
    def begin_reseed(self, host: str) -> None:
        """Pool hook: a supervised re-seed of ``host`` is starting."""
        with self._lock:
            self._reseed_frames[host] = 0

    def before_send(self, pool, host: str, frame: bytes,
                    reseed: bool = False) -> List[bytes]:
        """Pool hook called before each outbound protocol frame.

        May kill the worker (crash faults) and returns fault frames to
        inject ahead of the real one (hangs, slow replies).
        """
        extras: List[bytes] = []
        with self._lock:
            if reseed:
                count = self._reseed_frames.get(host, 0) + 1
                self._reseed_frames[host] = count
                kill = self._kill_at_reseed.get(host) == count
                if kill:
                    del self._kill_at_reseed[host]
                    why = f"killed at reseed frame {count}"
            else:
                count = self.frames_sent.get(host, 0) + 1
                self.frames_sent[host] = count
                kill = self._kill_at.get(host) == count
                if kill:
                    del self._kill_at[host]
                    why = f"killed at frame {count}"
                if self._hang_at.get(host) == count:
                    del self._hang_at[host]
                    extras.append(wire.encode_sleep(self.hang_s))
                    self.injected.append(
                        (host, f"hang {self.hang_s}s at frame {count}"))
                if self._close_torn_at.get(host) == count:
                    del self._close_torn_at[host]
                    extras.append(wire.encode_close_torn())
                    self.injected.append(
                        (host, f"torn close at frame {count}"))
                if self.slow_reply_s > 0.0 and \
                        (self.slow_hosts is None or host in self.slow_hosts):
                    extras.append(wire.encode_sleep(self.slow_reply_s))
        if kill:
            self._kill(pool, host, why)
        return extras

    def on_reply(self, host: str, reply: bytes) -> bytes:
        """Pool hook called on each received reply; may corrupt it."""
        with self._lock:
            count = self.replies_seen.get(host, 0) + 1
            self.replies_seen[host] = count
            corrupt = self._corrupt_at.get(host) == count
            if corrupt:
                del self._corrupt_at[host]
                self.injected.append(
                    (host, f"{self.corrupt_mode} reply {count}"))
        if corrupt:
            return corrupt_frame(reply, self.corrupt_mode, self.rng)
        return reply

    def _kill(self, pool, host: str, why: str) -> None:
        process = pool._procs.get(host)
        if process is not None:
            process.kill()
            # Wait for the death so the fault is deterministic: the very
            # next exchange sees the EOF instead of racing the kill.
            process.join(5.0)
        with self._lock:
            self.injected.append((host, why))
