"""PathDump reproduction: edge-based datacenter network debugging.

The package reimplements the full PathDump system (OSDI 2016) on top of a
simulated SDN datacenter fabric:

* :mod:`repro.network` - packets, OpenFlow-style switches, links, faults,
  routing and the hop-by-hop simulator;
* :mod:`repro.topology` - fat-tree and VL2 topologies plus CherryPick link
  identifier assignment;
* :mod:`repro.tracing` - CherryPick sampling policies, switch rules, path
  reconstruction and the long-path trap;
* :mod:`repro.transport` / :mod:`repro.workloads` - TCP models and traffic
  generators;
* :mod:`repro.storage` - the document store backing the TIB;
* :mod:`repro.core` - the PathDump edge stack (vswitch, trajectory memory,
  TIB, monitor), agents, distributed queries and the controller;
* :mod:`repro.debug` - the debugging applications of Section 4;
* :mod:`repro.analysis` - metrics and report formatting.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
