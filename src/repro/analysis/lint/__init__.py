"""repro-lint: the repo's AST-based invariant analyzer.

Run it with ``python -m repro.analysis.lint`` (see ``--help``); the rule
suite lives in the ``rules_*`` modules and the machinery in
:mod:`~repro.analysis.lint.framework`.
"""

from repro.analysis.lint.framework import (EXIT_CLEAN, EXIT_ERROR,
                                           EXIT_FINDINGS, Finding,
                                           LintReport, LintUsageError,
                                           Project, Rule, SourceFile,
                                           load_rules, register,
                                           rule_catalog, run_lint)

__all__ = [
    "EXIT_CLEAN", "EXIT_ERROR", "EXIT_FINDINGS", "Finding", "LintReport",
    "LintUsageError", "Project", "Rule", "SourceFile", "load_rules",
    "register", "rule_catalog", "run_lint",
]
