"""CLI for ``repro-lint``: ``python -m repro.analysis.lint``.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint.framework import (EXIT_CLEAN, EXIT_ERROR,
                                           LintUsageError, Project,
                                           rule_catalog, run_lint)


def _find_repo_root(start: Path) -> Path:
    """Walk up from ``start`` to the checkout root (the directory holding
    ``src/repro``); fall back to ``start`` for non-repo trees."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return current


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description=("repro-lint: AST-based analyzer enforcing the "
                     "codebase's cross-cutting invariants (wire "
                     "completeness, stats reset/registry, lock "
                     "discipline, query-path purity, determinism, "
                     "deprecation, scan-spec soundness)."))
    parser.add_argument(
        "--root", type=Path, default=None,
        help="project root to lint (default: the enclosing repo "
             "checkout, else the current directory)")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the report to this file (same format)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, name, doc in rule_catalog():
            print(f"{rule_id}  {name}\n    {doc}")
        return EXIT_CLEAN
    root = args.root if args.root is not None else _find_repo_root(Path.cwd())
    if not root.is_dir():
        print(f"repro-lint: not a directory: {root}", file=sys.stderr)
        return EXIT_ERROR
    rule_ids: Optional[List[str]] = None
    if args.rules is not None:
        rule_ids = [part.strip() for part in args.rules.split(",")
                    if part.strip()]
    try:
        report = run_lint(Project.load(root), rule_ids=rule_ids)
    except LintUsageError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return EXIT_ERROR
    rendered = (report.to_json() if args.format == "json"
                else report.render_human())
    print(rendered)
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
