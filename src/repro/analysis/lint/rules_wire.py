"""R1 - wire-completeness: every frame type has a codec and fuzz coverage.

The wire protocol (PR 3) grows a frame type roughly every other PR; the
invariant that kept it sound is that every ``MSG_*`` constant is reachable
from an ``encode_*`` function, decodable (by a ``decode_*`` function, or a
payload-less body for pure control frames), and exercised by
``tests/test_wire.py`` - the file whose fuzz section owns the
"decodes or raises ``WireError``, never anything else" contract.  A frame
type that misses any leg is exactly how a corrupt-frame crash regresses.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.lint.framework import (Finding, Project, Rule,
                                           SourceFile, register)

_MSG_RE = re.compile(r"\bMSG_[A-Z0-9_]+\b")


def _msg_names(node: ast.AST) -> Set[str]:
    """Every ``MSG_*`` name referenced anywhere under ``node``."""
    out: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id.startswith("MSG_"):
            out.add(child.id)
        elif isinstance(child, ast.Attribute) and \
                child.attr.startswith("MSG_"):
            out.add(child.attr)
    return out


def _is_payloadless_encoder(func: ast.FunctionDef) -> bool:
    """Whether the encoder builds a body-less frame (``_frame(MSG_X)``):
    such frames carry no payload, so no ``decode_*`` is required - the
    generic header open *is* the decode."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "_frame" and \
                len(node.args) == 1 and not node.keywords:
            return True
    return False


@register
class WireCompleteness(Rule):
    id = "R1"
    name = "wire-completeness"
    doc = ("Every MSG_* frame type in wire.py needs an encode_* function, "
           "a decode_* function (unless the frame is payload-less), and "
           "coverage in tests/test_wire.py (by constant name or by its "
           "encoder+decoder names).")

    def check(self, project: Project) -> Iterable[Finding]:
        wire = project.file_named("wire.py", prefer_segment="core")
        if wire is None or wire.tree is None:
            return
        constants: Dict[str, int] = {}
        encoders: Dict[str, ast.FunctionDef] = {}
        decoders: Dict[str, ast.FunctionDef] = {}
        for node in wire.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    node.targets[0].id.startswith("MSG_"):
                constants[node.targets[0].id] = node.lineno
            elif isinstance(node, ast.FunctionDef):
                if node.name.startswith("encode_"):
                    encoders[node.name] = node
                elif node.name.startswith("decode_"):
                    decoders[node.name] = node
        test = project.file_named("test_wire.py")
        test_words: Set[str] = set()
        if test is not None:
            test_words = set(_MSG_RE.findall(test.text))
            test_words |= set(
                re.findall(r"\b(?:encode|decode)_[a-z0-9_]+\b", test.text))
        for const, line in sorted(constants.items()):
            encoding = {name: func for name, func in encoders.items()
                        if const in _msg_names(func)}
            decoding = {name for name, func in decoders.items()
                        if const in _msg_names(func)}
            if not encoding:
                yield self.finding(
                    wire, line,
                    f"{const} is not reachable from any encode_* function")
                continue
            payloadless = any(_is_payloadless_encoder(func)
                              for func in encoding.values())
            if not decoding and not payloadless:
                yield self.finding(
                    wire, line,
                    f"{const} has a payload-carrying encoder "
                    f"({', '.join(sorted(encoding))}) but is not reachable "
                    f"from any decode_* function")
            if test is None:
                yield self.finding(
                    wire, line,
                    f"{const}: no test_wire.py found to cover it")
                continue
            covered = const in test_words or (
                any(name in test_words for name in encoding) and
                (payloadless or
                 any(name in test_words for name in decoding)))
            if not covered:
                yield self.finding(
                    wire, line,
                    f"{const} is not exercised by test_wire.py (reference "
                    f"the constant or round-trip its encoder/decoder there)")
