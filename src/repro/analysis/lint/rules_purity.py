"""R4 + R5 - purity of the query/wire path.

R4 (no-pickle-on-query-path): PR 3's headline property is that every byte
crossing the wire is a real struct-packed frame - "no pickle on the query
path" is asserted in the wire module's docstring but was never checked.
The rule computes the import-reachability closure of the ``core/``
package inside the project and flags any ``pickle``/``marshal``/
``shelve`` import (or aliased call) in it: one convenience
``pickle.dumps`` in a helper pulled in by the executor silently turns
measured traffic into fiction and reopens the arbitrary-deserialization
surface the codec closed.

R5 (determinism): serial, thread and process mode must produce
byte-identical payloads, and chaos runs must reproduce seed-for-seed.
That dies the moment payload-producing or result-merging code reads the
wall clock (``time.time()``, ``datetime.now()``) or the process-global
``random`` generator (unseeded).  The rule covers ``core/`` and
``storage/``; simulators, workloads and other driver code are out of
scope by construction (they feed inputs in, they don't shape payloads).
``time.perf_counter``/``time.monotonic``/``time.sleep`` stay legal -
measuring and pacing are not payload.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.framework import (Finding, Project, Rule,
                                           SourceFile, register)

_SERIALIZER_MODULES = frozenset({"pickle", "cPickle", "marshal", "shelve"})

#: Wall-clock reads that break cross-mode payload identity.
_WALL_CLOCK_CALLS = {
    ("time", "time"): "time.time()",
    ("datetime", "now"): "datetime.now()",
    ("datetime", "utcnow"): "datetime.utcnow()",
    ("date", "today"): "date.today()",
}

#: Module-level functions of ``random`` (the shared, unseeded generator).
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular", "seed",
})


def _module_name(file: SourceFile) -> str:
    """Dotted module name of ``file`` relative to the project (with any
    leading ``src/`` stripped), e.g. ``repro.core.tib``."""
    parts = list(file.segments())
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _imported_modules(file: SourceFile) -> Set[str]:
    """Every dotted module name ``file`` imports (absolute names only -
    the repo style is absolute imports)."""
    out: Set[str] = set()
    if file.tree is None:
        return out
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module and \
                node.level == 0:
            out.add(node.module)
            # ``from pkg import name`` may name a submodule.
            for alias in node.names:
                out.add(f"{node.module}.{alias.name}")
    return out


def _reachable_from_core(project: Project) -> Set[str]:
    """Project module names reachable (by import) from any ``core/``
    module - the query/wire path closure."""
    by_module: Dict[str, SourceFile] = {}
    for file in project:
        by_module[_module_name(file)] = file
    roots = [name for name, file in by_module.items()
             if "core" in file.segments()]
    seen: Set[str] = set()
    queue = list(roots)
    while queue:
        name = queue.pop()
        if name in seen or name not in by_module:
            continue
        seen.add(name)
        for imported in _imported_modules(by_module[name]):
            if imported in by_module:
                queue.append(imported)
            else:
                # ``from repro.core import wire`` resolves the package;
                # also try the parent packages of dotted names.
                parts = imported.split(".")
                for cut in range(len(parts), 0, -1):
                    prefix = ".".join(parts[:cut])
                    if prefix in by_module:
                        queue.append(prefix)
                        break
    return seen


@register
class NoPickleOnQueryPath(Rule):
    id = "R4"
    name = "no-pickle-on-query-path"
    doc = ("No pickle/marshal/shelve import or call in any module "
           "reachable from core/ - the wire codec is the only "
           "serializer on the query path.")

    def check(self, project: Project) -> Iterable[Finding]:
        reachable = _reachable_from_core(project)
        for file in project:
            if file.tree is None or _module_name(file) not in reachable:
                continue
            banned_aliases: Set[str] = set()
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        root = alias.name.split(".")[0]
                        if root in _SERIALIZER_MODULES:
                            banned_aliases.add(alias.asname or root)
                            yield self.finding(
                                file, node.lineno,
                                f"import of {alias.name!r} on the query "
                                f"path (reachable from core/)")
                elif isinstance(node, ast.ImportFrom) and node.module and \
                        node.module.split(".")[0] in _SERIALIZER_MODULES:
                    yield self.finding(
                        file, node.lineno,
                        f"import from {node.module!r} on the query path "
                        f"(reachable from core/)")
                elif isinstance(node, ast.Attribute) and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id in banned_aliases:
                    yield self.finding(
                        file, node.lineno,
                        f"call into serializer module "
                        f"{node.value.id!r} on the query path")


def _in_scope(file: SourceFile) -> bool:
    segments = set(file.segments())
    return bool({"core", "storage"} & segments)


@register
class Determinism(Rule):
    id = "R5"
    name = "determinism"
    doc = ("No time.time()/datetime.now()/unseeded global random in "
           "core/ or storage/ (payload-producing and result-merging "
           "code); perf_counter/monotonic/sleep and seeded "
           "random.Random(seed) instances stay legal.")

    def check(self, project: Project) -> Iterable[Finding]:
        for file in project:
            if file.tree is None or not _in_scope(file):
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute) and
                        isinstance(func.value, ast.Name)):
                    continue
                owner, attr = func.value.id, func.attr
                if (owner, attr) in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        file, node.lineno,
                        f"wall-clock read "
                        f"{_WALL_CLOCK_CALLS[(owner, attr)]} in "
                        f"payload-affecting module (breaks cross-mode "
                        f"payload identity)")
                elif owner == "random" and attr in _GLOBAL_RANDOM_FNS:
                    yield self.finding(
                        file, node.lineno,
                        f"random.{attr}() uses the process-global "
                        f"unseeded generator; use a seeded "
                        f"random.Random(seed) instance")
                elif owner == "random" and attr == "Random" and \
                        not node.args and not node.keywords:
                    yield self.finding(
                        file, node.lineno,
                        "random.Random() without a seed is "
                        "non-reproducible; pass an explicit seed")
