"""R9 - plan-op-completeness: every plan op has all four execution legs.

The declarative plan IR (:mod:`repro.core.plan`) is only as generic as its
registries are complete: an ``OP_*`` op that misses a wire codec leg can't
leave the controller, one missing its executor leg dies on every host, one
missing a merge operator breaks the aggregation tree - each a silent gap
until the first plan uses the op.  Same gate style as R1 (wire frames) and
R7 (ScanSpec tier parity): declared constants are cross-checked against
every consumer-side registry, in both directions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Set

from repro.analysis.lint.framework import (Finding, Project, Rule,
                                           SourceFile, register)

#: The plan.py registry dicts whose keys must cover every op: the
#: host-side executor dispatch and the terminal-op merge selection.
_EXEC_REGISTRY = "_EXEC_BY_OP"
_MERGE_REGISTRY = "_MERGE_BY_TERMINAL"


def _op_names(node: ast.AST) -> Set[str]:
    """Every ``OP_*`` name referenced anywhere under ``node``."""
    out: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id.startswith("OP_"):
            out.add(child.id)
        elif isinstance(child, ast.Attribute) and \
                child.attr.startswith("OP_"):
            out.add(child.attr)
    return out


def _module_functions(tree: ast.Module,
                      prefixes: Iterable[str]) -> Iterator[ast.FunctionDef]:
    """Module-level functions whose name starts with one of ``prefixes``."""
    wanted = tuple(prefixes)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and \
                node.name.startswith(wanted):
            yield node


def _registry_keys(tree: ast.Module, registry: str) -> Optional[Set[str]]:
    """The ``OP_*`` keys of a module-level ``registry = {...}`` dict
    literal, or ``None`` when no such assignment exists."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id == registry and \
                isinstance(node.value, ast.Dict):
            keys: Set[str] = set()
            for key in node.value.keys:
                if isinstance(key, ast.Name) and key.id.startswith("OP_"):
                    keys.add(key.id)
            return keys
    return None


@register
class PlanOpCompleteness(Rule):
    id = "R9"
    name = "plan-op-completeness"
    doc = ("Every OP_* plan op declared in plan.py needs an encoder leg "
           "and a decoder leg in wire.py (an encode_*/_w_* and a "
           "decode_*/_r_* function referencing it), a host-side executor "
           "leg (a key in plan.py's _EXEC_BY_OP), and a merge operator "
           "(a key in _MERGE_BY_TERMINAL); registry keys that are not "
           "declared ops are flagged in reverse.")

    def check(self, project: Project) -> Iterable[Finding]:
        plan = project.file_named("plan.py", prefer_segment="core")
        if plan is None or plan.tree is None:
            return
        constants: Dict[str, int] = {}
        for node in plan.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    node.targets[0].id.startswith("OP_"):
                constants[node.targets[0].id] = node.lineno
        if not constants:
            return
        wire = project.file_named("wire.py", prefer_segment="core")
        encoder_ops: Set[str] = set()
        decoder_ops: Set[str] = set()
        if wire is not None and wire.tree is not None:
            for func in _module_functions(wire.tree, ("encode_", "_w_")):
                encoder_ops |= _op_names(func)
            for func in _module_functions(wire.tree, ("decode_", "_r_")):
                decoder_ops |= _op_names(func)
        exec_keys = _registry_keys(plan.tree, _EXEC_REGISTRY)
        merge_keys = _registry_keys(plan.tree, _MERGE_REGISTRY)
        for const, line in sorted(constants.items()):
            if const not in encoder_ops:
                yield self.finding(
                    plan, line,
                    f"{const} has no encoder leg in wire.py (no "
                    f"encode_*/_w_* function references it)")
            if const not in decoder_ops:
                yield self.finding(
                    plan, line,
                    f"{const} has no decoder leg in wire.py (no "
                    f"decode_*/_r_* function references it)")
            if exec_keys is not None and const not in exec_keys:
                yield self.finding(
                    plan, line,
                    f"{const} has no host-side executor leg (missing from "
                    f"{_EXEC_REGISTRY})")
            if merge_keys is not None and const not in merge_keys:
                yield self.finding(
                    plan, line,
                    f"{const} has no merge operator (missing from "
                    f"{_MERGE_REGISTRY})")
        for registry, keys in ((_EXEC_REGISTRY, exec_keys),
                               (_MERGE_REGISTRY, merge_keys)):
            if keys is None:
                yield self.finding(
                    plan, 1,
                    f"plan.py declares OP_* ops but has no module-level "
                    f"{registry} dict literal")
                continue
            for key in sorted(keys - set(constants)):
                yield self.finding(
                    plan, 1,
                    f"{registry} registers unknown plan op {key} (not a "
                    f"declared OP_* constant)")
