"""R7 - scan-spec soundness: both tier scans consume every ScanSpec field.

PR 7's central contract is one frozen ``ScanSpec`` served identically by
the hot tier (``Tib.scan``) and the cold tier (``ColdArchive.scan``);
pruning soundness is fuzz-locked against ``ScanSpec.matches``.  The
contract breaks structurally the day someone adds a predicate field to
``ScanSpec`` and wires it into only one tier: the other tier silently
over-returns (or under-prunes) and the byte-identity tests only catch it
if a fixture happens to exercise the new field across the tier boundary.

The rule cross-references field names: every dataclass field of
``ScanSpec`` (in ``records.py``) must be read off a ScanSpec-typed (or
``spec``-named) parameter somewhere in ``tib.py`` AND in ``archive.py``;
conversely, any ``spec.X`` access in those modules must name a real
ScanSpec attribute (fields, properties or methods) - a typo'd predicate
read would otherwise raise only on the first constrained scan.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

from repro.analysis.lint.framework import (Finding, Project, Rule,
                                           SourceFile, register)


def _scanspec_surface(records: SourceFile
                      ) -> Tuple[Dict[str, int], Set[str]]:
    """``({field: lineno}, all_attribute_names)`` of the ScanSpec class."""
    fields: Dict[str, int] = {}
    attrs: Set[str] = set()
    if records.tree is None:
        return fields, attrs
    for node in ast.walk(records.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "ScanSpec"):
            continue
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                if not item.target.id.startswith("_"):
                    fields[item.target.id] = item.lineno
                attrs.add(item.target.id)
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                attrs.add(item.name)
    return fields, attrs


def _spec_params(func: _AnyFunc) -> Set[str]:
    """Parameter names of ``func`` that carry a ScanSpec (annotated
    ``ScanSpec`` or conventionally named ``spec``)."""
    names: Set[str] = set()
    args = (func.args.posonlyargs + func.args.args +
            func.args.kwonlyargs)
    for arg in args:
        annotation = arg.annotation
        annotated = (isinstance(annotation, ast.Name) and
                     annotation.id == "ScanSpec") or \
                    (isinstance(annotation, ast.Constant) and
                     annotation.value == "ScanSpec") or \
                    (isinstance(annotation, ast.Attribute) and
                     annotation.attr == "ScanSpec")
        if annotated or arg.arg == "spec":
            names.add(arg.arg)
    return names


def _spec_accesses(file: SourceFile) -> Dict[str, List[int]]:
    """``{attr: [lines]}`` of every ``<spec-param>.attr`` read in the
    module's functions."""
    out: Dict[str, List[int]] = {}
    if file.tree is None:
        return out
    for func in ast.walk(file.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _spec_params(func)
        if not params:
            continue
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id in params:
                out.setdefault(node.attr, []).append(node.lineno)
    return out


@register
class ScanSpecSoundness(Rule):
    id = "R7"
    name = "scan-spec-soundness"
    doc = ("Every ScanSpec predicate field must be consumed by both "
           "Tib.scan (tib.py) and ColdArchive.scan (archive.py), and "
           "every spec.X read there must name a real ScanSpec attribute "
           "- a field wired into one tier breaks hot/cold payload "
           "identity silently.")

    #: Modules that must each consume every predicate field.
    CONSUMERS = (("tib.py", "core", "Tib.scan"),
                 ("archive.py", "storage", "ColdArchive.scan"))

    def check(self, project: Project) -> Iterable[Finding]:
        records = project.file_named("records.py", prefer_segment="storage")
        if records is None:
            return
        fields, attrs = _scanspec_surface(records)
        if not fields:
            return
        for name, segment, label in self.CONSUMERS:
            consumer = project.file_named(name, prefer_segment=segment)
            if consumer is None:
                continue
            accesses = _spec_accesses(consumer)
            for field_name, line in sorted(fields.items()):
                if field_name not in accesses:
                    yield self.finding(
                        records, line,
                        f"ScanSpec.{field_name} is never consumed by "
                        f"{label} ({consumer.rel}); the tiers would "
                        f"disagree on this predicate")
            for attr, lines in sorted(accesses.items()):
                if attr not in attrs and not attr.startswith("__"):
                    yield self.finding(
                        consumer, lines[0],
                        f"spec.{attr} read in {consumer.rel} but ScanSpec "
                        f"has no attribute {attr!r} (typo'd predicate?)")
