"""R2 + R8 - the stats-counter contracts.

R2 (reset-completeness) generalizes the PR 4 alerted-latch leak: a class
that exposes ``reset_stats()`` promises a fresh measurement interval, so
every counter it initialises to zero must be re-zeroed there (directly,
through a helper it calls, or by replacing/clearing the holding object).
The write-behind, decode-cache and restart counters added in PRs 5-7 all
grew this obligation by hand; the rule makes the next one automatic.

R8 (stats-registry) pins the *names*: stats counters cross module
boundaries as strings (``archive.stats["flushes"]`` feeding
``tier_stats()["write_behind_flushes"]``) and as attribute accesses on
stats dataclasses (``pool.stats.restarts`` feeding
``recovery_report()``).  A misspelled key silently reads 0 via ``.get``
or raises ``KeyError`` at reporting time; the rule cross-references every
producer registry (``self.stats = {...}`` literals, ``self.stats =
SomeStats()`` dataclasses, ``tier_stats()`` dict literals) against every
consumer spelling in ``core/`` and ``storage/``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

from repro.analysis.lint.framework import (Finding, Project, Rule,
                                           SourceFile, class_defs,
                                           const_str, dict_str_keys,
                                           is_zero_literal, methods_of,
                                           register, self_attr)

#: Attribute names that are legal on *any* stats holder: dict methods
#: (``self.stats`` is a plain dict in the archive and the docstore) plus
#: the reset protocol.
_DICT_METHODS = frozenset({
    "get", "items", "keys", "values", "clear", "update", "pop",
    "setdefault", "copy", "reset",
})


def _counters_of(cls: ast.ClassDef) -> Dict[str, int]:
    """``{attr: lineno}`` of every counter the class initialises to zero.

    A counter is ``self.X = 0`` / ``self.X = 0.0`` in ``__init__``, a
    class-level ``X: int = 0`` dataclass field, or ``self.X = {...}``
    where every value is a zero literal (a counter dict).  Underscored
    scalars are *not* counters: private zero-initialised attributes are
    implementation state (id allocators, byte estimates, zone-map
    accumulators) owned by ``clear()``-style lifecycle methods, not by
    the measurement interval - the class's instrumentation surface is
    its public counters and its counter dicts."""
    counters: Dict[str, int] = {}
    init = methods_of(cls).get("__init__")
    if init is not None:
        for node in ast.walk(init):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = self_attr(node.targets[0])
                if attr is None:
                    continue
                entries = dict_str_keys(node.value)
                counter_dict = (entries is not None and entries and
                                all(is_zero_literal(value)
                                    for _, value in entries))
                scalar = (is_zero_literal(node.value) and
                          not attr.startswith("_"))
                if scalar or counter_dict:
                    counters[attr] = node.lineno
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr = self_attr(node.target)
                if attr is not None and is_zero_literal(node.value) and \
                        not attr.startswith("_"):
                    counters[attr] = node.lineno
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                not node.target.id.startswith("_") and \
                node.value is not None and is_zero_literal(node.value):
            counters[node.target.id] = node.lineno
    return counters


def _reset_stores(cls: ast.ClassDef, reset_name: str) -> Set[str]:
    """Attributes the reset method re-initialises, following calls to
    other methods of the same class (``reset_stats`` delegating to
    ``reset``, a ``_zero_counters`` helper, ...)."""
    methods = methods_of(cls)
    stores: Set[str] = set()
    visited: Set[str] = set()
    queue: List[str] = [reset_name]
    while queue:
        name = queue.pop()
        if name in visited or name not in methods:
            continue
        visited.add(name)
        for node in ast.walk(methods[name]):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = self_attr(target)
                    if attr is not None:
                        stores.add(attr)
                    elif isinstance(target, ast.Subscript):
                        attr = self_attr(target.value)
                        if attr is not None:
                            stores.add(attr)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                owner = self_attr(node.func.value)
                if owner is not None and node.func.attr in (
                        "clear", "update", "reset", "reset_stats"):
                    stores.add(owner)
                if isinstance(node.func.value, ast.Name) and \
                        node.func.value.id == "self":
                    queue.append(node.func.attr)
    return stores


@register
class ResetCompleteness(Rule):
    id = "R2"
    name = "reset-completeness"
    doc = ("Every zero-initialised counter in a class with reset_stats() "
           "(or a *Stats class with reset()) must be re-zeroed by it - "
           "counters that survive a reset poison the next measurement "
           "interval.")

    def check(self, project: Project) -> Iterable[Finding]:
        for file in project:
            for cls in class_defs(file):
                methods = methods_of(cls)
                if "reset_stats" in methods:
                    reset_name = "reset_stats"
                elif cls.name.endswith("Stats") and "reset" in methods:
                    reset_name = "reset"
                else:
                    continue
                counters = _counters_of(cls)
                if not counters:
                    continue
                stores = _reset_stores(cls, reset_name)
                for attr, line in sorted(counters.items()):
                    if attr not in stores:
                        yield self.finding(
                            file, line,
                            f"{cls.name}.{attr} is a zero-initialised "
                            f"counter but {cls.name}.{reset_name}() never "
                            f"re-zeroes it")


# ---------------------------------------------------------------------- R8
class _Registries:
    """Producer-side spellings collected over the whole project."""

    def __init__(self) -> None:
        #: Keys of every ``self.stats = {str: ...}`` dict literal.
        self.dict_keys: Set[str] = set()
        #: Class names assigned as ``self.stats = ClassName(...)``.
        self.stats_classes: Set[str] = set()
        #: Attributes of those classes (fields + methods).
        self.class_attrs: Set[str] = set()
        #: Keys of every dict literal returned by a ``tier_stats`` method.
        self.tier_keys: Set[str] = set()
        #: Where each registry member was declared (for messages).
        self.declared_at: Dict[str, str] = {}


def _collect_registries(project: Project) -> _Registries:
    reg = _Registries()
    class_fields: Dict[str, Set[str]] = {}
    for file in project:
        for cls in class_defs(file):
            fields: Set[str] = set(methods_of(cls))
            for node in cls.body:
                if isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name):
                    fields.add(node.target.id)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            fields.add(target.id)
            class_fields[cls.name] = fields
            for node in cls.body:
                # ``stats: RpcStats = field(default_factory=RpcStats)``
                # declares a stats holder just like ``self.stats = X()``.
                if isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name) and \
                        node.target.id == "stats":
                    if isinstance(node.annotation, ast.Name):
                        reg.stats_classes.add(node.annotation.id)
                    elif isinstance(node.annotation, ast.Attribute):
                        reg.stats_classes.add(node.annotation.attr)
            for method_name, method in methods_of(cls).items():
                for node in ast.walk(method):
                    if isinstance(node, ast.Assign) and \
                            len(node.targets) == 1 and \
                            self_attr(node.targets[0]) == "stats":
                        entries = dict_str_keys(node.value)
                        if entries is not None:
                            for key, _ in entries:
                                reg.dict_keys.add(key)
                                reg.declared_at.setdefault(
                                    key, f"{file.rel}:{node.lineno}")
                        elif isinstance(node.value, ast.Call) and \
                                isinstance(node.value.func, ast.Name):
                            reg.stats_classes.add(node.value.func.id)
                if method_name == "tier_stats":
                    for node in ast.walk(method):
                        if isinstance(node, ast.Return) and \
                                node.value is not None:
                            entries = dict_str_keys(node.value)
                            if entries is not None:
                                reg.tier_keys.update(
                                    key for key, _ in entries)
    for name in reg.stats_classes:
        reg.class_attrs.update(class_fields.get(name, set()))
    return reg


def _stats_aliases(func: _AnyFunc) -> Tuple[Set[str], Set[str]]:
    """Local names bound to a stats dict / a tier_stats() result."""
    stats_names: Set[str] = set()
    tier_names: Set[str] = set()
    for node in ast.walk(func):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1 and
                isinstance(node.targets[0], ast.Name)):
            continue
        local = node.targets[0].id
        for child in ast.walk(node.value):
            if isinstance(child, ast.Call) and \
                    isinstance(child.func, ast.Attribute) and \
                    child.func.attr == "tier_stats":
                tier_names.add(local)
                break
            if isinstance(child, ast.Attribute) and child.attr == "stats":
                stats_names.add(local)
                break
    return stats_names, tier_names


def _is_stats_expr(node: ast.AST, stats_names: Set[str]) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "stats":
        return True
    return isinstance(node, ast.Name) and node.id in stats_names


def _is_tier_expr(node: ast.AST, tier_names: Set[str]) -> bool:
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Attribute) and \
            node.func.attr == "tier_stats":
        return True
    return isinstance(node, ast.Name) and node.id in tier_names


@register
class StatsRegistry(Rule):
    id = "R8"
    name = "stats-registry"
    doc = ("Stats counter names used in core/ and storage/ (dict keys on "
           "*.stats, attributes on stats dataclasses, tier_stats() keys) "
           "must exist in the producer's registry - a misspelling reads "
           "0 forever or raises KeyError at reporting time.")

    def check(self, project: Project) -> Iterable[Finding]:
        reg = _collect_registries(project)
        scope = project.in_package("core", "storage") or list(project)
        allowed_attrs = reg.class_attrs | _DICT_METHODS
        for file in scope:
            if file.tree is None:
                continue
            for func in ast.walk(file.tree):
                if not isinstance(func,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stats_names, tier_names = _stats_aliases(func)
                for node in ast.walk(func):
                    key: Optional[str] = None
                    target: Optional[ast.AST] = None
                    if isinstance(node, ast.Subscript):
                        key = const_str(node.slice)
                        target = node.value
                    elif isinstance(node, ast.Call) and \
                            isinstance(node.func, ast.Attribute) and \
                            node.func.attr == "get" and node.args:
                        key = const_str(node.args[0])
                        target = node.func.value
                    if key is not None and target is not None:
                        if _is_stats_expr(target, stats_names) and \
                                reg.dict_keys and \
                                key not in reg.dict_keys:
                            yield self.finding(
                                file, node.lineno,
                                f"stats key {key!r} is not declared by any "
                                f"'self.stats = {{...}}' producer "
                                f"(known: {_nearest(key, reg.dict_keys)})")
                        elif _is_tier_expr(target, tier_names) and \
                                reg.tier_keys and \
                                key not in reg.tier_keys:
                            yield self.finding(
                                file, node.lineno,
                                f"tier_stats key {key!r} is not produced "
                                f"by any tier_stats() dict "
                                f"(known: {_nearest(key, reg.tier_keys)})")
                    if isinstance(node, ast.Attribute) and \
                            isinstance(node.value, ast.Attribute) and \
                            node.value.attr == "stats" and \
                            reg.class_attrs and \
                            node.attr not in allowed_attrs:
                        yield self.finding(
                            file, node.lineno,
                            f"stats attribute {node.attr!r} does not exist "
                            f"on any registered stats class "
                            f"(known: {_nearest(node.attr, allowed_attrs)})")


def _nearest(word: str, candidates: Set[str], limit: int = 4) -> str:
    """A few closest candidate spellings, for actionable messages."""
    def score(candidate: str) -> int:
        shared = len(set(candidate) & set(word))
        return -(shared * 2 - abs(len(candidate) - len(word)))
    return ", ".join(sorted(candidates, key=lambda c: (score(c), c))[:limit])
