"""R6 - deprecation: no internal caller of DeprecationWarning-marked APIs.

PR 7 kept ``ColdArchive.search()`` alive as a deprecated wrapper over the
``ScanSpec``/``scan()`` surface so external users get a migration window -
but internal code keeping the old spelling alive defeats the point and
hides the day the wrapper can be deleted.  The rule finds every function
or method that itself issues a ``DeprecationWarning`` (the repo's marker
for a deprecated API) and flags calls to those names from ``src/``,
``benchmarks/`` and ``examples/``.  Tests are exempt: the deprecation
contract itself is tested there (``pytest.warns(DeprecationWarning)``),
which requires calling the deprecated API on purpose.

Receivers named ``re``/``regex``/``pattern`` are ignored for method-name
collisions (``re.search`` is not ``ColdArchive.search``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.framework import (Finding, Project, Rule,
                                           SourceFile, register)

#: Receiver names whose same-named methods are unrelated stdlib APIs.
_COLLISION_RECEIVERS = frozenset({"re", "regex", "pattern"})


def _issues_deprecation_warning(func: ast.AST) -> bool:
    """Whether the function body raises/warns a DeprecationWarning."""
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and \
                node.id == "DeprecationWarning":
            return True
        if isinstance(node, ast.Attribute) and \
                node.attr == "DeprecationWarning":
            return True
    return False


def _deprecated_names(project: Project) -> Dict[str, List[str]]:
    """``{name: [qualified definition sites]}`` of deprecated APIs."""
    out: Dict[str, List[str]] = {}
    for file in project:
        if file.tree is None or "src" not in file.segments():
            continue
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and _issues_deprecation_warning(node):
                out.setdefault(node.name, []).append(
                    f"{file.rel}:{node.lineno}")
    return out


def _in_scope(file: SourceFile) -> bool:
    first = file.segments()[0] if file.segments() else ""
    return first in ("src", "benchmarks", "examples")


@register
class NoDeprecatedCallers(Rule):
    id = "R6"
    name = "deprecation"
    doc = ("No internal caller (src/, benchmarks/, examples/) of an API "
           "that issues DeprecationWarning - internal code migrates, "
           "only the compatibility tests exercise the old spelling.")

    def check(self, project: Project) -> Iterable[Finding]:
        deprecated = _deprecated_names(project)
        if not deprecated:
            return
        for file in project:
            if file.tree is None or not _in_scope(file):
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                name: Optional[str] = None
                if isinstance(node.func, ast.Attribute):
                    receiver = node.func.value
                    if isinstance(receiver, ast.Name) and (
                            receiver.id.lower() in _COLLISION_RECEIVERS or
                            receiver.id.lower().endswith(
                                ("_re", "_pattern", "_regex"))):
                        continue
                    # The deprecated wrapper's own body delegating to the
                    # new API is fine; a wrapper calling *itself* is not
                    # how these are written, so no self-exemption needed.
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name in deprecated:
                    sites = ", ".join(deprecated[name])
                    yield self.finding(
                        file, node.lineno,
                        f"call to deprecated {name}() (deprecated at "
                        f"{sites}); migrate to the replacement API")
