"""Core machinery of ``repro-lint``, the repo's invariant analyzer.

Seven PRs in, the codebase's correctness rests on conventions that no
generic linter knows about: every wire frame needs an encoder, a decoder
and fuzz coverage; every stats counter must be re-zeroed by
``reset_stats()``; worker pipe state must only be touched under its
exchange lock; the query path must never import pickle; payload-producing
code must stay deterministic.  Each of those was a real bug class fixed by
hand in PRs 3-7.  This module provides the scaffolding the rule suite
(``rules_*.py``) plugs into:

* :class:`SourceFile` / :class:`Project` - the parsed view of the tree
  (source text, AST, per-line suppressions), loaded once and shared by
  every rule.
* :class:`Rule` + :func:`register` - the per-rule registry.  A rule sees
  the whole project, so cross-file invariants (wire.py vs test_wire.py,
  ScanSpec vs both tier scans) are first-class.
* :class:`Finding` - one violation: file, line, rule id, message.
* Suppressions - ``# lint: disable=R3 -- why`` on the offending line.
  The justification is mandatory and suppressions must actually match a
  finding; rule :data:`SUPPRESSION_RULE_ID` enforces both, so the
  committed suppression set stays honest.
* :func:`run_lint` - runs the rules, applies suppressions, and returns a
  :class:`LintReport` with the exit-code contract (0 clean, 1 findings,
  2 internal/usage error).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Type)

#: Exit-code contract of the CLI (and of :meth:`LintReport.exit_code`).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: The meta-rule enforcing suppression hygiene (implemented here, not in a
#: rules module): every ``# lint: disable`` must name a known rule, carry
#: a ``-- justification``, and actually suppress something.
SUPPRESSION_RULE_ID = "R0"

#: Directories scanned when the project root is a repo checkout.
DEFAULT_INCLUDE = ("src", "tests", "benchmarks", "examples")

#: Path fragments never scanned (fixtures deliberately contain
#: violations; caches are not source).
DEFAULT_EXCLUDE = ("lint_fixtures", "__pycache__", ".git")

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<why>.*\S))?\s*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    file: str
    line: int
    message: str

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.file, self.line, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "message": self.message}

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """One ``# lint: disable=RULE -- why`` comment occurrence."""

    rule: str
    file: str
    line: int
    justification: str
    used: bool = False


class SourceFile:
    """One parsed python file: text, AST and suppression comments."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines: List[str] = self.text.splitlines()
        self.syntax_error: Optional[str] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(self.text)
        except SyntaxError as error:
            self.tree = None
            self.syntax_error = f"{type(error).__name__}: {error.msg}"
        #: line number -> comment text (real COMMENT tokens only, so
        #: pragma examples inside docstrings never count).
        self.comments: Dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(
                    io.StringIO(self.text).readline):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            pass  # unparseable files surface via syntax_error instead
        #: line number -> {rule id -> justification (may be empty)}.
        self.suppressions: Dict[int, Dict[str, str]] = {}
        for number, comment in self.comments.items():
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            rules = [part.strip() for part in match.group(1).split(",")]
            why = match.group("why") or ""
            entry = self.suppressions.setdefault(number, {})
            for rule in rules:
                if rule:
                    entry[rule] = why

    @property
    def name(self) -> str:
        """Base file name (rules locate targets by name, so fixture
        projects can mimic the real layout with tiny files)."""
        return self.path.name

    def is_suppressed(self, rule: str, line: int) -> bool:
        return rule in self.suppressions.get(line, {})

    def segments(self) -> Tuple[str, ...]:
        """Path segments of the project-relative path (for scoping rules
        to packages like ``core`` or ``storage``)."""
        return tuple(Path(self.rel).parts)


class Project:
    """Every scanned source file, loaded once and shared by the rules."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files: List[SourceFile] = sorted(files, key=lambda f: f.rel)
        self._by_name: Dict[str, List[SourceFile]] = {}
        for file in self.files:
            self._by_name.setdefault(file.name, []).append(file)

    @classmethod
    def load(cls, root: Path,
             include: Sequence[str] = DEFAULT_INCLUDE,
             exclude: Sequence[str] = DEFAULT_EXCLUDE) -> "Project":
        """Scan ``root`` for python files.

        A repo checkout is scanned through its ``include`` directories;
        anything else (a fixture project, a bare package) is scanned
        recursively from the root itself.
        """
        root = root.resolve()
        scan_roots = [root / part for part in include
                      if (root / part).is_dir()]
        if not scan_roots:
            scan_roots = [root]
        paths: Set[Path] = set()
        for scan_root in scan_roots:
            for path in scan_root.rglob("*.py"):
                rel = path.relative_to(root).as_posix()
                if any(part in rel for part in exclude):
                    continue
                paths.add(path)
        return cls(root, [SourceFile(root, path) for path in sorted(paths)])

    def files_named(self, name: str) -> List[SourceFile]:
        """Files whose base name is ``name`` (e.g. ``wire.py``)."""
        return list(self._by_name.get(name, []))

    def file_named(self, name: str,
                   prefer_segment: Optional[str] = None
                   ) -> Optional[SourceFile]:
        """The file named ``name``; with several, prefer the one whose
        path contains ``prefer_segment`` (``core``, ``storage``, ...)."""
        candidates = self.files_named(name)
        if not candidates:
            return None
        if prefer_segment is not None:
            for file in candidates:
                if prefer_segment in file.segments():
                    return file
        return candidates[0]

    def in_package(self, *segments: str) -> List[SourceFile]:
        """Files whose relative path contains any of ``segments``."""
        wanted = set(segments)
        return [file for file in self.files
                if wanted & set(file.segments())]

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)


class Rule:
    """One invariant check.  Subclasses see the whole project."""

    id: str = ""
    name: str = ""
    #: One-line description for ``--list-rules`` and the README catalog.
    doc: str = ""

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, file: SourceFile, line: int, message: str) -> Finding:
        return Finding(rule=self.id, file=file.rel, line=line,
                       message=message)


#: Registered rule classes, id -> class.  Populated by :func:`register`
#: when the ``rules_*`` modules import.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    RULE_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def load_rules() -> Dict[str, Type[Rule]]:
    """Import every rules module (side effect: registry fills) and return
    the registry.  Idempotent."""
    # Imported here, not at module top: the rules modules import this one.
    from repro.analysis.lint import (rules_deprecation, rules_locks,  # noqa: F401
                                     rules_plan, rules_purity,
                                     rules_scanspec, rules_stats,
                                     rules_wire)
    return RULE_REGISTRY


def rule_catalog() -> List[Tuple[str, str, str]]:
    """``(id, name, doc)`` for every rule, R0 included, sorted by id."""
    catalog = [(SUPPRESSION_RULE_ID, "suppression-hygiene",
                "Suppressions must name a known rule, carry a '-- why' "
                "justification, and match a real finding.")]
    for rule_id, rule_cls in load_rules().items():
        catalog.append((rule_id, rule_cls.name, rule_cls.doc))
    return sorted(catalog)


@dataclass
class LintReport:
    """Outcome of one lint run over a project."""

    root: str
    rules_run: List[str]
    findings: List[Finding]
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "root": self.root,
            "rules": self.rules_run,
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict()
                           for finding in self.suppressed],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_human(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"repro-lint: {len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.rules_run)} rule(s) over "
            f"{self.files_scanned} file(s)")
        return "\n".join(lines)


def _suppression_findings(project: Project, known_rules: Set[str],
                          matched: Set[Tuple[str, int, str]],
                          checked_rules: Set[str]) -> List[Finding]:
    """The R0 meta-findings over the committed suppression set."""
    findings: List[Finding] = []
    for file in project:
        for line, entries in sorted(file.suppressions.items()):
            for rule, why in sorted(entries.items()):
                if rule == SUPPRESSION_RULE_ID:
                    findings.append(Finding(
                        SUPPRESSION_RULE_ID, file.rel, line,
                        "suppression hygiene itself cannot be suppressed"))
                    continue
                if rule not in known_rules:
                    findings.append(Finding(
                        SUPPRESSION_RULE_ID, file.rel, line,
                        f"suppression names unknown rule {rule!r}"))
                    continue
                if not why:
                    findings.append(Finding(
                        SUPPRESSION_RULE_ID, file.rel, line,
                        f"suppression of {rule} has no '-- justification'"))
                if rule in checked_rules and \
                        (file.rel, line, rule) not in matched:
                    findings.append(Finding(
                        SUPPRESSION_RULE_ID, file.rel, line,
                        f"suppression of {rule} matches no finding "
                        f"(stale - remove it)"))
    return findings


def run_lint(project: Project,
             rule_ids: Optional[Sequence[str]] = None,
             on_error: Optional[Callable[[str], None]] = None
             ) -> LintReport:
    """Run the (selected) rules over ``project``.

    Findings on lines carrying a matching ``# lint: disable`` comment are
    moved to the report's ``suppressed`` list; the R0 meta-rule then
    checks the suppression set itself (unknown rule ids, missing
    justifications, stale suppressions - the latter only for rules that
    actually ran, so ``--rules`` subsets stay usable).
    """
    registry = load_rules()
    known = set(registry) | {SUPPRESSION_RULE_ID}
    if rule_ids is None:
        selected = sorted(registry)
        run_r0 = True
    else:
        unknown = sorted(set(rule_ids) - known)
        if unknown:
            raise LintUsageError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}")
        selected = sorted(set(rule_ids) & set(registry))
        run_r0 = SUPPRESSION_RULE_ID in rule_ids
    active: List[Finding] = []
    suppressed: List[Finding] = []
    matched: Set[Tuple[str, int, str]] = set()
    by_rel: Dict[str, SourceFile] = {file.rel: file for file in project}
    for file in project:
        if file.syntax_error is not None:
            active.append(Finding(
                "SYNTAX", file.rel, 1,
                f"file does not parse: {file.syntax_error}"))
    for rule_id in selected:
        rule = registry[rule_id]()
        for finding in rule.check(project):
            file = by_rel.get(finding.file)
            if file is not None and \
                    file.is_suppressed(finding.rule, finding.line):
                suppressed.append(finding)
                matched.add((finding.file, finding.line, finding.rule))
            else:
                active.append(finding)
    if run_r0:
        active.extend(_suppression_findings(
            project, known - {SUPPRESSION_RULE_ID}, matched, set(selected)))
    rules_run = (selected + [SUPPRESSION_RULE_ID]) if run_r0 else selected
    return LintReport(root=str(project.root), rules_run=sorted(rules_run),
                      findings=sorted(active, key=Finding.sort_key),
                      suppressed=sorted(suppressed, key=Finding.sort_key),
                      files_scanned=len(project.files))


class LintUsageError(Exception):
    """Bad invocation (unknown rule, unreadable root): exit code 2."""


# ---------------------------------------------------------------- AST helpers
# Shared by the rules modules; kept here so each rule stays declarative.

def class_defs(file: SourceFile) -> Iterator[ast.ClassDef]:
    """Every class defined in ``file`` (any nesting level)."""
    if file.tree is None:
        return
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ClassDef):
            yield node


def methods_of(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Directly-defined methods of ``cls`` (sync and async)."""
    out: Dict[str, ast.FunctionDef] = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node  # type: ignore[assignment]
    return out


def self_attr(node: ast.AST, self_name: str = "self") -> Optional[str]:
    """``X`` when ``node`` is ``<self_name>.X``, else ``None``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and \
            node.value.id == self_name:
        return node.attr
    return None


def const_str(node: ast.AST) -> Optional[str]:
    """The value when ``node`` is a string constant, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def is_zero_literal(node: ast.AST) -> bool:
    """Whether ``node`` is the literal ``0`` or ``0.0`` (a counter's
    initial value; ``False``/``None`` deliberately do not count)."""
    return (isinstance(node, ast.Constant) and
            type(node.value) in (int, float) and node.value == 0)


def dict_str_keys(node: ast.AST) -> Optional[List[Tuple[str, ast.AST]]]:
    """``[(key, value_node), ...]`` when ``node`` is a dict literal with
    only string-constant keys, else ``None``."""
    if not isinstance(node, ast.Dict):
        return None
    out: List[Tuple[str, ast.AST]] = []
    for key, value in zip(node.keys, node.values):
        text = const_str(key) if key is not None else None
        if text is None:
            return None
        out.append((text, value))
    return out
