"""R3 - lock-discipline: guarded attributes only touched under their lock.

The agent-server plane is the one genuinely concurrent part of the
codebase: executor threads share each host's pipe and the pool's stats,
and the supervisor/chaos hooks run on whichever thread detected a
failure.  PR 6/7 established the discipline (per-host exchange locks,
``_stats_lock``, the supervisor's ``_lock``) but nothing checked it - a
stats bump outside ``_stats_lock`` or a pipe exchange outside the host
lock is a silent race that only shows up as corrupt byte accounting or
interleaved frames under load.

The contract is declared in the source itself:

* ``self.attr = ...  # guarded-by: _lock`` on the attribute's
  initialisation line declares that every later access to ``self.attr``
  in that class must sit inside ``with self._lock:`` (or
  ``with self._lock_for(...):`` when the guard is a lock-returning
  method).
* ``def method(self):  # holds: _lock`` declares a caller-must-hold
  method: its body is treated as already inside the lock (the repo's
  ``_send``/``_recv``-style internals, documented as "called with the
  host's exchange lock held").

``__init__`` is exempt (no concurrency before construction completes).
Deliberate unguarded accesses (teardown, racy-read probes like
``alive()``) carry a justified ``# lint: disable=R3`` suppression.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.framework import (Finding, Project, Rule,
                                           SourceFile, class_defs,
                                           methods_of, register, self_attr)

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z_][A-Za-z0-9_]*)")


def _guard_annotations(file: SourceFile,
                       cls: ast.ClassDef) -> Dict[str, Tuple[str, int]]:
    """``{attr: (lock, lineno)}`` from ``# guarded-by:`` comments on
    attribute initialisations inside the class body."""
    guards: Dict[str, Tuple[str, int]] = {}
    last_line = max((node.end_lineno or node.lineno
                     for node in ast.walk(cls)
                     if hasattr(node, "lineno")), default=cls.lineno)
    for number in range(cls.lineno, last_line + 1):
        comment = file.comments.get(number)
        if comment is None or number > len(file.lines):
            continue
        match = _GUARDED_RE.search(comment)
        if match is None:
            continue
        line = file.lines[number - 1]
        attr_match = re.search(
            r"self\.([A-Za-z_][A-Za-z0-9_]*)\s*(?::[^=]+)?=", line)
        if attr_match is None:
            attr_match = re.match(
                r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*:[^=]+=", line)
        if attr_match is not None:
            guards[attr_match.group(1)] = (match.group(1), number)
    return guards


def _held_lock(file: SourceFile, func: ast.FunctionDef) -> Optional[str]:
    """The lock named by a ``# holds:`` annotation on the def line(s)."""
    header_end = func.body[0].lineno if func.body else func.lineno
    for number in range(func.lineno, header_end + 1):
        comment = file.comments.get(number)
        if comment is None:
            continue
        match = _HOLDS_RE.search(comment)
        if match is not None:
            return match.group(1)
    return None


def _with_locks(node: ast.With, self_name: str) -> Set[str]:
    """Lock attribute/method names acquired by this ``with``."""
    locks: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        attr = self_attr(expr, self_name)
        if attr is not None:
            locks.add(attr)
    return locks


class _AccessChecker(ast.NodeVisitor):
    """Walks one method tracking which locks are lexically held."""

    def __init__(self, rule: "LockDiscipline", file: SourceFile,
                 cls_name: str, method: ast.FunctionDef,
                 guards: Dict[str, Tuple[str, int]], self_name: str,
                 held: Set[str]) -> None:
        self.rule = rule
        self.file = file
        self.cls_name = cls_name
        self.method = method
        self.guards = guards
        self.self_name = self_name
        self.held = set(held)
        self.findings: List[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        acquired = _with_locks(node, self.self_name)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held |= acquired
        for stmt in node.body:
            self.visit(stmt)
        self.held -= acquired

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self_attr(node, self.self_name)
        if attr is not None and attr in self.guards:
            lock, _ = self.guards[attr]
            if lock not in self.held:
                self.findings.append(self.rule.finding(
                    self.file, node.lineno,
                    f"{self.cls_name}.{attr} is guarded-by {lock} but "
                    f"{self.method.name}() touches it outside "
                    f"'with self.{lock}'"))
        self.generic_visit(node)


@register
class LockDiscipline(Rule):
    id = "R3"
    name = "lock-discipline"
    doc = ("Attributes annotated '# guarded-by: <lock>' may only be "
           "touched inside 'with self.<lock>' (methods annotated "
           "'# holds: <lock>' are treated as called with it held; "
           "__init__ is exempt).")

    def check(self, project: Project) -> Iterable[Finding]:
        for file in project:
            if file.tree is None:
                continue
            for cls in class_defs(file):
                guards = _guard_annotations(file, cls)
                if not guards:
                    continue
                members = {name for name in dir(object)} | \
                    set(methods_of(cls))
                for attr, (lock, line) in sorted(guards.items()):
                    if lock not in self._class_attrs(cls) and \
                            lock not in members:
                        yield self.finding(
                            file, line,
                            f"guarded-by names unknown lock {lock!r} "
                            f"(not an attribute or method of {cls.name})")
                for name, method in methods_of(cls).items():
                    if name == "__init__":
                        continue
                    held: Set[str] = set()
                    holds = _held_lock(file, method)
                    if holds is not None:
                        held.add(holds)
                    checker = _AccessChecker(self, file, cls.name, method,
                                             guards, self._self_name(method),
                                             held)
                    checker.visit(method)
                    yield from checker.findings

    @staticmethod
    def _self_name(method: ast.FunctionDef) -> str:
        args = method.args.posonlyargs + method.args.args
        return args[0].arg if args else "self"

    @staticmethod
    def _class_attrs(cls: ast.ClassDef) -> Set[str]:
        """Attributes assigned anywhere on self in the class (for
        validating that a guard names a real lock)."""
        attrs: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = self_attr(target)
                    if attr is not None:
                        attrs.add(attr)
        return attrs
