"""Analysis helpers: CDFs, accuracy metrics, table formatting."""

from repro.analysis.stats import (Cdf, PrecisionRecall, histogram,
                                  imbalance_rate, jains_fairness,
                                  mean_and_stderr, score_localization)
from repro.analysis.tables import (format_cdf, format_comparison,
                                   format_series, format_table)

__all__ = [
    "Cdf", "PrecisionRecall", "histogram", "imbalance_rate",
    "jains_fairness", "mean_and_stderr", "score_localization",
    "format_cdf", "format_comparison", "format_series", "format_table",
]
