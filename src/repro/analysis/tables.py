"""Plain-text table/series formatting for benchmark reports.

The benchmark harness prints, for every paper table and figure, the same
rows/series the paper reports.  These helpers keep that output consistent
(fixed-width columns, aligned numbers) without pulling in any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width text table.

    Args:
        headers: column headings.
        rows: row values (converted with ``str``; floats get 4 significant
            digits).
        title: optional title line printed above the table.

    Returns:
        The rendered table as a single string.
    """
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 20) -> str:
    """Render an (x, y) series compactly, subsampling long series."""
    pts = list(points)
    if len(pts) > max_points:
        step = len(pts) / max_points
        pts = [pts[int(i * step)] for i in range(max_points)] + [pts[-1]]
    rows = [(f"{x:.4g}", f"{y:.4g}") for x, y in pts]
    return format_table([x_label, y_label], rows, title=name)


def format_cdf(name: str, cdf, max_points: int = 15) -> str:
    """Render a :class:`~repro.analysis.stats.Cdf` as a table."""
    return format_series(name, cdf.points(max_points=max_points),
                         x_label="value", y_label="P(X<=x)")


def format_comparison(title: str, paper_value: str, measured_value: str,
                      note: str = "") -> str:
    """One paper-vs-measured comparison line for EXPERIMENTS.md style output."""
    line = f"{title}: paper={paper_value}  measured={measured_value}"
    if note:
        line += f"  ({note})"
    return line
