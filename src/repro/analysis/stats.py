"""Statistics helpers shared by the debugging applications and benchmarks.

Everything the paper's figures plot is computed here: empirical CDFs
(Figures 5b, 5c), the load-imbalance rate metric of Pearce et al. used in
Figure 5(b), recall/precision of fault localization (Figure 7), and small
formatting helpers for the benchmark reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass
class Cdf:
    """An empirical cumulative distribution function over numeric samples."""

    values: List[float]

    def __post_init__(self) -> None:
        self.values = sorted(float(v) for v in self.values)

    def probability_at(self, x: float) -> float:
        """P(X <= x)."""
        if not self.values:
            return 0.0
        count = 0
        for value in self.values:
            if value <= x:
                count += 1
            else:
                break
        return count / len(self.values)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the samples."""
        if not self.values:
            raise ValueError("empty CDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        index = min(len(self.values) - 1,
                    max(0, int(math.ceil(q * len(self.values))) - 1))
        return self.values[index]

    def points(self, max_points: Optional[int] = None
               ) -> List[Tuple[float, float]]:
        """(value, cumulative probability) pairs suitable for plotting."""
        n = len(self.values)
        if n == 0:
            return []
        pts = [(v, (i + 1) / n) for i, v in enumerate(self.values)]
        if max_points is not None and n > max_points:
            step = n / max_points
            pts = [pts[int(i * step)] for i in range(max_points)]
            if pts[-1] != (self.values[-1], 1.0):
                pts.append((self.values[-1], 1.0))
        return pts

    @property
    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self.values:
            raise ValueError("empty CDF")
        return sum(self.values) / len(self.values)


def imbalance_rate(loads: Sequence[float]) -> float:
    """The load-imbalance metric of Figure 5(b).

    ``lambda = (L_max / L_mean - 1) * 100`` (percent), where ``L_max`` is the
    maximum load on any link and ``L_mean`` the mean over all links
    [Pearce et al., ICS'12].
    """
    if not loads:
        raise ValueError("imbalance rate needs at least one load value")
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    # Clamp at zero: floating-point rounding can push max/mean a hair below 1
    # when all loads are (nearly) equal.
    return max(0.0, (max(loads) / mean - 1.0) * 100.0)


@dataclass
class PrecisionRecall:
    """Recall and precision of a localization result (Section 4.3)."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there is nothing to find."""
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was reported."""
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        """Harmonic mean of recall and precision."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision
                                                   + self.recall)


def score_localization(reported: Iterable, ground_truth: Iterable
                       ) -> PrecisionRecall:
    """Score a set of reported faulty elements against the ground truth.

    Elements are compared as-is; callers normalise (e.g. to undirected
    cables) beforehand.
    """
    reported_set = set(reported)
    truth_set = set(ground_truth)
    tp = len(reported_set & truth_set)
    fp = len(reported_set - truth_set)
    fn = len(truth_set - reported_set)
    return PrecisionRecall(true_positives=tp, false_positives=fp,
                           false_negatives=fn)


def histogram(values: Sequence[float], bin_width: float
              ) -> Dict[int, int]:
    """Bucket values into fixed-width bins (bucket index -> count)."""
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    buckets: Dict[int, int] = {}
    for value in values:
        bucket = int(value // bin_width)
        buckets[bucket] = buckets.get(bucket, 0) + 1
    return buckets


def mean_and_stderr(samples: Sequence[float]) -> Tuple[float, float]:
    """Mean and standard error (sigma / sqrt(n)) as used in Figure 8."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    return mean, math.sqrt(variance) / math.sqrt(n)


def jains_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index, used to quantify outcast unfairness."""
    if not values:
        raise ValueError("no values")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
