"""Empirical flow-size distributions for datacenter workloads.

The paper generates its background traffic "based on the web traffic model
in [10]" (pFabric / the DCTCP web-search workload): a heavy-tailed flow-size
distribution in which the majority of flows are a few tens of kilobytes while
a small fraction of multi-megabyte flows carries most of the bytes.  That
shape is what drives the ECMP load-imbalance experiment (flows above/below
1 MB hashed to different links) and provides realistic noise for the
silent-drop and blackhole experiments.

Since the original trace is not distributable, this module provides an
:class:`EmpiricalCdf` sampler with the published web-search and data-mining
CDF breakpoints, interpolated log-linearly between points.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: (flow size in bytes, cumulative probability) breakpoints of the DCTCP /
#: pFabric "web search" workload.
WEB_SEARCH_POINTS: List[Tuple[float, float]] = [
    (1_000, 0.0),
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.45),
    (33_000, 0.60),
    (53_000, 0.70),
    (133_000, 0.80),
    (667_000, 0.90),
    (1_333_000, 0.95),
    (3_333_000, 0.98),
    (6_667_000, 0.99),
    (20_000_000, 1.00),
]

#: (flow size in bytes, cumulative probability) breakpoints of the
#: "data mining" workload (even heavier tail, mostly tiny flows).
DATA_MINING_POINTS: List[Tuple[float, float]] = [
    (100, 0.0),
    (180, 0.10),
    (250, 0.20),
    (560, 0.30),
    (900, 0.40),
    (1_100, 0.50),
    (1_870, 0.60),
    (3_160, 0.70),
    (10_000, 0.80),
    (400_000, 0.90),
    (3_160_000, 0.95),
    (100_000_000, 0.98),
    (1_000_000_000, 1.00),
]


@dataclass
class EmpiricalCdf:
    """A flow-size sampler defined by CDF breakpoints.

    Interpolation between breakpoints is log-linear in the size axis, which
    matches how these distributions are conventionally replayed in datacenter
    transport studies.

    Args:
        points: increasing ``(size_bytes, cumulative_probability)`` pairs;
            the first probability must be 0.0 and the last 1.0.
        name: label used in reports.
    """

    points: Sequence[Tuple[float, float]]
    name: str = "empirical"

    def __post_init__(self) -> None:
        sizes = [p[0] for p in self.points]
        probs = [p[1] for p in self.points]
        if sorted(sizes) != list(sizes) or sorted(probs) != list(probs):
            raise ValueError("CDF breakpoints must be non-decreasing")
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError("CDF must start at probability 0 and end at 1")
        self._sizes = sizes
        self._probs = probs

    # ------------------------------------------------------------- sampling
    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes) using ``rng``."""
        u = rng.random()
        return self.quantile(u)

    def sample_many(self, count: int, rng: random.Random) -> List[int]:
        """Draw ``count`` flow sizes."""
        return [self.sample(rng) for _ in range(count)]

    def quantile(self, probability: float) -> int:
        """Flow size at the given cumulative probability (inverse CDF)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        idx = bisect.bisect_left(self._probs, probability)
        if idx <= 0:
            return int(self._sizes[0])
        if idx >= len(self._probs):
            return int(self._sizes[-1])
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        s0, s1 = self._sizes[idx - 1], self._sizes[idx]
        if p1 == p0:
            return int(s1)
        frac = (probability - p0) / (p1 - p0)
        log_size = math.log(s0) + frac * (math.log(s1) - math.log(s0))
        return max(1, int(round(math.exp(log_size))))

    def cdf(self, size: float) -> float:
        """Cumulative probability of a flow being at most ``size`` bytes."""
        if size <= self._sizes[0]:
            return self._probs[0]
        if size >= self._sizes[-1]:
            return 1.0
        idx = bisect.bisect_right(self._sizes, size)
        s0, s1 = self._sizes[idx - 1], self._sizes[idx]
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        frac = (math.log(size) - math.log(s0)) / (math.log(s1) - math.log(s0))
        return p0 + frac * (p1 - p0)

    # ------------------------------------------------------------ statistics
    def mean(self, samples: int = 20000, seed: int = 1) -> float:
        """Monte-Carlo estimate of the mean flow size in bytes."""
        rng = random.Random(seed)
        total = sum(self.sample(rng) for _ in range(samples))
        return total / samples


def web_search_cdf() -> EmpiricalCdf:
    """The web-search workload used throughout the paper's evaluation."""
    return EmpiricalCdf(points=WEB_SEARCH_POINTS, name="web-search")


def data_mining_cdf() -> EmpiricalCdf:
    """The data-mining workload (used for additional stress scenarios)."""
    return EmpiricalCdf(points=DATA_MINING_POINTS, name="data-mining")
