"""Traffic-matrix helpers.

One of the measurement applications the paper lists (Table 2, "Get traffic
volume between all switch pairs") is traffic-matrix construction from TIB
data.  This module provides the matrix data structure used both by the
measurement application (:mod:`repro.debug.measurement`) and by the workload
generator when a scenario needs a prescribed communication pattern.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass
class TrafficMatrix:
    """A (source, destination) -> bytes matrix over arbitrary node keys.

    Keys are usually host names (host-level matrix) or ToR switch names
    (rack-level matrix, the paper's "traffic volume between all switch
    pairs").
    """

    bytes_between: Dict[Tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int))

    def add(self, src: str, dst: str, nbytes: int) -> None:
        """Accumulate ``nbytes`` of traffic from ``src`` to ``dst``."""
        if nbytes < 0:
            raise ValueError("traffic volume cannot be negative")
        self.bytes_between[(src, dst)] += nbytes

    def get(self, src: str, dst: str) -> int:
        """Bytes sent from ``src`` to ``dst``."""
        return self.bytes_between.get((src, dst), 0)

    def total_bytes(self) -> int:
        """Total bytes across all pairs."""
        return sum(self.bytes_between.values())

    def sources(self) -> List[str]:
        """All source keys, sorted."""
        return sorted({s for s, _ in self.bytes_between})

    def destinations(self) -> List[str]:
        """All destination keys, sorted."""
        return sorted({d for _, d in self.bytes_between})

    def row(self, src: str) -> Dict[str, int]:
        """Traffic from ``src`` to every destination."""
        return {d: v for (s, d), v in self.bytes_between.items() if s == src}

    def column(self, dst: str) -> Dict[str, int]:
        """Traffic from every source to ``dst``."""
        return {s: v for (s, d), v in self.bytes_between.items() if d == dst}

    def merge(self, other: "TrafficMatrix") -> "TrafficMatrix":
        """Return a new matrix combining this one with ``other``.

        Used by the controller when aggregating per-host matrices collected
        from the distributed TIBs.
        """
        merged = TrafficMatrix()
        for (s, d), v in self.bytes_between.items():
            merged.add(s, d, v)
        for (s, d), v in other.bytes_between.items():
            merged.add(s, d, v)
        return merged

    def aggregate_by(self, key_of: Mapping[str, str]) -> "TrafficMatrix":
        """Re-aggregate the matrix under a coarser key (e.g. host -> ToR)."""
        coarse = TrafficMatrix()
        for (s, d), v in self.bytes_between.items():
            coarse.add(key_of.get(s, s), key_of.get(d, d), v)
        return coarse

    def top_pairs(self, k: int) -> List[Tuple[Tuple[str, str], int]]:
        """The ``k`` largest (pair, bytes) entries."""
        return sorted(self.bytes_between.items(), key=lambda kv: -kv[1])[:k]

    def as_dict(self) -> Dict[Tuple[str, str], int]:
        """Plain-dict view (copies)."""
        return dict(self.bytes_between)


def matrix_from_flows(flows: Iterable, key: str = "host") -> TrafficMatrix:
    """Build a traffic matrix from :class:`~repro.workloads.arrivals.FlowSpec`s.

    Args:
        flows: flow specs.
        key: ``"host"`` for a host-level matrix (the only key the specs can
            provide on their own).

    Returns:
        The matrix of offered bytes.
    """
    if key != "host":
        raise ValueError("flow specs only support host-level matrices; use "
                         "TrafficMatrix.aggregate_by for coarser keys")
    matrix = TrafficMatrix()
    for flow in flows:
        matrix.add(flow.src, flow.dst, flow.size)
    return matrix
