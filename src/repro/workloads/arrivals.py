"""Flow arrival processes and communication patterns.

The evaluation needs several traffic patterns:

* **pod-to-other-pods** web traffic from pod 1 (Figure 5's ECMP scenario),
* **all-to-all** background traffic at a configurable network load
  (Sections 4.3, 4.4, 4.6),
* **many-to-one** incast/outcast patterns (Section 4.6),
* Poisson flow arrivals with a mean inter-arrival time of roughly 15 ms per
  server, the figure the paper takes from IMC'09 measurements to size the
  TIB (~67 flows/s, ~240 K flow entries per hour).

A :class:`FlowSpec` is a purely descriptive record (who talks to whom, how
many bytes, when); the transport layer turns specs into packets or into
flow-level statistics.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.network.packet import PROTO_TCP, FlowId
from repro.workloads.websearch import EmpiricalCdf, web_search_cdf

#: Mean flow inter-arrival time per server reported by the IMC'09 study the
#: paper cites (~15 ms, i.e. ~67 flows per second per server).
MEAN_FLOW_INTERARRIVAL_S = 0.015

#: Ephemeral port range used when assigning flow source ports.
EPHEMERAL_PORT_RANGE = (32768, 60999)

#: Well-known destination ports cycled through by the generator.
SERVICE_PORTS = (80, 443, 8080, 9000)


@dataclass
class FlowSpec:
    """A flow to be simulated.

    Attributes:
        flow_id: the 5-tuple.
        size: bytes to transfer.
        start_time: arrival time in simulated seconds.
    """

    flow_id: FlowId
    size: int
    start_time: float

    @property
    def src(self) -> str:
        """Source host."""
        return self.flow_id.src_ip

    @property
    def dst(self) -> str:
        """Destination host."""
        return self.flow_id.dst_ip


class FlowGenerator:
    """Generates :class:`FlowSpec` sequences for the evaluation scenarios.

    Args:
        hosts: the host population.
        size_cdf: flow-size distribution (defaults to the web-search CDF).
        seed: RNG seed; every generator method is deterministic given it.
    """

    def __init__(self, hosts: Sequence[str],
                 size_cdf: Optional[EmpiricalCdf] = None,
                 seed: int = 0) -> None:
        if len(hosts) < 2:
            raise ValueError("need at least two hosts to generate flows")
        self.hosts = list(hosts)
        self.size_cdf = size_cdf or web_search_cdf()
        self.rng = random.Random(seed)
        self._port_counter = itertools.count(EPHEMERAL_PORT_RANGE[0])

    # ------------------------------------------------------------- plumbing
    def _next_src_port(self) -> int:
        port = next(self._port_counter)
        lo, hi = EPHEMERAL_PORT_RANGE
        return lo + (port - lo) % (hi - lo)

    def _make_flow(self, src: str, dst: str, start_time: float,
                   size: Optional[int] = None) -> FlowSpec:
        flow_id = FlowId(src, dst, self._next_src_port(),
                         self.rng.choice(SERVICE_PORTS), PROTO_TCP)
        flow_size = self.size_cdf.sample(self.rng) if size is None else size
        return FlowSpec(flow_id=flow_id, size=flow_size, start_time=start_time)

    # -------------------------------------------------------------- patterns
    def poisson_all_to_all(self, duration: float, load: float,
                           link_capacity_bps: float = 10e9,
                           mean_flow_size: Optional[float] = None
                           ) -> List[FlowSpec]:
        """Poisson arrivals between uniformly random host pairs.

        The aggregate arrival rate is sized so the expected offered load on
        the host access links equals ``load`` (0..1), following
        ``rate = load * capacity * n_hosts / (8 * mean_flow_size)``.

        Args:
            duration: length of the generated interval in seconds.
            load: target fractional network load (e.g. 0.7 for 70 %).
            link_capacity_bps: access link capacity.
            mean_flow_size: mean flow size in bytes; estimated from the CDF
                when omitted.

        Returns:
            Flow specs sorted by start time.
        """
        if not 0.0 < load <= 1.5:
            raise ValueError("load must be a fraction in (0, 1.5]")
        mean_size = mean_flow_size or self.size_cdf.mean()
        total_rate = load * link_capacity_bps * len(self.hosts) / (
            8.0 * mean_size)
        flows: List[FlowSpec] = []
        now = 0.0
        while True:
            now += self.rng.expovariate(total_rate)
            if now >= duration:
                break
            src, dst = self.rng.sample(self.hosts, 2)
            flows.append(self._make_flow(src, dst, now))
        return flows

    def poisson_per_host(self, duration: float,
                         interarrival_s: float = MEAN_FLOW_INTERARRIVAL_S
                         ) -> List[FlowSpec]:
        """Per-host Poisson arrivals matching the paper's TIB sizing figure."""
        flows: List[FlowSpec] = []
        for src in self.hosts:
            now = 0.0
            while True:
                now += self.rng.expovariate(1.0 / interarrival_s)
                if now >= duration:
                    break
                dst = self.rng.choice([h for h in self.hosts if h != src])
                flows.append(self._make_flow(src, dst, now))
        flows.sort(key=lambda f: f.start_time)
        return flows

    def pod_to_other_pods(self, src_hosts: Sequence[str],
                          dst_hosts: Sequence[str], count: int,
                          duration: float) -> List[FlowSpec]:
        """Web-traffic flows from one pod to hosts in other pods (Figure 5)."""
        if not src_hosts or not dst_hosts:
            raise ValueError("source and destination host sets must be "
                             "non-empty")
        flows: List[FlowSpec] = []
        for i in range(count):
            start = self.rng.uniform(0.0, duration)
            src = self.rng.choice(list(src_hosts))
            dst = self.rng.choice(list(dst_hosts))
            flows.append(self._make_flow(src, dst, start))
        flows.sort(key=lambda f: f.start_time)
        return flows

    def many_to_one(self, senders: Sequence[str], receiver: str,
                    size: int, start_time: float = 0.0,
                    stagger_s: float = 0.0) -> List[FlowSpec]:
        """Incast/outcast pattern: every sender opens one flow to receiver."""
        flows = []
        for i, sender in enumerate(senders):
            flows.append(self._make_flow(sender, receiver,
                                         start_time + i * stagger_s,
                                         size=size))
        return flows

    def single_flow(self, src: str, dst: str, size: int,
                    start_time: float = 0.0) -> FlowSpec:
        """One explicit flow (e.g. the 100 MB sprayed flow of Figure 6)."""
        return self._make_flow(src, dst, start_time, size=size)


def offered_load_bps(flows: Iterable[FlowSpec], duration: float) -> float:
    """Aggregate offered load (bits/s) of a flow set over ``duration``."""
    total_bytes = sum(f.size for f in flows)
    if duration <= 0:
        raise ValueError("duration must be positive")
    return total_bytes * 8.0 / duration
