"""Workload generators: flow-size distributions, arrivals, traffic matrices."""

from repro.workloads.websearch import (EmpiricalCdf, data_mining_cdf,
                                       web_search_cdf)
from repro.workloads.arrivals import (FlowGenerator, FlowSpec,
                                      MEAN_FLOW_INTERARRIVAL_S,
                                      offered_load_bps)
from repro.workloads.traffic_matrix import TrafficMatrix, matrix_from_flows

__all__ = [
    "EmpiricalCdf", "data_mining_cdf", "web_search_cdf",
    "FlowGenerator", "FlowSpec", "MEAN_FLOW_INTERARRIVAL_S",
    "offered_load_bps", "TrafficMatrix", "matrix_from_flows",
]
